"""Taxi monitoring: comparing the four safe-region strategies on
taxi-style movement (the paper's Section 6.2.2 setting).

Forty subscribers ride taxis through a Singapore-sized space while a
Twitter-like stream publishes geo-events.  The same world is replayed
against VM, GM, iGM and idGM, and the per-subscriber communication
overhead is printed side by side — the experiment behind Figure 7(e/f),
at laptop scale.

Run:  python examples/taxi_monitoring.py       (~1-2 minutes)
"""

from repro import ExperimentConfig, run_experiment

CONFIG = ExperimentConfig(
    movement="taxi",
    dataset="twitter",
    initial_events=6_000,
    event_rate=20.0,
    event_ttl=50,
    subscribers=24,
    timestamps=200,
    speed=60.0,
    radius=3_000.0,
)


def main() -> None:
    print(f"{CONFIG.subscribers} taxis, {CONFIG.timestamps} timestamps "
          f"(5 s each), f={CONFIG.event_rate:.0f} events/timestamp, "
          f"r={CONFIG.radius / 1000:.0f} km\n")
    print(f"{'method':<6} {'location upd.':>14} {'event arrival':>14} "
          f"{'total I/O':>10} {'notifications':>14}")
    totals = {}
    for strategy in ("VM", "GM", "iGM", "idGM"):
        mode = "cached" if strategy in ("VM", "GM") else "ondemand"
        result = run_experiment(CONFIG.with_(strategy=strategy, matching_mode=mode))
        per = result.per_subscriber()
        totals[strategy] = per["total"]
        print(f"{strategy:<6} {per['location_update']:>14.1f} "
              f"{per['event_arrival']:>14.1f} {per['total']:>10.1f} "
              f"{per['notifications']:>14.1f}")
    best = min(totals, key=totals.get)
    worst = max(totals, key=totals.get)
    print(f"\n{best} needs {totals[worst] / totals[best]:.1f}x less communication "
          f"than {worst} — the cost model at work (Section 3.3).")


if __name__ == "__main__":
    main()
