"""Flash sales: DNF subscriptions, expiring events and wire accounting.

A commuter wants either *deep* electronics discounts or *cheap* fashion —
a disjunction the paper's conjunctive subscriptions cannot express, and
the extension this implementation adds:

    (category = electronics AND discount >= 50)
 OR (category = fashion AND price < 30)

Flash-sale events are only valid for a few minutes (they expire and leave
the index silently — Lemma 4), and every message is measured with the
binary wire protocol, showing what the WAH-compressed safe regions cost
on the air.

Run:  python examples/flash_sales.py
"""

import random

from repro import (
    BEQTree,
    BooleanExpression,
    CallbackTransport,
    DnfExpression,
    ElapsServer,
    Event,
    Grid,
    IGM,
    Operator,
    Point,
    Predicate,
    Rect,
    RoadNetwork,
    ServerConfig,
    Subscription,
    SyntheticTrajectoryGenerator,
)

SPACE = Rect(0, 0, 20_000, 20_000)
TIMESTAMPS = 120
SALE_TTL = 24  # a flash sale lasts 2 minutes (24 x 5 s)

INTEREST = DnfExpression([
    BooleanExpression([
        Predicate("category", Operator.EQ, "electronics"),
        Predicate("discount", Operator.GE, 50),
    ]),
    BooleanExpression([
        Predicate("category", Operator.EQ, "fashion"),
        Predicate("price", Operator.LT, 30),
    ]),
])

CATEGORIES = ("electronics", "fashion", "food", "books")


def make_sale(rng: random.Random, event_id: int, now: int) -> Event:
    category = rng.choice(CATEGORIES)
    attributes = {
        "category": category,
        "discount": rng.choice((10, 20, 30, 50, 70)),
        "price": rng.randint(5, 200),
    }
    location = Point(rng.uniform(0, 20_000), rng.uniform(0, 20_000))
    return Event(event_id, attributes, location,
                 arrived_at=now, expires_at=now + SALE_TTL)


def main() -> None:
    rng = random.Random(42)
    network = RoadNetwork(SPACE, grid_size=6, seed=1)
    trajectory = SyntheticTrajectoryGenerator(network, speed=55.0, seed=2).trajectory(
        0, TIMESTAMPS + 1
    )
    subscription = Subscription(1, INTEREST, radius=2_500.0)

    clock = 0
    client_region = {}
    server = ElapsServer(
        Grid(100, SPACE),
        IGM(max_cells=1_200),
        ServerConfig(initial_rate=3.0, measure_bytes=True),
        event_index=BEQTree(SPACE, emax=128),
        transport=CallbackTransport(
            locate=lambda sub_id: (
                trajectory.position_at(clock), trajectory.velocity_at(clock)
            ),
            ship_region=client_region.__setitem__,
        ),
    )
    _, region = server.subscribe(
        subscription, trajectory.position_at(0), trajectory.velocity_at(0), now=0
    )
    client_region[subscription.sub_id] = region

    next_id = 0
    for clock in range(1, TIMESTAMPS + 1):
        position = trajectory.position_at(clock)
        region = client_region[subscription.sub_id]
        if region.is_empty() or not region.contains_point(position):
            server.report_location(
                subscription.sub_id, position, trajectory.velocity_at(clock), clock
            )
        for _ in range(3):  # three flash sales per timestamp, city-wide
            sale = make_sale(rng, next_id, clock)
            next_id += 1
            for notification in server.publish(sale, clock):
                attrs = dict(notification.event.attributes)
                print(f"t={clock:3d}  ALERT {attrs['category']}: "
                      f"discount {attrs['discount']}%, ${attrs['price']} "
                      f"(valid for {SALE_TTL * 5 // 60} min)")
        expired = server.expire_due_events(clock)

    stats = server.metrics
    live = len(server.event_index)
    print(f"\n{next_id} flash sales published, {live} still valid at the end "
          f"(TTL {SALE_TTL} timestamps)")
    print(f"notifications: {stats.notifications}; communication rounds: "
          f"{stats.location_update_rounds} location + {stats.event_arrival_rounds} event")
    print(f"wire traffic: {stats.wire_bytes_up} B up, {stats.wire_bytes_down} B down "
          f"({stats.constructions} safe regions shipped, WAH bitmaps "
          f"{100 * stats.safe_region_bytes / max(stats.raw_region_bytes, 1):.0f}% "
          f"of their raw size)")


if __name__ == "__main__":
    main()
