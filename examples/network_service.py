"""Elaps as a network service: subscriber and publisher over TCP.

Starts an Elaps server on a loopback socket, connects a subscriber (who
receives her WAH-compressed safe region) and a publisher (who announces
flash events), and shows the pushes arriving over the wire — the binary
protocol of ``repro.system.protocol`` end to end.

Run:  python examples/network_service.py
"""

import asyncio

from repro import (
    BEQTree,
    BooleanExpression,
    ElapsNetworkClient,
    ElapsServer,
    ElapsTCPServer,
    Grid,
    IGM,
    Operator,
    Point,
    Predicate,
    Rect,
    ServerConfig,
    Subscription,
)
from repro.system.protocol import NotificationMessage, SafeRegionPush, message_bytes

SPACE = Rect(0, 0, 20_000, 20_000)


async def main() -> None:
    core = ElapsServer(
        Grid(80, SPACE),
        IGM(max_cells=1_000),
        ServerConfig(initial_rate=1.0),
        event_index=BEQTree(SPACE, emax=128),
    )
    service = ElapsTCPServer(core, port=0, timestamp_seconds=0.1)
    await service.start()
    print(f"Elaps listening on 127.0.0.1:{service.port}")

    # a subscriber interested in espresso deals within 2 km
    alice = ElapsNetworkClient("127.0.0.1", service.port)
    await alice.connect()
    interest = Subscription(
        1,
        BooleanExpression([
            Predicate("category", Operator.EQ, "coffee"),
            Predicate("price", Operator.LE, 4),
        ]),
        radius=2_000.0,
    )
    pushes = await alice.subscribe(interest, Point(10_000, 10_000), Point(30, 0))
    region_push = pushes[-1]
    assert isinstance(region_push, SafeRegionPush)
    print(f"alice subscribed; safe region arrived: "
          f"{len(region_push.bitmap.positions())} cells, "
          f"{message_bytes(region_push)} bytes on the wire")

    # a publisher announces three offers; one matches nearby
    cafe = ElapsNetworkClient("127.0.0.1", service.port)
    await cafe.connect()
    await cafe.publish(1, {"category": "coffee", "price": 6}, Point(10_300, 10_000), ttl=600)
    await cafe.publish(2, {"category": "books", "price": 3}, Point(10_200, 10_000), ttl=600)
    await cafe.publish(3, {"category": "coffee", "price": 3}, Point(10_400, 10_100), ttl=600)

    message = await alice.receive(timeout=3.0)
    assert isinstance(message, NotificationMessage)
    print(f"alice notified over TCP: {dict(message.attributes)} "
          f"at ({message.location.x:.0f}, {message.location.y:.0f})")

    # she drives off and reports when her region no longer covers her
    from repro.system.protocol import LocationReport

    await alice.send(LocationReport(1, Point(18_000, 18_000), Point(30, 0)))
    fresh = await alice.receive(timeout=3.0)
    assert isinstance(fresh, SafeRegionPush)
    print(f"location report answered with a fresh region "
          f"({message_bytes(fresh)} bytes)")

    await alice.close()
    await cafe.close()
    await service.stop()
    print("service stopped cleanly")


if __name__ == "__main__":
    asyncio.run(main())
