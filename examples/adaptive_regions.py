"""Adaptive safe regions: watching the cost model react to the stream.

The event arrival rate cycles 0 -> 40 -> 0 events per timestamp while a
single subscriber drives through the city.  The server estimates the
rate from a sliding window and resizes every new safe region
accordingly — large when the stream is quiet (few impact hits to fear),
small when it is hot.  The run prints the region size at each
reconstruction next to the estimated rate, making Figure 10's mechanism
visible; an oracle run (free refreshes with the true rate) is shown for
comparison.

Run:  python examples/adaptive_regions.py
"""

from repro import ExperimentConfig, build_simulation

PLATEAU = 25
PEAK = 40.0


def cycle(t: int) -> float:
    return (0.0, PEAK / 2, PEAK, PEAK / 2)[(t // PLATEAU) % 4]


BASE = ExperimentConfig(
    subscribers=6,
    timestamps=200,
    initial_events=5_000,
    event_ttl=40,
    event_rate=PEAK / 2,
    rate_schedule=cycle,
    seed=11,
)


def run(label: str, config: ExperimentConfig) -> None:
    simulation = build_simulation(config)
    server = simulation.server

    sizes = []
    original_construct = server._construct

    def traced_construct(record, now):
        original_construct(record, now)
        sizes.append((now, server.system_stats(now).event_rate,
                      record.safe.area_cells()))

    server._construct = traced_construct
    result = simulation.run(config.timestamps)

    print(f"--- {label} ---")
    print(f"{'t':>5} {'estimated f':>12} {'region cells':>13}")
    # show real regions; empty ones (subscriber pinned next to a matching
    # event) are summarised instead of listed
    shown = [(t, r, c) for t, r, c in sizes if c > 0]
    for now, rate, cells in shown[:: max(len(shown) // 12, 1)]:
        print(f"{now:>5} {rate:>12.1f} {cells:>13}")
    empty = len(sizes) - len(shown)
    if empty:
        print(f"({empty} constructions yielded empty regions: the subscriber's "
              f"own cell was unsafe)")
    per = result.per_subscriber()
    print(f"totals: {per['location_update']:.1f} location + "
          f"{per['event_arrival']:.1f} event rounds per subscriber\n")

    quiet = [c for _, r, c in sizes if r <= PEAK / 4]
    busy = [c for _, r, c in sizes if r >= PEAK * 0.75]
    if quiet and busy:
        print(f"mean region size: {sum(quiet)/len(quiet):.0f} cells when quiet "
              f"vs {sum(busy)/len(busy):.0f} cells at peak rate\n")


def main() -> None:
    run("iGM (estimating f from the stream)", BASE)
    run("iGM-opi (oracle: true f, free refreshes)",
        BASE.with_(oracle_rebuild=True))


if __name__ == "__main__":
    main()
