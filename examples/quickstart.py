"""Quickstart: a complete Elaps session in ~60 lines.

A subscriber interested in discounted basketball shoes (the paper's
Figure 1 scenario) drives east while shops publish events.  The example
shows the full pub/sub loop: subscribe, receive a safe region, publish
matching and non-matching events, watch the impact region do its job,
and report a location update after leaving the safe region.

Run:  python examples/quickstart.py
"""

from repro import (
    BEQTree,
    BooleanExpression,
    ElapsServer,
    Event,
    Grid,
    IGM,
    Operator,
    Point,
    Predicate,
    Rect,
    ServerConfig,
    Subscription,
)


def main() -> None:
    # A 50 km x 50 km city, gridded 120 x 120 for safe regions.
    space = Rect(0, 0, 50_000, 50_000)
    server = ElapsServer(
        Grid(120, space),
        IGM(max_cells=2_000),
        ServerConfig(initial_rate=1.0),
        event_index=BEQTree(space, emax=256),
    )

    # Figure 1: "name = shoes AND model = Jordan AJ23 AND price < $1000".
    interest = BooleanExpression([
        Predicate("name", Operator.EQ, "shoes"),
        Predicate("model", Operator.EQ, "Jordan AJ23"),
        Predicate("price", Operator.LT, 1000),
    ])
    subscriber = Subscription(sub_id=1, expression=interest, radius=2_000.0)

    # An event already in the store: a matching sale 1.5 km away.
    server.bootstrap([
        Event(100, {"name": "shoes", "model": "Jordan AJ23", "price": 899},
              Point(26_500, 25_000)),
    ])

    position, velocity = Point(25_000, 25_000), Point(60.0, 0.0)
    delivered, safe_region = server.subscribe(subscriber, position, velocity, now=0)
    print(f"subscribed; {len(delivered)} event(s) already inside the circle:")
    for notification in delivered:
        print(f"  -> event {notification.event.event_id}: "
              f"{dict(notification.event.attributes)}")
    print(f"safe region: {safe_region.area_cells()} cells, "
          f"{safe_region.encoded_bytes()} bytes on the wire (WAH bitmap)")

    # A matching event far away: lands outside the impact region, silent.
    far = Event(101, {"name": "shoes", "model": "Jordan AJ23", "price": 750},
                Point(48_000, 48_000))
    assert server.publish(far, now=1) == []
    print("far matching event published: no communication (outside impact region)")

    # A matching event right next to the subscriber: instant notification.
    near = Event(102, {"name": "shoes", "model": "Jordan AJ23", "price": 650},
                 Point(25_400, 25_200))
    notifications = server.publish(near, now=2)
    print(f"near matching event published: notified {[n.sub_id for n in notifications]}")

    # An event that fails the boolean expression: never considered.
    wrong = Event(103, {"name": "shoes", "model": "Air Max", "price": 500},
                  Point(25_300, 25_000))
    assert server.publish(wrong, now=3) == []
    print("non-matching event published: silent")

    # The subscriber keeps driving east; the client stays silent until its
    # position leaves the safe region, then reports.
    new_position = position
    while safe_region.contains_point(new_position) and new_position.x < 49_000:
        new_position = Point(new_position.x + 500.0, new_position.y)
    notifications, new_region = server.report_location(
        subscriber.sub_id, new_position, velocity, now=50
    )
    print(f"location update at x={new_position.x:.0f}: {len(notifications)} new "
          f"notification(s), new safe region of {new_region.area_cells()} cells")

    stats = server.metrics
    print(f"\ncommunication so far: {stats.location_update_rounds} location-update "
          f"round(s), {stats.event_arrival_rounds} event-arrival round(s), "
          f"{stats.notifications} notification(s)")


if __name__ == "__main__":
    main()
