"""Index comparison: BEQ-Tree against the three baselines of Figure 8.

A Twitter-like corpus is loaded into a plain Quadtree, k-index, OpIndex
and the BEQ-Tree; a batch of subscriptions is then matched against each,
timing the spatial/boolean phases.  All four return identical results —
the difference is purely how much of the corpus each one has to touch.

Run:  python examples/index_comparison.py
"""

import time

from repro import (
    BEQTree,
    KIndex,
    OpIndex,
    Point,
    QuadTree,
    Rect,
    TwitterLikeGenerator,
)

SPACE = Rect(0, 0, 50_000, 50_000)
EVENTS = 30_000
QUERIES = 60


def main() -> None:
    generator = TwitterLikeGenerator(SPACE, seed=11)
    print(f"loading {EVENTS} Twitter-like events into the four indexes...")
    events = generator.events(EVENTS)
    subscriptions = generator.subscriptions(QUERIES, size=3, radius=3_000.0)
    locations = [event.location for event in events[:QUERIES]]

    indexes = {
        "Quadtree": QuadTree(SPACE, max_per_leaf=256),
        "k-index": KIndex(),
        "OpIndex": OpIndex(frequency_hint=generator.frequency_hint()),
        "BEQ-Tree": BEQTree(SPACE, emax=512),
    }
    build_times = {}
    for name, index in indexes.items():
        started = time.perf_counter()
        index.insert_all(events)
        build_times[name] = time.perf_counter() - started

    print(f"\nmatching {QUERIES} subscriptions (delta=3, r=3 km) against each:\n")
    print(f"{'index':<10} {'build (s)':>10} {'match total (ms)':>18} "
          f"{'per query (ms)':>16} {'results':>8}")
    reference = None
    for name, index in indexes.items():
        started = time.perf_counter()
        result_count = 0
        all_results = []
        for subscription, at in zip(subscriptions, locations):
            matches = index.match(subscription, at)
            result_count += len(matches)
            all_results.append(sorted(e.event_id for e in matches))
        elapsed = (time.perf_counter() - started) * 1000
        if reference is None:
            reference = all_results
        else:
            assert all_results == reference, f"{name} diverged from Quadtree!"
        print(f"{name:<10} {build_times[name]:>10.2f} {elapsed:>18.1f} "
              f"{elapsed / QUERIES:>16.2f} {result_count:>8}")
    print("\nall four indexes returned identical matches "
          "(the paper: 'all the approaches produce the same and complete results')")


if __name__ == "__main__":
    main()
