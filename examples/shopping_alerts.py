"""Shopping alerts: the paper's Figure 1 scenario end to end.

A handful of shoppers move through a city subscribing to structured
deals — shoes under a price cap, car maintenance for a specific model, a
technology museum open late — while shops continuously publish offers.
The example runs the full Elaps stack (BEQ-Tree event index, OpIndex-style
subscription index, iGM safe regions) and prints who gets notified of
what, plus the communication the safe regions saved.

Run:  python examples/shopping_alerts.py
"""

import random

from repro import (
    BEQTree,
    BooleanExpression,
    CallbackTransport,
    ElapsServer,
    Event,
    Grid,
    IGM,
    Operator,
    Point,
    Predicate,
    Rect,
    RoadNetwork,
    ServerConfig,
    Subscription,
    SyntheticTrajectoryGenerator,
)

SPACE = Rect(0, 0, 30_000, 30_000)
TIMESTAMPS = 150

SHOPPERS = [
    # (sub id, interest, radius) — the boolean expressions of Figure 1
    (1, [Predicate("name", Operator.EQ, "shoes"),
         Predicate("model", Operator.EQ, "Jordan AJ23"),
         Predicate("price", Operator.LT, 1000)], 2_500.0),
    (2, [Predicate("service", Operator.EQ, "car maintaining"),
         Predicate("car_model", Operator.EQ, "Porsche")], 3_000.0),
    (3, [Predicate("name", Operator.EQ, "museum"),
         Predicate("category", Operator.EQ, "technology"),
         Predicate("close_time", Operator.GT, 18)], 4_000.0),
    (4, [Predicate("name", Operator.EQ, "ochirly"),
         Predicate("model", Operator.EQ, "dress"),
         Predicate("price", Operator.BETWEEN, (200, 500))], 2_000.0),
]

OFFER_TEMPLATES = [
    {"name": "shoes", "model": "Jordan AJ23", "limited": "yes", "price": 899},
    {"name": "shoes", "model": "Jordan AJ23", "price": 1_500},  # too expensive
    {"service": "car maintaining", "car_model": "Porsche", "price": 1_500},
    {"name": "museum", "category": "technology", "open_time": 8, "close_time": 20},
    {"name": "museum", "category": "technology", "close_time": 18},  # closes too early
    {"name": "ochirly", "model": "dress", "price": 489},
    {"name": "ochirly", "model": "dress", "price": 999},  # outside the interval
    {"name": "coffee", "price": 6},  # nobody asked
]


def main() -> None:
    rng = random.Random(2015)
    network = RoadNetwork(SPACE, grid_size=8, seed=3)
    walkers = SyntheticTrajectoryGenerator(network, speed=50.0, seed=4)
    trajectories = {sub_id: walkers.trajectory(sub_id, TIMESTAMPS + 1)
                    for sub_id, _, _ in SHOPPERS}

    client_regions = {}
    server = ElapsServer(
        Grid(100, SPACE),
        IGM(max_cells=1_500),
        ServerConfig(initial_rate=1.0),
        event_index=BEQTree(SPACE, emax=128),
        transport=CallbackTransport(
            locate=lambda sub_id: (
                trajectories[sub_id].position_at(clock),
                trajectories[sub_id].velocity_at(clock),
            ),
            ship_region=client_regions.__setitem__,
        ),
    )

    for sub_id, predicates, radius in SHOPPERS:
        subscription = Subscription(sub_id, BooleanExpression(predicates), radius)
        _, region = server.subscribe(
            subscription, trajectories[sub_id].position_at(0),
            trajectories[sub_id].velocity_at(0), now=0,
        )
        client_regions[sub_id] = region

    next_event_id, total_notifications = 0, 0
    for clock in range(1, TIMESTAMPS + 1):
        # clients move; silent while inside their safe regions
        for sub_id, _, _ in SHOPPERS:
            position = trajectories[sub_id].position_at(clock)
            region = client_regions[sub_id]
            if region.is_empty() or not region.contains_point(position):
                server.report_location(
                    sub_id, position, trajectories[sub_id].velocity_at(clock), clock
                )
        # shops publish a couple of offers per timestamp; half of them in
        # the busy area the shoppers roam (shops cluster downtown)
        for _ in range(2):
            attributes = dict(rng.choice(OFFER_TEMPLATES))
            if rng.random() < 0.5:
                anchor = trajectories[rng.choice(SHOPPERS)[0]].position_at(clock)
                location = Point(
                    min(max(rng.gauss(anchor.x, 2_000.0), 0.0), 30_000.0),
                    min(max(rng.gauss(anchor.y, 2_000.0), 0.0), 30_000.0),
                )
            else:
                location = Point(rng.uniform(0, 30_000), rng.uniform(0, 30_000))
            event = Event(next_event_id, attributes, location,
                          arrived_at=clock, expires_at=clock + 40)
            next_event_id += 1
            for notification in server.publish(event, clock):
                total_notifications += 1
                offer = dict(notification.event.attributes)
                print(f"t={clock:3d}  shopper {notification.sub_id} notified: {offer}")
        server.expire_due_events(clock)

    stats = server.metrics
    naive_reports = len(SHOPPERS) * TIMESTAMPS  # report-every-tick baseline
    print(f"\n{total_notifications} notifications delivered to {len(SHOPPERS)} shoppers "
          f"over {TIMESTAMPS} timestamps")
    print(f"communication rounds: {stats.location_update_rounds} location updates + "
          f"{stats.event_arrival_rounds} event-arrival pings = {stats.total_rounds}")
    print(f"a safe-region-less client would have reported {naive_reports} times "
          f"({naive_reports / max(stats.total_rounds, 1):.0f}x more)")


if __name__ == "__main__":
    main()
