"""A brute-force matching oracle for differential testing.

Every index in :mod:`repro.index` is an optimisation of the same
specification — Definition 5: subscriber ``s`` standing at ``at`` is
notified of event ``e`` iff the boolean expression matches ``e``'s
attributes and ``e`` lies within the notification radius.  The oracle
implements that specification with no index at all: a flat event list
scanned in O(S·E).  Anything cleverer (BEQ-Tree walks, OpIndex counting,
batched single-pass matching) must agree with it *exactly*; the
differential suite in ``tests/test_oracle_differential.py`` holds them
to that on randomized workloads.

The oracle is deliberately dumb: no early exits, no spatial pruning, no
shared state between queries — each ``match`` call re-scans the full
event list so a bug cannot hide in cached results.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..expressions import Event, Subscription
from ..geometry import Point


class BruteForceOracle:
    """The O(S·E) reference matcher: a scanned list of events."""

    def __init__(self, events: Iterable[Event] = ()) -> None:
        self._events: List[Event] = []
        self._ids: Set[int] = set()
        for event in events:
            self.insert(event)

    def __len__(self) -> int:
        return len(self._events)

    def insert(self, event: Event) -> None:
        """Append an event (duplicate ids rejected, like the real indexes)."""
        if event.event_id in self._ids:
            raise ValueError(f"duplicate event id {event.event_id}")
        self._ids.add(event.event_id)
        self._events.append(event)

    def delete(self, event: Event) -> None:
        """Remove an event by id."""
        if event.event_id not in self._ids:
            raise KeyError(f"unknown event id {event.event_id}")
        self._ids.discard(event.event_id)
        self._events = [e for e in self._events if e.event_id != event.event_id]

    # ------------------------------------------------------------------
    # The specification
    # ------------------------------------------------------------------
    def be_match(self, subscription: Subscription) -> List[Event]:
        """Definition 3: boolean-expression matches, locations ignored."""
        return [e for e in self._events if subscription.be_matches(e)]

    def match(self, subscription: Subscription, at: Point) -> List[Event]:
        """Definition 5: full matches for one subscriber at ``at``.

        Insertion order — compare against index output as *sets* of event
        ids (the indexes return spatial-walk order).
        """
        return [e for e in self._events if subscription.matches(e, at)]

    def matching_pairs(
        self, queries: Sequence[Tuple[Subscription, Point]]
    ) -> Set[Tuple[int, int]]:
        """Every ``(sub_id, event_id)`` pair the specification notifies.

        The order-free canonical form all index outputs are reduced to in
        the differential tests.
        """
        return {
            (subscription.sub_id, event.event_id)
            for subscription, at in queries
            for event in self.match(subscription, at)
        }

    def matches_of_event(
        self, event: Event, queries: Sequence[Tuple[Subscription, Point]]
    ) -> List[Subscription]:
        """The event-arrival direction: who is notified of ``event``.

        The mirror of :meth:`match` used to check subscription-side
        indexes (OpIndex / SubscriptionIndex counting algorithm).
        """
        return [s for s, at in queries if s.matches(event, at)]


def oracle_pairs(
    events: Iterable[Event], queries: Sequence[Tuple[Subscription, Point]]
) -> Set[Tuple[int, int]]:
    """One-shot convenience: the notification pairs of a static workload."""
    return BruteForceOracle(events).matching_pairs(queries)


def ids(events: Iterable[Event]) -> List[int]:
    """Event ids in the given order (test-side comparison helper)."""
    return [event.event_id for event in events]


def pair_map(results: Sequence[List[Event]], queries) -> Dict[int, List[int]]:
    """Per-query id lists keyed by sub_id, for readable assertion diffs."""
    return {
        queries[i][0].sub_id: ids(result) for i, result in enumerate(results)
    }
