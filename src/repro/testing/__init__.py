"""Test support: chaos harness, matching oracle, and trace replay.

``repro.testing`` is the stable doorway to the fault-injection machinery
of :mod:`repro.system.faults` — external test suites (and our own chaos
tests) use it to stand a seeded hostile network between real clients and
an :class:`~repro.system.network.ElapsTCPServer`:

.. code-block:: python

    from repro.testing import FaultConfig, chaos_proxy

    config = FaultConfig(seed=7, drop_rate=0.05, reset_rate=0.02)
    async with chaos_proxy("127.0.0.1", tcp.port, config) as proxy:
        client = ResilientElapsClient("127.0.0.1", proxy.port, ...)
        ...
        proxy.enabled = False   # settle phase: heal and verify
"""

from __future__ import annotations

from contextlib import asynccontextmanager
from typing import Optional

from ..system.faults import (
    ChaosProxy,
    FaultAction,
    FaultConfig,
    FaultInjector,
    FaultKind,
    FaultStats,
)
from .oracle import BruteForceOracle, oracle_pairs
from .replay import (
    ReplayResult,
    TraceRecorder,
    diff_logs,
    notification_log,
    replay_trace,
)

__all__ = [
    "BruteForceOracle",
    "ChaosProxy",
    "FaultAction",
    "FaultConfig",
    "FaultInjector",
    "FaultKind",
    "FaultStats",
    "ReplayResult",
    "TraceRecorder",
    "chaos_proxy",
    "diff_logs",
    "notification_log",
    "oracle_pairs",
    "replay_trace",
]


@asynccontextmanager
async def chaos_proxy(
    target_host: str,
    target_port: int,
    config: Optional[FaultConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
):
    """A started :class:`ChaosProxy`, stopped on exit."""
    proxy = ChaosProxy(target_host, target_port, config, host=host, port=port)
    await proxy.start()
    try:
        yield proxy
    finally:
        await proxy.stop()
