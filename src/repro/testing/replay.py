"""Offline trace record/replay: every recorded workload is a test.

Two pieces turn the durability journal (DESIGN.md §13) into a
regression-grade vehicle:

* :class:`TraceRecorder` wraps *any* server object — a single
  :class:`~repro.system.server.ElapsServer` or a sharded coordinator —
  and journals every public operation (bootstrap included) before
  delegating, producing a client-level trace that is independent of the
  serving configuration;
* :func:`replay_trace` re-runs a recorded trace against a freshly built
  server under any :class:`~repro.system.config.ServerConfig` — repair
  on or off, sharded or not, different batch sizes — and returns the
  delivered notifications in a canonical text form that can be diffed
  byte-for-byte against another configuration's replay (or against the
  frozen golden trace).

Replay fidelity: location pings are *not* journaled — replay answers
them with the subscriber's last journaled position.  Traces whose
clients report on every move (the simulation's contract) or stand still
replay exactly; free movement inside a safe region is invisible to the
journal, and a near-boundary delivery decision could differ.  The
recovery path does not depend on this — reconnecting clients reconcile
through resync either way.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

from ..system.journal import (
    BOOTSTRAP,
    EXPIRE,
    LOCATION,
    PUBLISH,
    PUBLISH_BATCH,
    RESYNC,
    SUBSCRIBE,
    UNSUBSCRIBE,
    Journal,
    JournalRecord,
    JournalSpec,
    read_records,
)
from ..system.server import Notification

__all__ = [
    "ReplayResult",
    "TraceRecorder",
    "diff_logs",
    "notification_log",
    "replay_trace",
]


def notification_log(notifications: Iterable[Notification]) -> str:
    """The canonical text form of a notification stream — the same
    ``t=.. sub=.. event=..`` lines the frozen golden trace uses."""
    lines = [
        f"t={n.timestamp} sub={n.sub_id} event={n.event.event_id}"
        for n in notifications
    ]
    return "\n".join(lines) + "\n" if lines else ""


def diff_logs(expected: str, actual: str) -> str:
    """A terse first-divergence report between two notification logs
    (empty string when byte-identical)."""
    if expected == actual:
        return ""
    expected_lines = expected.splitlines()
    actual_lines = actual.splitlines()
    for index, (left, right) in enumerate(zip(expected_lines, actual_lines)):
        if left != right:
            return f"line {index + 1}: expected {left!r}, got {right!r}"
    return (
        f"length mismatch: expected {len(expected_lines)} lines, "
        f"got {len(actual_lines)}"
    )


@dataclass
class ReplayResult:
    """The outcome of one :func:`replay_trace` run."""

    notifications: List[Notification] = field(default_factory=list)
    records_applied: int = 0

    def log(self) -> str:
        """The canonical notification log of this replay."""
        return notification_log(self.notifications)

    def digest(self) -> str:
        """SHA-256 of the canonical log (handy for quick CLI diffs)."""
        return hashlib.sha256(self.log().encode()).hexdigest()


class TraceRecorder:
    """Journal every public operation of a wrapped server, then delegate.

    The wrapper is transparent: attribute access falls through to the
    inner server (metrics, registry, subscribers, …), and assigning
    ``transport`` re-targets the inner server, so a
    :class:`~repro.system.simulation.Simulation` can drive the recorder
    exactly like the server itself.  The journal format is the recovery
    journal's — a single-server recovery log is itself a valid trace.
    """

    def __init__(
        self, server, journal: Union[Journal, JournalSpec, str]
    ) -> None:
        if not isinstance(journal, Journal):
            journal = Journal(journal)
        self._server = server
        self._journal = journal

    @property
    def server(self):
        """The wrapped server."""
        return self._server

    @property
    def journal(self) -> Journal:
        """The trace journal operations are appended to."""
        return self._journal

    @property
    def transport(self):
        """The inner server's client-facing transport."""
        return self._server.transport

    @transport.setter
    def transport(self, value) -> None:
        """Install a transport on the inner server."""
        self._server.transport = value

    def __getattr__(self, name: str):
        """Fall through to the wrapped server for everything unlogged."""
        return getattr(self._server, name)

    # -- journaled operations ------------------------------------------
    def bootstrap(self, events) -> None:
        """Journal and delegate the initial corpus load."""
        events = list(events)
        self._journal.append(JournalRecord(BOOTSTRAP, 0, events=tuple(events)))
        self._server.bootstrap(events)

    def subscribe(self, subscription, location, velocity, now: int = 0):
        """Journal and delegate one subscription arrival."""
        self._journal.append(
            JournalRecord(
                SUBSCRIBE, 0, now=now, sub_id=subscription.sub_id,
                subscription=subscription, location=location, velocity=velocity,
            )
        )
        return self._server.subscribe(subscription, location, velocity, now)

    def unsubscribe(self, sub_id: int) -> None:
        """Journal and delegate one subscription expiration."""
        self._journal.append(JournalRecord(UNSUBSCRIBE, 0, sub_id=sub_id))
        self._server.unsubscribe(sub_id)

    def publish(self, event, now: int):
        """Journal and delegate one event arrival."""
        self._journal.append(JournalRecord(PUBLISH, 0, now=now, events=(event,)))
        return self._server.publish(event, now)

    def publish_batch(self, events, now: int):
        """Journal and delegate one event burst."""
        events = list(events)
        if events:
            self._journal.append(
                JournalRecord(PUBLISH_BATCH, 0, now=now, events=tuple(events))
            )
        return self._server.publish_batch(events, now)

    def report_location(self, sub_id: int, location, velocity, now: int):
        """Journal and delegate one client location report."""
        self._journal.append(
            JournalRecord(
                LOCATION, 0, now=now, sub_id=sub_id,
                location=location, velocity=velocity,
            )
        )
        return self._server.report_location(sub_id, location, velocity, now)

    def resync(self, sub_id: int, location, velocity, received, now: int):
        """Journal and delegate one client resync."""
        received = tuple(received)
        self._journal.append(
            JournalRecord(
                RESYNC, 0, now=now, sub_id=sub_id, location=location,
                velocity=velocity, received=received,
            )
        )
        return self._server.resync(sub_id, location, velocity, received, now)

    def expire_due_events(self, now: int) -> int:
        """Journal (when due) and delegate one expiry sweep."""
        self._journal.append(JournalRecord(EXPIRE, 0, now=now))
        return self._server.expire_due_events(now)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Flush the trace journal and close the inner server."""
        self._journal.close()
        close = getattr(self._server, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "TraceRecorder":
        """Context-manager support: closing flushes the trace."""
        return self

    def __exit__(self, *exc) -> None:
        """Close on context exit."""
        self.close()


def _regroup(
    records: Sequence[JournalRecord], batch_size: Optional[int]
) -> List[JournalRecord]:
    """Reshape the publish stream to ``batch_size`` events per batch.

    ``None`` replays the trace exactly as recorded; ``1`` splits batches
    into single publishes; ``N > 1`` coalesces consecutive same-timestamp
    publishes (and re-chunks recorded batches) into bursts of at most N.
    The single and batched paths deliver identical notifications (the
    golden differential pins this), so regrouping is semantics-preserving.
    """
    if batch_size is None:
        return list(records)
    reshaped: List[JournalRecord] = []
    pending: List = []
    pending_now = 0

    def flush() -> None:
        """Drain the pending burst into records of at most batch_size."""
        while pending:
            chunk, rest = pending[:batch_size], pending[batch_size:]
            pending[:] = rest
            if len(chunk) == 1 and batch_size == 1:
                reshaped.append(
                    JournalRecord(PUBLISH, 0, now=pending_now, events=tuple(chunk))
                )
            else:
                reshaped.append(
                    JournalRecord(
                        PUBLISH_BATCH, 0, now=pending_now, events=tuple(chunk)
                    )
                )

    for record in records:
        if record.kind in (PUBLISH, PUBLISH_BATCH):
            if pending and record.now != pending_now:
                flush()
            pending_now = record.now
            pending.extend(record.events)
            continue
        flush()
        reshaped.append(record)
    flush()
    return reshaped


def replay_trace(
    trace: Union[str, JournalSpec],
    server,
    batch_size: Optional[int] = None,
) -> ReplayResult:
    """Re-run a recorded trace against ``server``; collect what it delivers.

    ``server`` is any freshly built server object (single or sharded) —
    the point is that the *same* trace can be driven through different
    configurations and the resulting :meth:`ReplayResult.log` compared
    byte-for-byte.  The trace file is only read, never modified.
    """
    path = trace.path if isinstance(trace, JournalSpec) else trace
    result = ReplayResult()
    for record in _regroup(list(read_records(path)), batch_size):
        kind = record.kind
        if kind == BOOTSTRAP:
            server.bootstrap(record.events)
        elif kind == SUBSCRIBE:
            notifications, _ = server.subscribe(
                record.subscription, record.location, record.velocity, now=record.now
            )
            result.notifications.extend(notifications)
        elif kind == UNSUBSCRIBE:
            server.unsubscribe(record.sub_id)
        elif kind == LOCATION:
            notifications, _ = server.report_location(
                record.sub_id, record.location, record.velocity, now=record.now
            )
            result.notifications.extend(notifications)
        elif kind == RESYNC:
            notifications, _ = server.resync(
                record.sub_id, record.location, record.velocity,
                record.received, now=record.now,
            )
            result.notifications.extend(notifications)
        elif kind == PUBLISH:
            result.notifications.extend(server.publish(record.event, record.now))
        elif kind == PUBLISH_BATCH:
            result.notifications.extend(
                server.publish_batch(list(record.events), record.now)
            )
        elif kind == EXPIRE:
            server.expire_due_events(record.now)
        result.records_applied += 1
    return result
