"""Observability: span tracing, latency histograms, unified metrics.

The paper's evaluation is *measurement* — §3.3's cost model and
Appendix D's server-computation figures stand or fall with the
accounting behind them.  Until now that accounting was a bag of plain
counters (:class:`~repro.system.metrics.CommunicationStats`) plus one
lumped ``server_seconds`` float fed by ad-hoc ``time.perf_counter()``
calls.  This module replaces the sprinkling with one instrument:

* :class:`LatencyHistogram` — fixed log-scale buckets over seconds with
  p50/p95/p99 estimates; histograms merge bucket-wise, so shards and
  reruns aggregate without losing the distribution;
* :class:`SpanTracer` — near-zero-overhead, nestable context-manager
  spans over the hot stages of the pipeline (``match``, ``construct``,
  ``repair``, ``ship``, ``batch``, frame ``read``/``decode``/
  ``dispatch``/``drain``, ...), each feeding one histogram; an optional
  slow-span threshold logs outliers as they happen;
* :class:`MetricsRegistry` — the one handle unifying the counter
  accumulator and the tracer: snapshots (for the ``StatsSnapshot`` wire
  message, frame type 13), merging, and a ``render_prometheus()`` text
  exporter in the Prometheus exposition format.

Overhead discipline: a disabled tracer hands out one shared no-op span
(two attribute loads per stage), and an enabled span costs two
``perf_counter()`` calls plus one histogram insert.  The benchmark
suite gates the enabled-tracing overhead at under 5% of batched publish
throughput (``BENCH_throughput.json`` schema v3).
"""

from __future__ import annotations

import logging
import math
from typing import Callable, Dict, List, Optional, Tuple

from time import perf_counter

from .metrics import CommunicationStats

logger = logging.getLogger(__name__)

__all__ = [
    "BUCKET_BOUNDS",
    "LatencyHistogram",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "render_prometheus",
]

# ----------------------------------------------------------------------
# Histogram buckets
# ----------------------------------------------------------------------
#: Upper bounds (seconds) of the fixed log-scale buckets: powers of two
#: from 1 µs to ~67 s, 27 bounds plus an implicit +Inf overflow bucket.
#: Fixed bounds are what make histograms a mergeable wire type — every
#: snapshot, whatever produced it, buckets identically.
BUCKET_BOUNDS: Tuple[float, ...] = tuple(1e-6 * 2.0**i for i in range(27))

_BUCKET_COUNT = len(BUCKET_BOUNDS) + 1  # + the overflow bucket
#: log2 of the first bound; bucket index is computed arithmetically
#: (one log2 call) instead of scanning the bounds list
_LOG2_FIRST = math.log2(1e-6)


class LatencyHistogram:
    """Fixed-bucket log-scale latency histogram over seconds.

    ``counts[i]`` holds observations with
    ``BUCKET_BOUNDS[i-1] < value <= BUCKET_BOUNDS[i]`` (the first bucket
    catches everything at or below 1 µs, the last everything beyond the
    largest bound).  The exact sum is kept alongside, so mean latency
    does not suffer bucket quantisation.
    """

    __slots__ = ("counts", "total_seconds")

    def __init__(
        self,
        counts: Optional[List[int]] = None,
        total_seconds: float = 0.0,
    ) -> None:
        if counts is None:
            counts = [0] * _BUCKET_COUNT
        elif len(counts) != _BUCKET_COUNT:
            raise ValueError(
                f"expected {_BUCKET_COUNT} buckets, got {len(counts)}"
            )
        self.counts = counts
        self.total_seconds = total_seconds

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, seconds: float) -> None:
        """Insert one observation (negative durations clamp to zero)."""
        if seconds <= 1e-6:
            index = 0
        else:
            # bucket i covers (bounds[i-1], bounds[i]]; the ceil keeps
            # exact powers of two on the inclusive side
            index = math.ceil(math.log2(seconds) - _LOG2_FIRST)
            if index >= _BUCKET_COUNT:
                index = _BUCKET_COUNT - 1
        self.counts[index] += 1
        if seconds > 0.0:
            self.total_seconds += seconds

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Total observations (every record lands in exactly one bucket)."""
        return sum(self.counts)

    def quantile(self, q: float) -> float:
        """The upper bound of the bucket holding the ``q``-quantile.

        A conservative (never-underestimating) estimate; the overflow
        bucket reports the largest finite bound.  Returns 0.0 with no
        observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        total = self.count
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for index, bucket in enumerate(self.counts):
            cumulative += bucket
            if cumulative >= rank and bucket:
                return BUCKET_BOUNDS[min(index, len(BUCKET_BOUNDS) - 1)]
        return BUCKET_BOUNDS[-1]

    @property
    def p50(self) -> float:
        """Median latency (bucket upper bound)."""
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        """95th-percentile latency (bucket upper bound)."""
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        """99th-percentile latency (bucket upper bound)."""
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        """Exact mean latency (the sum is kept unquantised)."""
        total = self.count
        return self.total_seconds / total if total else 0.0

    # ------------------------------------------------------------------
    # Algebra & codecs
    # ------------------------------------------------------------------
    def merged_with(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Bucket-wise sum with another histogram (inputs untouched).

        This is the *only* correct way to combine two histograms — the
        counts vectors add element by element so the merged distribution
        is exactly the union of observations.  Collapsing either side to
        an integer first would destroy the distribution.
        """
        return LatencyHistogram(
            [a + b for a, b in zip(self.counts, other.counts)],
            self.total_seconds + other.total_seconds,
        )

    def summary(self) -> Dict[str, float]:
        """The scalar digest benches and reports embed."""
        return {
            "count": self.count,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "mean": self.mean,
            "total_seconds": self.total_seconds,
        }

    def as_dict(self) -> Dict[str, object]:
        """Machine-readable form: the bucket counts plus the exact sum."""
        return {"counts": list(self.counts), "total_seconds": self.total_seconds}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LatencyHistogram":
        """Inverse of :meth:`as_dict`."""
        return cls(list(payload["counts"]), float(payload["total_seconds"]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyHistogram(count={self.count}, p50={self.p50:g}, "
            f"p99={self.p99:g}, total={self.total_seconds:g}s)"
        )


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class Span:
    """One timed region of code.

    Spans are plain context managers, so they nest naturally — a
    ``construct`` span inside a ``batch`` span times the construction
    and contributes to both histograms.  Every ``span()`` call hands out
    a fresh object: interleaved spans of the same stage (two TCP
    connections awaiting ``drain`` concurrently) each keep their own
    start time, which a shared per-stage object would corrupt.
    """

    __slots__ = ("_tracer", "stage", "histogram", "_started")

    def __init__(self, tracer: "SpanTracer", stage: str,
                 histogram: LatencyHistogram) -> None:
        self._tracer = tracer
        self.stage = stage
        self.histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "Span":
        self._started = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = perf_counter() - self._started
        self.histogram.record(elapsed)
        threshold = self._tracer.slow_threshold
        if threshold is not None and elapsed >= threshold:
            self._tracer._on_slow(self.stage, elapsed)


class _NoopSpan:
    """The disabled tracer's shared span: enter/exit do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class SpanTracer:
    """Hands out spans and owns the per-stage latency histograms.

    ``span(stage)`` is the entire API surface the hot paths see::

        with tracer.span("match"):
            matches = list(index.match_event(event))

    With ``enabled=False`` every call returns one shared no-op object,
    so dormant instrumentation costs a dict hit and two empty methods.
    A ``slow_threshold`` (seconds) turns the tracer into a live
    profiler: any span at or above it is reported through
    ``slow_handler`` (default: a ``logging`` warning) the moment it
    closes.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        slow_threshold: Optional[float] = None,
        slow_handler: Optional[Callable[[str, float], None]] = None,
    ) -> None:
        self.enabled = enabled
        self.slow_threshold = slow_threshold
        self.slow_handler = slow_handler
        #: stage name -> histogram; populated lazily as stages first run
        self.histograms: Dict[str, LatencyHistogram] = {}

    def span(self, stage: str):
        """A fresh context manager timing one occurrence of ``stage``."""
        if not self.enabled:
            return _NOOP_SPAN
        histogram = self.histograms.get(stage)
        if histogram is None:
            histogram = self.histograms[stage] = LatencyHistogram()
        return Span(self, stage, histogram)

    def histogram(self, stage: str) -> LatencyHistogram:
        """The histogram for ``stage`` (created empty if never traced)."""
        return self.histograms.setdefault(stage, LatencyHistogram())

    def _on_slow(self, stage: str, elapsed: float) -> None:
        if self.slow_handler is not None:
            self.slow_handler(stage, elapsed)
        else:
            logger.warning("slow span: %s took %.6fs (threshold %.6fs)",
                           stage, elapsed, self.slow_threshold)

    def summaries(self) -> Dict[str, Dict[str, float]]:
        """Per-stage scalar digests, stages sorted by name."""
        return {
            stage: self.histograms[stage].summary()
            for stage in sorted(self.histograms)
        }


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """One handle over everything the system measures.

    Unifies the counter accumulator (:class:`CommunicationStats`) with
    the span tracer's histograms, so snapshots, merges, and exports see
    a single consistent surface.  The server owns one; the TCP layer
    serves it as frame type 13; the CLI and benchmarks print it.
    """

    def __init__(
        self,
        stats: Optional[CommunicationStats] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        self.stats = stats if stats is not None else CommunicationStats()
        self.tracer = tracer if tracer is not None else SpanTracer()

    def span(self, stage: str):
        """Shorthand for ``registry.tracer.span(stage)``."""
        return self.tracer.span(stage)

    # ------------------------------------------------------------------
    # Snapshots & merging
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A point-in-time copy: every counter, every histogram."""
        return {
            "counters": self.stats.as_dict(),
            "spans": {
                stage: histogram.as_dict()
                for stage, histogram in sorted(self.tracer.histograms.items())
            },
        }

    def merged_with(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Counters add field-wise; histograms merge bucket-wise.

        The distinction matters: a histogram is a distribution, and the
        only lossless combination is element-wise bucket addition —
        which :meth:`LatencyHistogram.merged_with` implements — never a
        scalar sum.
        """
        merged = MetricsRegistry(self.stats.merged_with(other.stats))
        merged.tracer.enabled = self.tracer.enabled or other.tracer.enabled
        for stage in sorted(set(self.tracer.histograms) | set(other.tracer.histograms)):
            left = self.tracer.histograms.get(stage)
            right = other.tracer.histograms.get(stage)
            if left is None:
                combined = right.merged_with(LatencyHistogram())
            elif right is None:
                combined = left.merged_with(LatencyHistogram())
            else:
                combined = left.merged_with(right)
            merged.tracer.histograms[stage] = combined
        return merged

    # ------------------------------------------------------------------
    # Prometheus export
    # ------------------------------------------------------------------
    def render_prometheus(self, prefix: str = "elaps") -> str:
        """The registry in the Prometheus text exposition format."""
        return render_prometheus(
            self.stats.as_dict(), self.tracer.histograms, prefix=prefix
        )


def _format_value(value: float) -> str:
    """A float in exposition format (integers stay integral)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _format_bound(bound: float) -> str:
    """A ``le`` label value; trailing-zero-free for readability."""
    return f"{bound:.9g}"


def render_prometheus(
    counters: Dict[str, object],
    histograms: Dict[str, LatencyHistogram],
    *,
    prefix: str = "elaps",
) -> str:
    """Counters and histograms as Prometheus text exposition format.

    Counter fields become ``<prefix>_<name>_total`` counters (the
    ``bytes_measured`` flag and the ``*_high_water`` queue-depth marks
    become gauges, ``server_seconds`` keeps its unit in the name); every
    span stage becomes one labelled
    series of the single ``<prefix>_stage_duration_seconds`` histogram
    family, with the cumulative ``le`` buckets the format requires.
    """
    lines: List[str] = []
    for name in sorted(counters):
        value = counters[name]
        if name == "bytes_measured":
            metric = f"{prefix}_bytes_measured"
            lines.append(f"# HELP {metric} Whether wire-byte measurement was on.")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(value)}")
            continue
        if name.endswith("_high_water"):
            # queue-depth high-water marks are level gauges, not
            # monotone accumulators; a _total suffix would invite rate()
            metric = f"{prefix}_{name}"
            lines.append(f"# HELP {metric} CommunicationStats.{name} gauge.")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(value)}")
            continue
        metric = f"{prefix}_{name}_total"
        lines.append(f"# HELP {metric} CommunicationStats.{name} accumulator.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    if histograms:
        family = f"{prefix}_stage_duration_seconds"
        lines.append(f"# HELP {family} Span latency by pipeline stage.")
        lines.append(f"# TYPE {family} histogram")
        for stage in sorted(histograms):
            histogram = histograms[stage]
            cumulative = 0
            for bound, count in zip(BUCKET_BOUNDS, histogram.counts):
                cumulative += count
                lines.append(
                    f'{family}_bucket{{stage="{stage}",le="{_format_bound(bound)}"}}'
                    f" {cumulative}"
                )
            cumulative += histogram.counts[-1]
            lines.append(f'{family}_bucket{{stage="{stage}",le="+Inf"}} {cumulative}')
            lines.append(
                f'{family}_sum{{stage="{stage}"}} '
                f"{_format_value(histogram.total_seconds)}"
            )
            lines.append(f'{family}_count{{stage="{stage}"}} {cumulative}')
    return "\n".join(lines) + "\n"
