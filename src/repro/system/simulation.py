"""The discrete-time client/server simulation.

One timestamp (5 seconds in the paper) advances the world in three
phases, ordered so the paper's correctness argument holds:

1. **movement** — every subscriber advances along its trajectory; the
   *client-side* containment test fires a location-update round whenever
   the subscriber's cell leaves its safe region (or the region is empty);
2. **event arrivals** — the deterministic-rate stream publishes new
   events; the server handles impact-region hits with event-arrival
   rounds (:meth:`SimulationTransport.locate` stands in for the
   ping/reply message);
3. **event expiry** — due events leave the index silently (Lemma 4).

Because phase 1 restores the invariant "every subscriber is inside its
safe region (or reports every tick)", Lemma 1 guarantees during phase 2
that any event inside a notification circle is caught by the impact
index.  ``verify_no_missed_notifications`` checks the end-to-end delivery
guarantee by brute force and is used by the integration tests.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core import SafeRegion
from ..expressions import Event, Subscription
from ..geometry import Point
from ..trajectories import Trajectory
from .client import MobileClient
from .config import Transport
from .metrics import CommunicationStats
from .observability import MetricsRegistry
from .server import ElapsServer


class SimulationTransport(Transport):
    """The in-process wire of Figure 6: pings and pushes go straight to
    the :class:`MobileClient` state machines."""

    def __init__(self, simulation: "Simulation") -> None:
        self._simulation = simulation

    def locate(self, sub_id: int) -> Tuple[Point, Point]:
        """The server's location ping, answered by the client."""
        return self._simulation.clients[sub_id].answer_ping()

    def ship_region(self, sub_id: int, region: SafeRegion) -> None:
        """The client side of the safe-region push (Figure 6)."""
        self._simulation.clients[sub_id].receive_region(region)

    def ship_delta(self, sub_id, removed, region) -> None:
        """Clients hold full regions in-process; apply the repaired one."""
        self.ship_region(sub_id, region)


@dataclass
class SimulationResult:
    """Aggregated outcome of one run."""

    stats: CommunicationStats
    subscriber_count: int
    timestamps: int
    notification_count: int
    #: the server's full observability surface (counters + per-stage
    #: latency histograms); None only for results built by hand
    registry: Optional[MetricsRegistry] = None

    def per_subscriber(self) -> Dict[str, float]:
        """The per-subscriber averages the paper's figures report."""
        return self.stats.per_subscriber(self.subscriber_count)


class Simulation:
    """Drives subscribers and an event stream against one server.

    ``server`` may be a single :class:`ElapsServer` or a
    :class:`~repro.system.sharding.ShardedElapsServer` — the simulation
    only touches the surface the two share (installing its transport,
    driving the public operations, and reading the merged metrics).
    """

    def __init__(
        self,
        server: ElapsServer,
        subscriptions: Sequence[Subscription],
        trajectories: Sequence[Trajectory],
        event_stream: Iterator[Event],
        event_rate: float,
        event_ttl: Optional[int] = None,
        rate_schedule: Optional[Callable[[int], float]] = None,
        oracle_rebuild: bool = False,
        oracle_signal: Optional[Callable[[int], float]] = None,
    ) -> None:
        if len(subscriptions) != len(trajectories):
            raise ValueError(
                f"{len(subscriptions)} subscriptions vs {len(trajectories)} trajectories"
            )
        if event_rate < 0:
            raise ValueError(f"negative event rate: {event_rate}")
        self.server = server
        self.subscriptions = list(subscriptions)
        self.trajectories = list(trajectories)
        self.event_stream = event_stream
        self.event_rate = event_rate
        self.event_ttl = event_ttl
        #: optional time-varying arrival rate (Figure 10a); overrides
        #: ``event_rate`` per timestamp when set
        self.rate_schedule = rate_schedule
        #: the "-opi" oracle of Figure 10: rebuild every safe region for
        #: free whenever the watched signal (the dynamic rate by default,
        #: or an explicit signal such as the speed schedule) steps
        self.oracle_rebuild = oracle_rebuild
        self.oracle_signal = oracle_signal if oracle_signal is not None else rate_schedule
        self._clock = 0
        self._arrival_accumulator = 0.0
        self._notification_count = 0
        #: the subscriber-side state machines, one per subscription
        self.clients: Dict[int, MobileClient] = {
            sub.sub_id: MobileClient(sub, traj.position_at(0), traj.velocity_at(0))
            for sub, traj in zip(self.subscriptions, self.trajectories)
        }
        server.transport = SimulationTransport(self)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self, timestamps: int) -> SimulationResult:
        """Drive the world for ``timestamps`` steps and aggregate the metrics."""
        # t = 0: everyone subscribes from their starting position.
        for subscription, trajectory in zip(self.subscriptions, self.trajectories):
            notifications, region = self.server.subscribe(
                subscription,
                trajectory.position_at(0),
                trajectory.velocity_at(0),
                now=0,
            )
            self._deliver(notifications)
            self.clients[subscription.sub_id].receive_region(region)

        previous_signal = self.oracle_signal(0) if self.oracle_signal else None
        for t in range(1, timestamps + 1):
            self._clock = t
            if self.oracle_rebuild and self.oracle_signal is not None:
                current_signal = self.oracle_signal(t)
                if current_signal != previous_signal:
                    # Figure 10's oracle: the safe regions are refreshed with
                    # the new parameters, and this refresh is free (the paper
                    # does not count it as communication I/O).
                    self.server.rebuild_all(t)
                previous_signal = current_signal
            self._move_phase(t)
            self._arrival_phase(t)
            self.server.expire_due_events(t)

        return SimulationResult(
            stats=self.server.merged_metrics(),
            subscriber_count=len(self.subscriptions),
            timestamps=timestamps,
            notification_count=self._notification_count,
            registry=self.server.merged_registry(),
        )

    def _deliver(self, notifications) -> None:
        for notification in notifications:
            self.clients[notification.sub_id].receive_notification(
                notification.event, notification.seq
            )
        self._notification_count += len(notifications)

    def _move_phase(self, t: int) -> None:
        for subscription, trajectory in zip(self.subscriptions, self.trajectories):
            client = self.clients[subscription.sub_id]
            due = client.move_to(trajectory.position_at(t), trajectory.velocity_at(t))
            if not due:
                continue  # the client stays silent inside its safe region
            location, velocity = client.report()
            notifications, new_region = self.server.report_location(
                subscription.sub_id, location, velocity, now=t
            )
            self._deliver(notifications)
            client.receive_region(new_region)

    def _arrival_phase(self, t: int) -> None:
        # Deterministic-rate arrivals: exactly the configured rate per
        # timestamp on average, via a fractional accumulator.
        rate = self.rate_schedule(t) if self.rate_schedule is not None else self.event_rate
        self._arrival_accumulator += rate
        arrivals = int(self._arrival_accumulator)
        self._arrival_accumulator -= arrivals
        for _ in range(arrivals):
            template = next(self.event_stream)
            event = dataclasses.replace(
                template,
                attributes=dict(template.attributes),
                arrived_at=t,
                expires_at=None if self.event_ttl is None else t + self.event_ttl,
            )
            self._deliver(self.server.publish(event, t))

    # ------------------------------------------------------------------
    # End-to-end guarantee check (used by the integration tests)
    # ------------------------------------------------------------------
    def verify_no_missed_notifications(self) -> List[Tuple[int, int]]:
        """Brute-force audit: (sub_id, event_id) pairs that *should* have
        been delivered by now but were not.  Empty means the paper's
        real-time dissemination guarantee held."""
        violations: List[Tuple[int, int]] = []
        for subscription, trajectory in zip(self.subscriptions, self.trajectories):
            delivered = self.server.delivered_ids(subscription.sub_id)
            position = trajectory.position_at(self._clock)
            for event in self.server.corpus_matches(subscription.expression):
                if event.event_id in delivered:
                    continue
                if position.distance_to(event.location) <= subscription.radius:
                    violations.append((subscription.sub_id, event.event_id))
        return violations
