"""Communication and server-cost accounting.

The paper's headline metric is the average *communication I/O* per
subscriber, split into the two types of Section 3.3:

* **location-update rounds** — the subscriber leaves the safe region,
  reports its location, and receives a new safe region;
* **event-arrival rounds** — a new matching event lands in the impact
  region; the server pings the subscriber, receives the location, and
  answers with either a notification or a new safe region.

The secondary metrics cover Appendix B (bytes shipped per safe region,
raw vs compressed) and Appendix D.3 (server computation cost of safe-
region construction, plus the work counters of the matching machinery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class CommunicationStats:
    """Mutable accumulator; one per simulation run."""

    location_update_rounds: int = 0
    event_arrival_rounds: int = 0
    notifications: int = 0
    constructions: int = 0
    cells_examined: int = 0
    events_scanned: int = 0
    safe_region_bytes: int = 0
    raw_region_bytes: int = 0
    #: full wire-protocol bytes (frames included), split by direction;
    #: populated only when byte measurement is enabled
    wire_bytes_up: int = 0
    wire_bytes_down: int = 0
    server_seconds: float = 0.0
    # ------------------------------------------------------------------
    # Network-hardening counters (TCP layer only; the in-process
    # simulation never touches them).  These are the observable half of
    # the fault model in DESIGN.md §8: every hostile-network incident the
    # server absorbs is counted instead of crashing the event loop.
    # ------------------------------------------------------------------
    #: frames that failed to parse (bad type byte, length mismatch,
    #: corrupted payload); each one drops its connection
    malformed_frames: int = 0
    #: connections torn down by a peer reset (``ECONNRESET``) — distinct
    #: from clean EOF since the hardened ``read_frame`` surfaces them
    connection_resets: int = 0
    #: connections reaped because no frame arrived within the read timeout
    read_timeouts: int = 0
    #: heartbeat frames received (and echoed) by the server
    heartbeats: int = 0
    #: SubscribeMessage arrivals for an already-known subscriber
    #: (a reconnecting client re-registering)
    resubscribes: int = 0
    #: ResyncMessage arrivals (client reconciling its delivered set)
    resyncs: int = 0
    #: notifications re-shipped during a resync because the client
    #: reported it never received them
    redeliveries: int = 0

    @property
    def total_rounds(self) -> int:
        """Both communication types combined."""
        return self.location_update_rounds + self.event_arrival_rounds

    def per_subscriber(self, subscriber_count: int) -> Dict[str, float]:
        """The per-subscriber averages the paper's figures report."""
        if subscriber_count <= 0:
            raise ValueError(f"subscriber count must be positive: {subscriber_count}")
        return {
            "location_update": self.location_update_rounds / subscriber_count,
            "event_arrival": self.event_arrival_rounds / subscriber_count,
            "total": self.total_rounds / subscriber_count,
            "notifications": self.notifications / subscriber_count,
        }

    def merged_with(self, other: "CommunicationStats") -> "CommunicationStats":
        """Field-wise sum with another accumulator (inputs untouched)."""
        return CommunicationStats(
            location_update_rounds=self.location_update_rounds + other.location_update_rounds,
            event_arrival_rounds=self.event_arrival_rounds + other.event_arrival_rounds,
            notifications=self.notifications + other.notifications,
            constructions=self.constructions + other.constructions,
            cells_examined=self.cells_examined + other.cells_examined,
            events_scanned=self.events_scanned + other.events_scanned,
            safe_region_bytes=self.safe_region_bytes + other.safe_region_bytes,
            raw_region_bytes=self.raw_region_bytes + other.raw_region_bytes,
            wire_bytes_up=self.wire_bytes_up + other.wire_bytes_up,
            wire_bytes_down=self.wire_bytes_down + other.wire_bytes_down,
            server_seconds=self.server_seconds + other.server_seconds,
            malformed_frames=self.malformed_frames + other.malformed_frames,
            connection_resets=self.connection_resets + other.connection_resets,
            read_timeouts=self.read_timeouts + other.read_timeouts,
            heartbeats=self.heartbeats + other.heartbeats,
            resubscribes=self.resubscribes + other.resubscribes,
            resyncs=self.resyncs + other.resyncs,
            redeliveries=self.redeliveries + other.redeliveries,
        )
