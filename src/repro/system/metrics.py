"""Communication and server-cost accounting.

The paper's headline metric is the average *communication I/O* per
subscriber, split into the two types of Section 3.3:

* **location-update rounds** — the subscriber leaves the safe region,
  reports its location, and receives a new safe region;
* **event-arrival rounds** — a new matching event lands in the impact
  region; the server pings the subscriber, receives the location, and
  answers with either a notification or a new safe region.

The secondary metrics cover Appendix B (bytes shipped per safe region,
raw vs compressed) and Appendix D.3 (server computation cost of safe-
region construction, plus the work counters of the matching machinery).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class CommunicationStats:
    """Mutable accumulator; one per simulation run."""

    location_update_rounds: int = 0
    event_arrival_rounds: int = 0
    notifications: int = 0
    constructions: int = 0
    cells_examined: int = 0
    events_scanned: int = 0
    safe_region_bytes: int = 0
    raw_region_bytes: int = 0
    #: True once the owning server was configured with byte measurement
    #: (``measure_bytes=True``).  Byte measurement is OFF by default —
    #: the wire counters below then stay 0 by design, and this flag lets
    #: a report distinguish "measured zero bytes" from "never measured".
    bytes_measured: bool = False
    #: full wire-protocol bytes (frames included), split by direction;
    #: populated only when byte measurement is enabled
    wire_bytes_up: int = 0
    wire_bytes_down: int = 0
    server_seconds: float = 0.0
    # ------------------------------------------------------------------
    # Batched fast-path counters (publish_batch and the index caches it
    # drives; the single-event path leaves them all at 0).
    # ------------------------------------------------------------------
    #: publish_batch invocations
    batches: int = 0
    #: events that arrived inside a batch (so ``batch_events / batches``
    #: is the realised mean batch size)
    batch_events: int = 0
    #: quadtree descents and leaf visits the batched walks skipped
    #: compared to the equivalent one-at-a-time calls
    leaf_probes_saved: int = 0
    #: per-leaf clause-cache and per-cell covering-cache hits during
    #: batched processing (each hit skips an inverted-list counting run
    #: or a complement-table scan)
    cache_hits: int = 0
    #: distinct (operator group, value) probes the batched subscription
    #: matcher ran — ``match_batch`` probes once per distinct value per
    #: attribute layer, so this divided by ``batch_events`` shows the
    #: per-event probe amortisation
    match_batch_probes: int = 0
    #: (event, partition) pairs the attribute-bitmap prefilter skipped
    #: without probing (both the single-event and the batched matcher)
    partitions_pruned: int = 0
    # ------------------------------------------------------------------
    # Network-hardening counters (TCP layer only; the in-process
    # simulation never touches them).  These are the observable half of
    # the fault model in DESIGN.md §8: every hostile-network incident the
    # server absorbs is counted instead of crashing the event loop.
    # ------------------------------------------------------------------
    #: frames that failed to parse (bad type byte, length mismatch,
    #: corrupted payload); each one drops its connection
    malformed_frames: int = 0
    #: connections torn down by a peer reset (``ECONNRESET``) — distinct
    #: from clean EOF since the hardened ``read_frame`` surfaces them
    connection_resets: int = 0
    #: connections reaped because no frame arrived within the read timeout
    read_timeouts: int = 0
    #: connections reaped because a response could not be flushed within
    #: the write timeout (a stalled or unreachable peer); distinct from
    #: ``read_timeouts`` — a slow *reader* on the far end is a different
    #: incident than a silent sender, and conflating them hid real
    #: backpressure problems behind an idle-connection count
    write_timeouts: int = 0
    #: heartbeat frames received (and echoed) by the server
    heartbeats: int = 0
    #: SubscribeMessage arrivals for an already-known subscriber
    #: (a reconnecting client re-registering)
    resubscribes: int = 0
    #: ResyncMessage arrivals (client reconciling its delivered set)
    resyncs: int = 0
    #: notifications re-shipped during a resync because the client
    #: reported it never received them
    redeliveries: int = 0
    # ------------------------------------------------------------------
    # Backpressure counters (the queued connection front-end of
    # DESIGN.md §17; a server built before it, or an in-process
    # simulation, leaves them all at 0).
    # ------------------------------------------------------------------
    #: frames a subscriber's live connection could not be written
    #: (dying transport under the writer task); the loss is healed by
    #: the client's next resync — but it is no longer silent
    push_errors: int = 0
    #: stale frames dropped from over-cap send queues (region pushes,
    #: deltas, ephemeral echoes — never notifications)
    frames_shed: int = 0
    #: queued region pushes/deltas removed because a newer full
    #: SafeRegionPush for the same subscriber entered the queue
    superseded_region_ships: int = 0
    #: connections dropped because their send queue stayed over cap past
    #: the grace window (or hit the hard cap); healed by resync
    slow_consumer_disconnects: int = 0
    #: connections closed at accept time by ``max_connections``
    connections_refused: int = 0
    #: deepest any per-connection send queue ever got (frames); a gauge
    #: — merges take the max, not the sum
    send_queue_high_water: int = 0
    #: deepest the shared ingress queue ever got (frames); gauge, merged
    #: by max
    ingress_queue_high_water: int = 0
    # ------------------------------------------------------------------
    # Incremental-repair counters (the server's ``repair=True`` mode; the
    # always-rebuild configuration leaves them all at 0).  A repair carves
    # the new event's dilation out of the cached safe region instead of
    # re-running the construction strategy, and ships only the removed
    # cells to the client.
    # ------------------------------------------------------------------
    #: type-II hits resolved by carving the cached region (no construction)
    repairs: int = 0
    #: type-II hits where the repair budget forced a full reconstruction
    #: (region empty, too many cells carved away, or balance drift)
    repair_fallbacks: int = 0
    #: compressed bytes of the removed-cell bitmaps shipped as deltas;
    #: populated only when byte measurement is enabled
    delta_region_bytes: int = 0
    # ------------------------------------------------------------------
    # Durability counters (the journal of DESIGN.md §13; a server built
    # without ``ServerConfig.journal`` leaves them all at 0).
    # ------------------------------------------------------------------
    #: operation records appended to the journal
    journal_records: int = 0
    #: bytes appended to the journal (framing included)
    journal_bytes: int = 0
    #: snapshots written (each one rotates the journal)
    snapshots_taken: int = 0
    #: bytes written as snapshot images
    snapshot_bytes: int = 0
    #: journal-tail records applied by the last :meth:`recover` call
    recovered_records: int = 0
    #: re-publishes of an event id the corpus already held, dropped
    #: idempotently (producer retries, partial-fleet replays)
    duplicate_publishes: int = 0

    @property
    def total_rounds(self) -> int:
        """Both communication types combined."""
        return self.location_update_rounds + self.event_arrival_rounds

    def per_subscriber(self, subscriber_count: int) -> Dict[str, float]:
        """The per-subscriber averages the paper's figures report.

        Besides the paper's four headline series, the repair- and
        batch-era counters are included so a report built from this view
        alone still describes what the run actually did (a repair-mode
        run with ``repairs`` omitted looks identical to always-rebuild).
        """
        if subscriber_count <= 0:
            raise ValueError(f"subscriber count must be positive: {subscriber_count}")
        return {
            "location_update": self.location_update_rounds / subscriber_count,
            "event_arrival": self.event_arrival_rounds / subscriber_count,
            "total": self.total_rounds / subscriber_count,
            "notifications": self.notifications / subscriber_count,
            "repairs": self.repairs / subscriber_count,
            "batches": self.batches / subscriber_count,
        }

    def as_dict(self) -> Dict[str, float]:
        """Every counter (and the ``bytes_measured`` flag) by field name.

        The machine-readable form benchmarks and reports consume; new
        counters join automatically, so a report can never silently miss
        one (the regression the batch counters were added to prevent).
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    #: gauge-like fields: a merge takes the max of the two sides (a
    #: fleet's high-water mark is its deepest queue, not their sum)
    MAX_MERGED = frozenset({"send_queue_high_water", "ingress_queue_high_water"})

    def merged_with(self, other: "CommunicationStats") -> "CommunicationStats":
        """Field-wise sum with another accumulator (inputs untouched).

        Counters add; the ``bytes_measured`` flag ORs (a merged report
        contains measured bytes if either side measured them); the
        high-water gauges in :data:`MAX_MERGED` take the max.
        """
        merged = CommunicationStats()
        for f in fields(CommunicationStats):
            if f.name == "bytes_measured":
                merged.bytes_measured = self.bytes_measured or other.bytes_measured
            elif f.name in self.MAX_MERGED:
                setattr(
                    merged, f.name, max(getattr(self, f.name), getattr(other, f.name))
                )
            else:
                setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged
