"""The Elaps server (Section 5, Figure 6).

The server wires together every piece of the paper's framework:

* the **event index** (a BEQ-Tree) holding the current event corpus and
  answering subscription matches and on-demand be-matching;
* the **subscription index** (OpIndex over subscriptions) answering, for
  each arriving event, which subscribers' boolean expressions it
  satisfies;
* the **impact-region index** mapping grid cells to the subscribers whose
  impact region covers them;
* the **safe-region constructor** (one of VM/GM/iGM/idGM) invoked by the
  subscription processor and the location-update handler.

Message flows implemented exactly as Section 5 describes:

*Subscription arrival* — match the event corpus (BEQ-Tree), deliver the
events already inside the notification region, construct the safe/impact
regions, ship the safe region.

*Event arrival* — insert into the event index; find be-matching
subscribers; those whose impact region covers the event's cell get a
location ping (one event-arrival round): if the event is within the
notification radius, it is delivered; otherwise new regions are built and
the safe region is shipped.

*Event expiration* — drop the event from the event index; by Lemma 4 no
client communication is needed.

*Location update* — the client reports after leaving its safe region (one
location-update round); matching events that the move brought inside the
notification circle are delivered, then new regions are built.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import time
import warnings
from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..core import (
    ConstructionRequest,
    ImpactRegion,
    LazyBEQField,
    RegionPair,
    RepairBudget,
    SafeRegion,
    SafeRegionStrategy,
    StaticMatchingField,
    SystemStats,
    vectorize_strategy,
)
from ..core.field import dilate_point
from ..expressions import Event, Subscription
from ..geometry import Cell, Grid, Point
from ..index import BEQTree, ImpactRegionIndex, SubscriptionIndex
from .config import CallbackTransport, ServerConfig, Transport
from .journal import (
    BOOTSTRAP,
    EXPIRE,
    EXTRACT,
    LOCATION,
    PUBLISH,
    PUBLISH_BATCH,
    RESYNC,
    SUBSCRIBE,
    UNSUBSCRIBE,
    Journal,
    JournalCorruptionError,
    JournalError,
    JournalRecord,
    ServerSnapshot,
    SubscriberSnapshot,
    decode_snapshot,
    encode_snapshot,
)
from .metrics import CommunicationStats
from .observability import MetricsRegistry
from .protocol import (
    LocationPing,
    LocationReport,
    SubscribeMessage,
    message_bytes,
    notification_for,
    region_delta_for,
    region_push_for,
)

#: locator callback: subscriber id -> (location, velocity)
Locator = Callable[[int], Tuple[Point, Point]]

#: delta sink: subscriber id, removed cells, the repaired safe region
DeltaSink = Callable[[int, FrozenSet[Cell], SafeRegion], None]

#: the pre-redesign keyword arguments, now carried by ServerConfig
_LEGACY_CONFIG_KWARGS = frozenset(
    f.name for f in dataclasses.fields(ServerConfig)
)


@dataclass
class RepairState:
    """Drift bookkeeping between two full constructions (repair mode).

    Created by every :meth:`ElapsServer._construct` when repair is on and
    consulted by :meth:`ElapsServer._repair` to decide — via
    :class:`~repro.core.RepairBudget` — whether carving is still cheaper
    than rebuilding.  ``ne_estimate`` tracks the matching-event count
    inside the *still-installed* impact region: every repaired type-II
    event landed there, so each one adds exactly one to the build-time
    count without re-querying the matching field.
    """

    pair: RegionPair
    cells_at_build: int
    removed_since_build: int = 0
    ne_estimate: int = 0


@dataclass
class SubscriberRecord:
    """Server-side state for one subscriber."""

    subscription: Subscription
    location: Point
    velocity: Point
    safe: Optional[SafeRegion] = None
    delivered: Set[int] = dataclass_field(default_factory=set)
    repair: Optional[RepairState] = None
    #: per-subscriber delivery sequence number: every notification this
    #: server hands the subscriber carries the next value, so a client
    #: can detect gaps after a reconnect (snapshots persist it; tail
    #: replay re-stamps deterministically)
    next_seq: int = 0


@dataclass(frozen=True)
class Notification:
    """One matching event delivered to one subscriber."""

    sub_id: int
    event: Event
    timestamp: int
    #: per-subscriber delivery sequence number (0 = unsequenced, e.g.
    #: results built by hand in tests)
    seq: int = 0


class ElapsServer:
    """The pub/sub server of Figure 6."""

    def __init__(
        self,
        grid: Grid,
        strategy: SafeRegionStrategy,
        config: Optional[ServerConfig] = None,
        *,
        event_index: Optional[BEQTree] = None,
        subscription_index: Optional[SubscriptionIndex] = None,
        transport: Optional[Transport] = None,
        **legacy,
    ) -> None:
        unknown = set(legacy) - _LEGACY_CONFIG_KWARGS
        if unknown:
            raise TypeError(
                f"ElapsServer got unexpected keyword arguments {sorted(unknown)}"
            )
        if legacy:
            warnings.warn(
                f"ElapsServer keyword arguments {sorted(legacy)} are "
                "deprecated; pass config=ServerConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = (config or ServerConfig()).with_(**legacy)
        elif config is None:
            config = ServerConfig()
        #: the immutable knob set this server was built from; a sharded
        #: coordinator hands the same value to every worker
        self.config = config
        self.grid = grid
        if config.vectorized_construction:
            strategy = vectorize_strategy(strategy)
        self.strategy = strategy
        # "is None" rather than "or": an empty index is falsy (len 0),
        # and a caller-provided index must never be silently replaced
        self.event_index = (
            event_index if event_index is not None
            else BEQTree(grid.space, emax=256)
        )
        self.subscription_index = (
            subscription_index if subscription_index is not None
            else SubscriptionIndex()
        )
        self.impact_index = ImpactRegionIndex()
        self.matching_mode = config.matching_mode
        self.rate_window = config.rate_window
        self.initial_rate = config.initial_rate
        self.min_speed = config.min_speed
        self.stats_override = config.stats_override
        self.measure_bytes = config.measure_bytes
        #: ablation switch: with False, *every* be-matching arrival pings
        #: the subscriber, as if the impact region concept did not exist
        self.use_impact_region = config.use_impact_region
        #: repair mode: an out-of-radius type-II event carves its dilation
        #: out of the cached safe region (shipping only the removed cells)
        #: instead of re-running the construction strategy.  Off by
        #: default; the always-rebuild behaviour is the paper's.
        self.repair = config.repair
        self.repair_budget = config.repair_budget or RepairBudget()
        #: the one client-facing seam: region/delta shipping and the
        #: location ping all go through here (None = headless server)
        self.transport: Optional[Transport] = transport
        #: the deprecated locator/region_sink/delta_sink shims share one
        #: CallbackTransport; the dict keeps the raw callables for the
        #: property getters
        self._legacy_hooks: Dict[str, Optional[Callable]] = {}

        self.subscribers: Dict[int, SubscriberRecord] = {}
        self.metrics = CommunicationStats()
        self.metrics.bytes_measured = config.measure_bytes
        #: the unified observability surface: the counters above plus the
        #: per-stage latency histograms fed by the span tracer.  The
        #: tracer is shared with the TCP layer (frame read/decode/
        #: dispatch/drain spans) and served as frame type 13.
        self.registry = MetricsRegistry(self.metrics)
        self.tracer = self.registry.tracer
        self._arrival_times: List[int] = []  # ring of recent arrival timestamps
        self._expiry_heap: List[Tuple[int, int]] = []  # (expires_at, event_id)
        self._events_by_id: Dict[int, Event] = {}
        self._started_at: Optional[int] = None
        # "cached" matching mode: per-subscriber be-matching event cache,
        # maintained incrementally on publish and filtered lazily against
        # the live corpus and the delivered set.  Communication behaviour
        # is identical to "full" (tested); only server work differs.
        self._matching_cache: Dict[int, Dict[int, Point]] = {}
        self._field_cache: Dict[int, Tuple[FrozenSet[int], StaticMatchingField]] = {}
        self._region_cache: Dict[int, Tuple[FrozenSet[int], "RegionPair"]] = {}
        # Repair mode under on-demand matching: one LazyBEQField per
        # subscriber survives across constructions.  Corpus churn reaches
        # it through note_event/note_exclusion; it is dropped when the
        # staleness budget trips or the subscriber's state is replaced
        # (resubscribe, resync, unsubscribe).
        self._lazy_fields: Dict[int, LazyBEQField] = {}
        #: durable operation journal (DESIGN.md §13); None keeps the
        #: server purely in-memory
        self.journal: Optional[Journal] = (
            Journal(config.journal) if config.journal is not None else None
        )
        #: highest journal sequence number reflected in this server's
        #: state.  Starts at 0 even over a non-empty journal — a fresh
        #: process holds none of the logged state until :meth:`recover`
        #: replays it.  Snapshot restore and tail replay advance it;
        #: records at or below it are skipped on replay, which is what
        #: makes replaying the same journal twice a no-op.
        self.applied_seq = 0

    # ------------------------------------------------------------------
    # Deprecated hook attributes (the pre-Transport API)
    # ------------------------------------------------------------------
    def _legacy_hook(self, name: str):
        warnings.warn(
            f"ElapsServer.{name} is deprecated; pass a Transport "
            "(see repro.system.config) at construction instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return self._legacy_hooks.get(name)

    def _set_legacy_hook(self, name: str, value) -> None:
        warnings.warn(
            f"assigning ElapsServer.{name} is deprecated; pass a Transport "
            "(see repro.system.config) at construction instead",
            DeprecationWarning,
            stacklevel=3,
        )
        self._legacy_hooks[name] = value
        self.transport = CallbackTransport(
            locate=self._legacy_hooks.get("locator"),
            ship_region=self._legacy_hooks.get("region_sink"),
            ship_delta=self._legacy_hooks.get("delta_sink"),
        )

    @property
    def locator(self) -> Optional[Locator]:
        """Deprecated: :meth:`Transport.locate` replaces this hook."""
        return self._legacy_hook("locator")

    @locator.setter
    def locator(self, value: Optional[Locator]) -> None:
        """Deprecated setter; wraps the callable in a CallbackTransport."""
        self._set_legacy_hook("locator", value)

    @property
    def region_sink(self):
        """Deprecated: :meth:`Transport.ship_region` replaces this hook."""
        return self._legacy_hook("region_sink")

    @region_sink.setter
    def region_sink(self, value) -> None:
        """Deprecated setter; wraps the callable in a CallbackTransport."""
        self._set_legacy_hook("region_sink", value)

    @property
    def delta_sink(self) -> Optional[DeltaSink]:
        """Deprecated: :meth:`Transport.ship_delta` replaces this hook."""
        return self._legacy_hook("delta_sink")

    @delta_sink.setter
    def delta_sink(self, value: Optional[DeltaSink]) -> None:
        """Deprecated setter; wraps the callable in a CallbackTransport."""
        self._set_legacy_hook("delta_sink", value)

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def bootstrap(self, events) -> None:
        """Load the initial event database without arrival processing."""
        events = list(events)
        self._journal_append(JournalRecord(BOOTSTRAP, 0, events=tuple(events)))
        for event in events:
            if event.event_id in self._events_by_id:
                # Idempotent, as in _publish: a re-run load (partial-fleet
                # replay) skips events this corpus already holds.
                self.metrics.duplicate_publishes += 1
                continue
            self._store_event(event)
        self._maybe_snapshot()

    def _store_event(self, event: Event) -> None:
        self.event_index.insert(event)
        self._events_by_id[event.event_id] = event
        if event.expires_at is not None:
            heapq.heappush(self._expiry_heap, (event.expires_at, event.event_id))

    # ------------------------------------------------------------------
    # Statistics (the cost-model inputs)
    # ------------------------------------------------------------------
    def _estimated_rate(self, now: int) -> float:
        window_start = now - self.rate_window
        self._arrival_times = [t for t in self._arrival_times if t > window_start]
        if self.initial_rate is not None and (
            self._started_at is None or now - self._started_at < self.rate_window
        ):
            return self.initial_rate
        return len(self._arrival_times) / self.rate_window

    def system_stats(self, now: int) -> SystemStats:
        """The cost-model inputs at time ``now`` (Equations 5-6)."""
        if self.stats_override is not None:
            return self.stats_override(now)
        return SystemStats(
            event_rate=self._estimated_rate(now),
            total_events=len(self.event_index),
        )

    # ------------------------------------------------------------------
    # Subscription arrival / expiration
    # ------------------------------------------------------------------
    def subscribe(
        self,
        subscription: Subscription,
        location: Point,
        velocity: Point,
        now: int = 0,
    ) -> Tuple[List[Notification], SafeRegion]:
        """Register a subscriber; deliver current matches, ship a safe region.

        Subscribing an already-known ``sub_id`` is a *resubscribe* — the
        reconnect path of a client that lost its connection.  The old
        subscription leaves the index, but the ``delivered`` set survives
        so events the first connection already shipped are not shipped
        again (a following :meth:`resync` reconciles against what the
        client actually received).
        """
        self._journal_append(
            JournalRecord(
                SUBSCRIBE, 0, now=now, sub_id=subscription.sub_id,
                subscription=subscription, location=location, velocity=velocity,
            )
        )
        if self._started_at is None:
            self._started_at = now
        # The expression (hence the matching-event set) may change across
        # a resubscribe; any cached matching field is for the old one.
        self._lazy_fields.pop(subscription.sub_id, None)
        existing = self.subscribers.get(subscription.sub_id)
        if existing is not None:
            self.subscription_index.delete(existing.subscription)
            record = SubscriberRecord(
                subscription, location, velocity, delivered=existing.delivered
            )
            self.metrics.resubscribes += 1
        else:
            record = SubscriberRecord(subscription, location, velocity)
        self.subscribers[subscription.sub_id] = record
        self.subscription_index.insert(subscription)
        if self.matching_mode == "cached":
            self._matching_cache[subscription.sub_id] = {
                event.event_id: event.location
                for event in self.event_index.be_match(subscription.expression)
            }
        notifications = self._deliver_corpus_matches(record, location, now)
        if self.measure_bytes:
            self.metrics.wire_bytes_up += message_bytes(
                SubscribeMessage(
                    subscription.sub_id, subscription.radius,
                    subscription.expression, location, velocity,
                )
            )
            self._account_notification_bytes(notifications)
        self._construct(record, now)
        self._maybe_snapshot()
        return notifications, record.safe

    def _deliver_corpus_matches(
        self,
        record: SubscriberRecord,
        location: Point,
        now: int,
        field: Optional[LazyBEQField] = None,
    ) -> List[Notification]:
        """Match the live corpus at ``location``; deliver what's missing.

        The one corpus-scan-and-deliver routine behind a fresh subscribe,
        a location report, and a resync: match the event index, skip
        events already in the ``delivered`` set, mark the rest delivered
        (excluding them from a cached matching ``field`` when one is
        live), and count the notifications.
        """
        with self.tracer.span("match"):
            matched = self.event_index.match(record.subscription, location)
        sub_id = record.subscription.sub_id
        notifications: List[Notification] = []
        for event in matched:
            if event.event_id in record.delivered:
                continue
            record.delivered.add(event.event_id)
            if field is not None:
                field.note_exclusion(event.event_id)
            record.next_seq += 1
            notifications.append(Notification(sub_id, event, now, record.next_seq))
        self.metrics.notifications += len(notifications)
        return notifications

    def _account_notification_bytes(self, notifications: List[Notification]) -> None:
        for notification in notifications:
            self.metrics.wire_bytes_down += message_bytes(
                notification_for(
                    notification.sub_id, notification.event, notification.seq
                )
            )

    def unsubscribe(self, sub_id: int) -> None:
        """Drop a subscriber from every index (subscription expiration)."""
        if sub_id not in self.subscribers:
            # Validate before journaling: a rejected operation must not
            # leave a record that would fail again on replay.
            raise KeyError(f"unknown subscriber {sub_id}")
        self._journal_append(JournalRecord(UNSUBSCRIBE, 0, sub_id=sub_id))
        record = self.subscribers.pop(sub_id)
        self.subscription_index.delete(record.subscription)
        self.impact_index.remove(sub_id)
        self._matching_cache.pop(sub_id, None)
        self._field_cache.pop(sub_id, None)
        self._region_cache.pop(sub_id, None)
        self._lazy_fields.pop(sub_id, None)
        self._maybe_snapshot()

    # ------------------------------------------------------------------
    # Event arrival / expiration
    # ------------------------------------------------------------------
    def publish(self, event: Event, now: int) -> List[Notification]:
        """Process one arriving event; returns the notifications sent."""
        self._journal_append(JournalRecord(PUBLISH, 0, now=now, events=(event,)))
        with self.tracer.span("publish"):
            notifications = self._publish(event, now)
        self._maybe_snapshot()
        return notifications

    def _publish(self, event: Event, now: int) -> List[Notification]:
        if event.event_id in self._events_by_id:
            # Idempotent re-publish: a producer retry — or a partially
            # surviving fleet re-running an operation another band lost —
            # re-sends an event this corpus already holds.  The original
            # arrival already offered it to every eligible subscriber
            # (later subscribers match it from the corpus), so nothing
            # new can be due.
            self.metrics.duplicate_publishes += 1
            return []
        self._store_event(event)
        self._arrival_times.append(now)
        notifications: List[Notification] = []
        event_cell = self.grid.cell_of(event.location)
        index = self.subscription_index
        pruned_before = getattr(index, "partitions_pruned", 0)
        with self.tracer.span("match"):
            matched = index.match_event(event)
        self.metrics.partitions_pruned += (
            getattr(index, "partitions_pruned", 0) - pruned_before
        )
        for subscription in matched:
            record = self.subscribers.get(subscription.sub_id)
            if record is None or event.event_id in record.delivered:
                continue
            if self.matching_mode == "cached":
                self._matching_cache[subscription.sub_id][event.event_id] = event.location
            field = self._lazy_fields.get(subscription.sub_id)
            if self.use_impact_region and not self.impact_index.covers(
                subscription.sub_id, event_cell
            ):
                # Outside the impact region: the safe region stays valid
                # (Definition 2) and no communication happens.  A cached
                # matching field must still learn the event — its scanned
                # leaves are never revisited.
                if field is not None:
                    field.note_event(event.event_id, event.location)
                continue
            # One event-arrival round: ping the client, read the location.
            self.metrics.event_arrival_rounds += 1
            self._refresh_location(record)
            if self.measure_bytes:
                self.metrics.wire_bytes_down += message_bytes(
                    LocationPing(subscription.sub_id)
                )
                self.metrics.wire_bytes_up += message_bytes(
                    LocationReport(subscription.sub_id, record.location, record.velocity)
                )
            distance = record.location.distance_to(event.location)
            if distance <= subscription.radius:
                record.delivered.add(event.event_id)
                record.next_seq += 1
                notification = Notification(
                    subscription.sub_id, event, now, record.next_seq
                )
                notifications.append(notification)
                self.metrics.notifications += 1
                if self.measure_bytes:
                    self._account_notification_bytes([notification])
            else:
                if field is not None:
                    field.note_event(event.event_id, event.location)
                if not (self.repair and self._repair(record, [event.location])):
                    if self.repair:
                        self.metrics.repair_fallbacks += 1
                    self._construct(record, now)
        return notifications

    def publish_batch(self, events: List[Event], now: int) -> List[Notification]:
        """Process a burst of arriving events through the batched fast path.

        Delivers exactly the notifications that publishing the events one
        at a time (in order) would deliver, but amortises the work:

        * the events enter the BEQ-Tree via :meth:`BEQTree.insert_batch`
          (z-ordered, consecutive events reuse the previous leaf);
        * impact-region coverage is resolved once per distinct grid cell
          through :meth:`ImpactRegionIndex.match_batch`;
        * each subscriber is pinged at most once per batch (its location
          cannot change mid-burst, so one refresh serves every event);
        * safe-region reconstruction is deferred to the end of the batch —
          a burst touching one subscriber costs at most one construction
          instead of one per out-of-radius event.

        Deferral is sound: the impact region installed before the batch
        keeps covering the notification circle while the subscriber sits
        inside its safe region (Definition 2), so every suppressed event
        is guaranteed out of radius and the notification log is identical
        to the single-event path's.  The index cache counters accumulated
        during the batch are scraped into :class:`CommunicationStats`.
        """
        events = list(events)
        if events:
            self._journal_append(
                JournalRecord(PUBLISH_BATCH, 0, now=now, events=tuple(events))
            )
        with self.tracer.span("batch"):
            notifications = self._publish_batch(events, now)
        self._maybe_snapshot()
        return notifications

    def _publish_batch(self, events: List[Event], now: int) -> List[Notification]:
        # Idempotent re-publish, as in _publish: events the corpus holds
        # are dropped (duplicates *within* the fresh remainder are still
        # a caller bug, rejected atomically by insert_batch).
        fresh = [e for e in events if e.event_id not in self._events_by_id]
        self.metrics.duplicate_publishes += len(events) - len(fresh)
        events = fresh
        if not events:
            return []
        hits_before, _, probes_before = self.event_index.counters.snapshot()
        covering_hits_before = self.impact_index.cache_hits
        self.event_index.insert_batch(events)
        for event in events:
            self._events_by_id[event.event_id] = event
            if event.expires_at is not None:
                heapq.heappush(self._expiry_heap, (event.expires_at, event.event_id))
            self._arrival_times.append(now)
        covering: Dict = {}
        if self.use_impact_region:
            covering = self.impact_index.match_batch(
                {self.grid.cell_of(event.location) for event in events}
            )
        notifications: List[Notification] = []
        pinged: Set[int] = set()
        #: insertion-ordered; one deferred construction per subscriber
        needs_construct: Dict[int, SubscriberRecord] = {}
        #: out-of-radius event locations per subscriber, for one repair
        #: (or one fallback construction) at the end of the batch
        pending_repair: Dict[int, List[Point]] = {}
        # One span covers the whole batch's matching pass: a per-event
        # span here would cost more than the (sub-10us) matches it times.
        # The OpIndex-style default index matches the whole batch in one
        # partition pass (byte-identical per event to match_event); the
        # alternative subscription indexes fall back to the scalar loop.
        index = self.subscription_index
        batch_matcher = getattr(index, "match_batch", None)
        match_probes_before = getattr(index, "match_batch_probes", 0)
        match_pruned_before = getattr(index, "partitions_pruned", 0)
        with self.tracer.span("match"):
            if batch_matcher is not None:
                matched_per_event = batch_matcher(events)
            else:
                matched_per_event = [index.match_event(event) for event in events]
        self.metrics.match_batch_probes += (
            getattr(index, "match_batch_probes", 0) - match_probes_before
        )
        self.metrics.partitions_pruned += (
            getattr(index, "partitions_pruned", 0) - match_pruned_before
        )
        for event, matched in zip(events, matched_per_event):
            event_cell = self.grid.cell_of(event.location)
            for subscription in matched:
                record = self.subscribers.get(subscription.sub_id)
                if record is None or event.event_id in record.delivered:
                    continue
                if self.matching_mode == "cached":
                    self._matching_cache[subscription.sub_id][event.event_id] = (
                        event.location
                    )
                field = self._lazy_fields.get(subscription.sub_id)
                if self.use_impact_region and (
                    subscription.sub_id not in covering[event_cell]
                ):
                    if field is not None:
                        field.note_event(event.event_id, event.location)
                    continue
                if subscription.sub_id not in pinged:
                    # One event-arrival round covers the whole burst.
                    pinged.add(subscription.sub_id)
                    self.metrics.event_arrival_rounds += 1
                    self._refresh_location(record)
                    if self.measure_bytes:
                        self.metrics.wire_bytes_down += message_bytes(
                            LocationPing(subscription.sub_id)
                        )
                        self.metrics.wire_bytes_up += message_bytes(
                            LocationReport(
                                subscription.sub_id, record.location, record.velocity
                            )
                        )
                distance = record.location.distance_to(event.location)
                if distance <= subscription.radius:
                    record.delivered.add(event.event_id)
                    record.next_seq += 1
                    notification = Notification(
                        subscription.sub_id, event, now, record.next_seq
                    )
                    notifications.append(notification)
                    self.metrics.notifications += 1
                    if self.measure_bytes:
                        self._account_notification_bytes([notification])
                else:
                    if field is not None:
                        field.note_event(event.event_id, event.location)
                    needs_construct[subscription.sub_id] = record
                    pending_repair.setdefault(subscription.sub_id, []).append(
                        event.location
                    )
        for sub_id, record in needs_construct.items():
            if self.repair and self._repair(record, pending_repair[sub_id]):
                continue
            if self.repair:
                self.metrics.repair_fallbacks += 1
            self._construct(record, now)
        self.metrics.batches += 1
        self.metrics.batch_events += len(events)
        hits_after, _, probes_after = self.event_index.counters.snapshot()
        self.metrics.leaf_probes_saved += probes_after - probes_before
        self.metrics.cache_hits += (hits_after - hits_before) + (
            self.impact_index.cache_hits - covering_hits_before
        )
        return notifications

    def expire_due_events(self, now: int) -> int:
        """Remove events whose validity ended; Lemma 4: no client traffic."""
        if self._expiry_heap and self._expiry_heap[0][0] <= now:
            # Journal only sweeps that will remove something: expiry is
            # deterministic given the corpus, so one record per effective
            # sweep reproduces it, and the no-op ticks between arrivals
            # stay off the log.
            self._journal_append(JournalRecord(EXPIRE, 0, now=now))
        removed = 0
        while self._expiry_heap and self._expiry_heap[0][0] <= now:
            _, event_id = heapq.heappop(self._expiry_heap)
            event = self._events_by_id.pop(event_id, None)
            if event is None:
                continue
            self.event_index.delete(event)
            for field in self._lazy_fields.values():
                field.note_exclusion(event_id)
            removed += 1
        if removed:
            self._maybe_snapshot()
        return removed

    # ------------------------------------------------------------------
    # Band migration (DESIGN.md §15)
    # ------------------------------------------------------------------
    def extract_events_in_columns(self, ranges) -> List[Event]:
        """Remove and return the live events in the given grid-column
        ranges (each ``(lo, hi)`` half-open), in corpus insertion order.

        The fleet coordinator calls this on the *donor* shard of a band
        move; the returned events are re-:meth:`bootstrap`-ped into the
        new owner.  Removal reuses the expiry machinery — the event
        leaves the BEQ-Tree and every lazy matching field learns the
        exclusion — so cached safe regions stay conservative (removing an
        event can only *grow* the true safe region, never shrink it:
        Definition 1 is a conjunction over events).  Stale expiry-heap
        entries for the removed events are skipped by the sweep, exactly
        as after a normal expiry.
        """
        ranges = [(int(lo), int(hi)) for lo, hi in ranges]
        for lo, hi in ranges:
            if lo < 0 or hi < lo:
                raise ValueError(f"bad column range ({lo}, {hi})")
        flat = tuple(itertools.chain.from_iterable(ranges))
        self._journal_append(JournalRecord(EXTRACT, 0, received=flat))
        extracted: List[Event] = []
        for event in list(self._events_by_id.values()):
            column = self.grid.cell_of(event.location)[0]
            if any(lo <= column < hi for lo, hi in ranges):
                extracted.append(event)
        for event in extracted:
            del self._events_by_id[event.event_id]
            self.event_index.delete(event)
            for field in self._lazy_fields.values():
                field.note_exclusion(event.event_id)
        if extracted:
            self._maybe_snapshot()
        return extracted

    def resequence_subscriptions(self, order) -> None:
        """Rebuild the subscription index with subscriptions inserted in
        the given ``sub_id`` order (unknown ids are ignored; local
        subscribers missing from ``order`` keep their relative order at
        the end).

        Event-arrival notification order follows the index's internal
        insertion order, so a shard that gains a subscriber mid-life
        (band rebalance re-homing) would report that subscriber *after*
        everyone already present — diverging from a single server that
        saw all subscribes in client order.  Re-sequencing to the
        coordinator's subscribe order restores the single-server order.
        Pure re-indexing: no safe region, delivered set, or journal
        state changes (recovery replays subscribes in journal order,
        which only affects notification order, never delivery sets).
        """
        known = [sub_id for sub_id in order if sub_id in self.subscribers]
        tail = [
            sub_id for sub_id in self.subscribers
            if sub_id not in set(known)
        ]
        sequence = known + tail
        for sub_id in sequence:
            self.subscription_index.delete(self.subscribers[sub_id].subscription)
        for sub_id in sequence:
            self.subscription_index.insert(self.subscribers[sub_id].subscription)

    # ------------------------------------------------------------------
    # Location update
    # ------------------------------------------------------------------
    def report_location(
        self, sub_id: int, location: Point, velocity: Point, now: int
    ) -> Tuple[List[Notification], SafeRegion]:
        """Handle a client report after it left its safe region."""
        if sub_id in self.subscribers:
            self._journal_append(
                JournalRecord(
                    LOCATION, 0, now=now, sub_id=sub_id,
                    location=location, velocity=velocity,
                )
            )
        with self.tracer.span("location_update"):
            result = self._report_location(sub_id, location, velocity, now)
        self._maybe_snapshot()
        return result

    def _report_location(
        self, sub_id: int, location: Point, velocity: Point, now: int
    ) -> Tuple[List[Notification], SafeRegion]:
        record = self.subscribers[sub_id]
        self.metrics.location_update_rounds += 1
        record.location = location
        record.velocity = velocity
        # The move may have brought matching events inside the circle.
        notifications = self._deliver_corpus_matches(
            record, location, now, field=self._lazy_fields.get(sub_id)
        )
        if self.measure_bytes:
            self.metrics.wire_bytes_up += message_bytes(
                LocationReport(sub_id, location, velocity)
            )
            self._account_notification_bytes(notifications)
        self._construct(record, now)
        return notifications, record.safe

    def resync(
        self,
        sub_id: int,
        location: Point,
        velocity: Point,
        received,
        now: int,
    ) -> Tuple[List[Notification], SafeRegion]:
        """Reconcile a reconnecting client against its received-event ids.

        The client's report is the ground truth of what survived the
        network: the server adopts it as the new ``delivered`` set, so
        notifications a dead connection swallowed become deliverable
        again, and redelivers every matching event inside the
        notification region that the client is missing.  Events the
        client *did* receive stay in the set, so nothing is ever shipped
        twice.  Finishes by rebuilding and re-shipping the safe region
        (the client dropped its held region on disconnect).
        """
        record = self.subscribers[sub_id]
        received = tuple(received)
        self._journal_append(
            JournalRecord(
                RESYNC, 0, now=now, sub_id=sub_id, location=location,
                velocity=velocity, received=received,
            )
        )
        self.metrics.resyncs += 1
        record.location = location
        record.velocity = velocity
        # ``delivered`` is rebound to a fresh set; every cached matching
        # artefact holds a reference to (or a signature derived from) the
        # old one and must not survive — in particular the repair drift
        # state, or a post-reconnect repair would carve against a field
        # built for the pre-disconnect delivered set (a recovered server
        # resyncing clients after a restart hits exactly this path).
        self._lazy_fields.pop(sub_id, None)
        self._field_cache.pop(sub_id, None)
        self._region_cache.pop(sub_id, None)
        record.repair = None
        record.delivered = set(received)
        notifications = self._deliver_corpus_matches(record, location, now)
        self.metrics.redeliveries += len(notifications)
        if self.measure_bytes:
            self._account_notification_bytes(notifications)
        self._construct(record, now)
        self._maybe_snapshot()
        return notifications, record.safe

    def rebuild_all(self, now: int) -> None:
        """Rebuild every subscriber's regions with fresh statistics.

        Used by the Figure 10 oracle variants: the rebuild itself adds no
        communication rounds (only construction work), matching the
        paper's rule that oracle refreshes are not counted as I/O.
        """
        for record in self.subscribers.values():
            self._refresh_location(record)
            self._construct(record, now)

    # ------------------------------------------------------------------
    # Durability: journaling, snapshots, recovery (DESIGN.md §13)
    # ------------------------------------------------------------------
    def _journal_append(self, record: JournalRecord) -> None:
        """Write-ahead: persist the operation before applying it, so a
        crash mid-apply replays the whole operation on recovery."""
        journal = self.journal
        if journal is None or journal.suspended:
            return
        written = journal.append(record)
        self.applied_seq = journal.seq
        self.metrics.journal_records += 1
        self.metrics.journal_bytes += written

    def _maybe_snapshot(self) -> None:
        """Honour ``JournalSpec.snapshot_every`` at operation end (the
        state then reflects every journaled record, so the snapshot's
        sequence number is exact)."""
        journal = self.journal
        if journal is not None and not journal.suspended and journal.snapshot_due():
            self.snapshot()

    def snapshot(self) -> None:
        """Persist the full server image and rotate the journal."""
        if self.journal is None:
            raise JournalError("server has no journal configured")
        image = ServerSnapshot(
            last_seq=self.journal.seq,
            started_at=self._started_at,
            arrival_times=list(self._arrival_times),
            events=list(self._events_by_id.values()),
            subscribers=[
                self._subscriber_snapshot(record)
                for record in self.subscribers.values()
            ],
            counters=self.metrics.as_dict(),
        )
        written = self.journal.write_snapshot(encode_snapshot(image), image.last_seq)
        self.metrics.snapshots_taken += 1
        self.metrics.snapshot_bytes += written

    def _subscriber_snapshot(self, record: SubscriberRecord) -> SubscriberSnapshot:
        sub_id = record.subscription.sub_id
        safe = None
        if record.safe is not None:
            safe = (record.safe.complement, frozenset(record.safe.cells))
        return SubscriberSnapshot(
            subscription=record.subscription,
            location=record.location,
            velocity=record.velocity,
            delivered=frozenset(record.delivered),
            next_seq=record.next_seq,
            safe=safe,
            impact=self.impact_index.region_of(sub_id),
        )

    def recover(self) -> int:
        """Rebuild state from the latest snapshot plus the journal tail.

        Replay drives the tail records through the normal public
        operations with journaling suspended; the BEQ-tree and impact
        index are rebuilt deterministically because events re-enter in
        their original order.  Notifications produced during replay are
        discarded (the transport is typically not attached yet) — the
        per-subscriber ``delivered`` sets converge to the pre-crash
        truth, and reconnecting clients reconcile the client-visible
        stream through :meth:`resync`.  Returns the number of tail
        records applied; calling :meth:`recover` again is a no-op (every
        record is gated on ``applied_seq``).
        """
        if self.journal is None:
            raise JournalError("server has no journal configured")
        loaded = self.journal.read_snapshot()
        if loaded is not None and loaded[0] > self.applied_seq:
            seq, body = loaded
            self._restore_snapshot(decode_snapshot(body))
            self.applied_seq = seq
        applied = 0
        self.journal.suspended = True
        try:
            for record in self.journal.records(after_seq=self.applied_seq):
                self._apply_record(record)
                self.applied_seq = record.seq
                applied += 1
        finally:
            self.journal.suspended = False
        self.metrics.recovered_records += applied
        return applied

    def _restore_snapshot(self, image: ServerSnapshot) -> None:
        for event in image.events:
            self._store_event(event)
        self._arrival_times = list(image.arrival_times)
        self._started_at = image.started_at
        for name, value in image.counters.items():
            # Tolerate counters from other builds: restore what exists.
            if not hasattr(self.metrics, name):
                continue
            current = getattr(self.metrics, name)
            if isinstance(current, bool):
                setattr(self.metrics, name, bool(value))
            elif isinstance(current, float):
                setattr(self.metrics, name, float(value))
            else:
                setattr(self.metrics, name, int(value))
        for sub in image.subscribers:
            record = SubscriberRecord(
                sub.subscription,
                sub.location,
                sub.velocity,
                delivered=set(sub.delivered),
            )
            record.next_seq = sub.next_seq
            if sub.safe is not None:
                complement, cells = sub.safe
                record.safe = SafeRegion(self.grid, frozenset(cells), complement)
            self.subscribers[sub.subscription.sub_id] = record
            self.subscription_index.insert(sub.subscription)
            if self.matching_mode == "cached":
                self._matching_cache[sub.subscription.sub_id] = {
                    event.event_id: event.location
                    for event in self.event_index.be_match(
                        sub.subscription.expression
                    )
                }
            if sub.impact is not None:
                complement, cells = sub.impact
                self.impact_index.replace_region(
                    sub.subscription.sub_id,
                    ImpactRegion(self.grid, frozenset(cells), complement),
                )
        # Recovery invariant (DESIGN.md §13): derived matching artefacts —
        # lazy fields, repair drift state, cached-mode field/region caches —
        # are never restored.  The first post-restart type-II event falls
        # back to a full construction instead of carving against a field
        # built by the pre-crash process.

    def _apply_record(self, record: JournalRecord) -> None:
        """Replay one journal record through the public operation it logs."""
        kind = record.kind
        if kind == SUBSCRIBE:
            self.subscribe(
                record.subscription, record.location, record.velocity, now=record.now
            )
        elif kind == UNSUBSCRIBE:
            self.unsubscribe(record.sub_id)
        elif kind == LOCATION:
            self.report_location(
                record.sub_id, record.location, record.velocity, now=record.now
            )
        elif kind == RESYNC:
            self.resync(
                record.sub_id, record.location, record.velocity,
                record.received, now=record.now,
            )
        elif kind == PUBLISH:
            try:
                self.publish(record.event, record.now)
            except ValueError:
                # The operation was journaled (WAL-before-apply) but then
                # failed validation without mutating anything; it fails
                # identically on replay, so skipping it is exact.
                pass
        elif kind == PUBLISH_BATCH:
            try:
                self.publish_batch(list(record.events), record.now)
            except ValueError:
                pass  # journaled-but-failed, as above
        elif kind == EXPIRE:
            self.expire_due_events(record.now)
        elif kind == BOOTSTRAP:
            self.bootstrap(record.events)
        elif kind == EXTRACT:
            flat = record.received
            self.extract_events_in_columns(
                list(zip(flat[0::2], flat[1::2]))
            )
        else:
            raise JournalCorruptionError(f"unknown journal record kind {kind}")

    def close(self) -> None:
        """Release the journal's file handle (a no-op without one)."""
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "ElapsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Aggregate views (shared surface with ShardedElapsServer)
    # ------------------------------------------------------------------
    def merged_metrics(self) -> CommunicationStats:
        """The full counter view; a sharded server merges its workers here."""
        return self.metrics

    def merged_registry(self) -> MetricsRegistry:
        """The full observability view (counters + span histograms)."""
        return self.registry

    def corpus_matches(self, expression) -> Iterator[Event]:
        """Every live event be-matching ``expression`` (audits/oracles)."""
        return iter(self.event_index.be_match(expression))

    def delivered_ids(self, sub_id: int) -> FrozenSet[int]:
        """The ids this server has delivered to ``sub_id`` so far."""
        return frozenset(self.subscribers[sub_id].delivered)

    # ------------------------------------------------------------------
    # Region construction
    # ------------------------------------------------------------------
    def _refresh_location(self, record: SubscriberRecord) -> None:
        if self.transport is None:
            return
        answer = self.transport.locate(record.subscription.sub_id)
        if answer is not None:
            record.location, record.velocity = answer

    def _matching_field(self, record: SubscriberRecord):
        if self.matching_mode == "ondemand":
            sub_id = record.subscription.sub_id
            if self.repair:
                field = self._lazy_fields.get(sub_id)
                if field is not None and not field.too_stale():
                    return field
                field = LazyBEQField(
                    self.grid,
                    self.event_index,
                    record.subscription.expression,
                    excluded_ids=record.delivered,
                )
                self._lazy_fields[sub_id] = field
                return field
            return LazyBEQField(
                self.grid,
                self.event_index,
                record.subscription.expression,
                excluded_ids=record.delivered,
            )
        if self.matching_mode == "cached":
            signature = self._matching_signature(record)
            cached = self._field_cache.get(record.subscription.sub_id)
            if cached is not None and cached[0] == signature:
                return cached[1]
            cache = self._matching_cache[record.subscription.sub_id]
            field = StaticMatchingField(
                self.grid, [cache[event_id] for event_id in signature]
            )
            self._field_cache[record.subscription.sub_id] = (signature, field)
            return field
        # Full mode: materialise every be-matching event upfront (the
        # paper's "-BE" variants route this through k-index; the work is
        # equivalent — a full-corpus boolean match).
        events = [
            event
            for event in self.event_index.be_match(record.subscription.expression)
            if event.event_id not in record.delivered
        ]
        self.metrics.events_scanned += len(self.event_index)
        return StaticMatchingField(self.grid, [event.location for event in events])

    def _matching_signature(self, record: SubscriberRecord) -> frozenset:
        """The live, undelivered be-matching event ids (cached mode)."""
        cache = self._matching_cache[record.subscription.sub_id]
        return frozenset(
            event_id
            for event_id in cache
            if event_id in self._events_by_id and event_id not in record.delivered
        )

    def _construct(self, record: SubscriberRecord, now: int) -> None:
        # Every exit path — the cached fast path included — contributes
        # its elapsed time to ``server_seconds``; the try/finally is what
        # guarantees the early return cannot dodge the accounting again.
        started = time.perf_counter()
        try:
            with self.tracer.span("construct"):
                self._construct_inner(record, now)
        finally:
            self.metrics.server_seconds += time.perf_counter() - started

    def _construct_inner(self, record: SubscriberRecord, now: int) -> None:
        # GM's regions do not depend on the subscriber's location, so in
        # cached mode an unchanged matching set lets the previous region
        # pair be re-shipped without rebuilding.
        reusable = (
            self.matching_mode == "cached"
            and getattr(self.strategy, "location_independent", False)
        )
        if reusable:
            signature = self._matching_signature(record)
            cached_pair = self._region_cache.get(record.subscription.sub_id)
            if cached_pair is not None and cached_pair[0] == signature:
                pair = cached_pair[1]
                record.safe = pair.safe
                if self.repair:
                    # The re-ship hands the client the full cached region,
                    # so drift bookkeeping restarts from this pair; the
                    # stale state would carry removed_since_build and an
                    # inflated ne_estimate from a region the client no
                    # longer holds.
                    record.repair = RepairState(
                        pair=pair,
                        cells_at_build=pair.safe.area_cells(),
                        ne_estimate=pair.matching_in_impact or 0,
                    )
                self._ship_region(record)
                return
        speed = max(record.velocity.norm(), self.min_speed)
        direction = record.velocity.normalized().scaled(speed)
        if direction == Point(0.0, 0.0):
            direction = Point(speed, 0.0)
        field = self._matching_field(record)
        # A reused field's counter is cumulative across constructions;
        # account only this construction's scans.
        scanned_before = getattr(field, "events_scanned", 0)
        request = ConstructionRequest(
            location=record.location,
            velocity=direction,
            radius=record.subscription.radius,
            grid=self.grid,
            matching_field=field,
            stats=self.system_stats(now),
        )
        pair = self.strategy.construct(request)
        record.safe = pair.safe
        impact = pair.impact
        if pair.safe.is_empty():
            # Degenerate case: the subscriber's own cell is unsafe, so the
            # client reports every timestamp.  The impact region must still
            # cover the notification circle (Lemma 1), so install the
            # dilation of the subscriber's cell.
            cell = self.grid.cell_of(record.location)
            cells = set(
                self.grid.cells_within_radius(
                    cell, record.subscription.radius, inclusive=True
                )
            )
            cells.add(cell)
            impact = ImpactRegion(self.grid, frozenset(cells))
        self.impact_index.replace_region(record.subscription.sub_id, impact)
        if reusable:
            self._region_cache[record.subscription.sub_id] = (signature, pair)
        if self.repair:
            record.repair = RepairState(
                pair=pair,
                cells_at_build=pair.safe.area_cells(),
                ne_estimate=pair.matching_in_impact or 0,
            )
        self.metrics.constructions += 1
        self.metrics.cells_examined += pair.cells_examined
        self.metrics.events_scanned += getattr(field, "events_scanned", 0) - scanned_before
        self._ship_region(record)

    def _ship_region(self, record: SubscriberRecord) -> None:
        """Account and push one full safe region to its client."""
        with self.tracer.span("ship"):
            if self.measure_bytes:
                push = region_push_for(record.subscription.sub_id, record.safe)
                self.metrics.safe_region_bytes += push.bitmap.compressed_bytes()
                self.metrics.raw_region_bytes += push.bitmap.raw_bytes()
                self.metrics.wire_bytes_down += message_bytes(push)
            if self.transport is not None:
                self.transport.ship_region(record.subscription.sub_id, record.safe)

    # ------------------------------------------------------------------
    # Incremental repair (the repair=True alternative to _construct)
    # ------------------------------------------------------------------
    def _repair(self, record: SubscriberRecord, event_points: List[Point]) -> bool:
        """Carve the new events' dilations out of the cached safe region.

        Safety is monotone in the event corpus: a new event can only make
        cells unsafe, and exactly the cells within the notification radius
        of it (Definition 1).  Subtracting each event's dilation disk from
        the cached region therefore yields a valid safe region, and the
        impact region installed at the last full construction remains a
        covering superset (Definition 2) — it stays in the index untouched,
        which is most of the saving.  Returns False (caller falls back to
        :meth:`_construct`) when no repairable state exists or the
        :class:`~repro.core.RepairBudget` says the drift from the balance
        point is no longer worth it.
        """
        state = record.repair
        if state is None or record.safe is None:
            return False
        started = time.perf_counter()
        try:
            with self.tracer.span("repair"):
                return self._repair_inner(record, state, event_points)
        finally:
            self.metrics.server_seconds += time.perf_counter() - started

    def _repair_inner(
        self,
        record: SubscriberRecord,
        state: RepairState,
        event_points: List[Point],
    ) -> bool:
        unsafe: Set[Cell] = set()
        radius = record.subscription.radius
        for point in event_points:
            dilate_point(self.grid, point, radius, unsafe)
        repaired, removed = record.safe.subtract(unsafe)
        state.removed_since_build += len(removed)
        state.ne_estimate += len(event_points)
        reason = self.repair_budget.rebuild_reason(
            live_cells=repaired.area_cells(),
            cells_at_build=state.cells_at_build,
            removed_since_build=state.removed_since_build,
            beta=getattr(self.strategy, "beta", 1.0),
            bm_at_build=state.pair.last_accepted_bm,
            ne_at_build=state.pair.matching_in_impact or 0,
            ne_estimate=state.ne_estimate,
        )
        if reason is not None:
            return False
        record.safe = repaired
        self.metrics.repairs += 1
        self._ship_repaired(record, removed)
        return True

    def _ship_repaired(self, record: SubscriberRecord, removed: FrozenSet[Cell]) -> None:
        """Ship a repair to the client: the removed cells, or nothing.

        An empty removal means the dilations missed the region entirely —
        the client's copy is already exact, so no bytes move (the cheapest
        round of all).  Otherwise the transport's ``ship_delta`` gets the
        removed-cell set (framed as a ``SafeRegionDelta`` by the TCP
        layer); the base :class:`~repro.system.config.Transport` degrades
        it to a full region push for transports that predate deltas.
        """
        if not removed:
            return
        with self.tracer.span("ship"):
            sub_id = record.subscription.sub_id
            if self.measure_bytes:
                delta = region_delta_for(sub_id, self.grid, removed)
                self.metrics.delta_region_bytes += delta.bitmap.compressed_bytes()
                self.metrics.wire_bytes_down += message_bytes(delta)
            if self.transport is not None:
                self.transport.ship_delta(sub_id, removed, record.safe)
