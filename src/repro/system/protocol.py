"""The Elaps wire protocol: compact binary encodings for every message.

The paper's communication analysis counts message *rounds* and, in
Appendix B, the bytes of the safe-region push (z-ordered WAH bitmaps).
This module pins the whole protocol down so byte-level accounting is
possible for every flow of Figure 6:

============================  =========  =====================================
message                       direction  payload
============================  =========  =====================================
``SubscribeMessage``          C -> S     sub id, radius, boolean expression,
                                         location, velocity
``UnsubscribeMessage``        C -> S     sub id
``LocationReport``            C -> S     sub id, location, velocity
``LocationPing``              S -> C     sub id (the event-arrival ping)
``SafeRegionPush``            S -> C     sub id, grid size, complement flag,
                                         WAH-compressed cell bitmap
``SafeRegionDelta``           S -> C     sub id, grid size, WAH bitmap of the
                                         cells a repair removed from the
                                         client's current safe region
``NotificationMessage``       S -> C     sub id, event id, location, attributes
``EventPublishMessage``       P -> S     event id, location, attributes, ttl
``EventPublishBatchMessage``  P -> S     a burst of event publishes sharing
                                         one arrival timestamp (the batched
                                         fast path)
``HeartbeatMessage``          C <-> S    sub id, sequence number (keepalive;
                                         the server echoes it back)
``ResyncMessage``             C -> S     sub id, location, velocity, ids of
                                         the events the client already holds
``StatsRequest``              C -> S     empty; asks for a metrics snapshot
``StatsSnapshot``             S -> C     every counter plus the per-stage
                                         latency histograms (bucket counts
                                         and exact sums) of the server's
                                         :class:`MetricsRegistry`
============================  =========  =====================================

Frames are ``[1-byte type][4-byte big-endian payload length][payload]``.
Values inside payloads are tagged scalars (int / float / str), strings
are length-prefixed UTF-8, and expressions serialise clause by clause so
DNF subscriptions travel unchanged.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from ..bitmap import WAHBitmap
from ..expressions import (
    BooleanExpression,
    DnfExpression,
    Operator,
    Predicate,
    clauses_of,
)
from ..geometry import Point

# ----------------------------------------------------------------------
# Scalar tagging
# ----------------------------------------------------------------------
_TAG_INT = 0
_TAG_FLOAT = 1
_TAG_STR = 2


def _encode_scalar(value) -> bytes:
    if isinstance(value, bool):
        raise TypeError("booleans are not part of the wire format; use 0/1")
    if isinstance(value, int):
        return struct.pack(">Bq", _TAG_INT, value)
    if isinstance(value, float):
        return struct.pack(">Bd", _TAG_FLOAT, value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return struct.pack(">BI", _TAG_STR, len(raw)) + raw
    raise TypeError(f"unsupported scalar type: {type(value).__name__}")


def _decode_scalar(buffer: bytes, offset: int):
    (tag,) = struct.unpack_from(">B", buffer, offset)
    offset += 1
    if tag == _TAG_INT:
        (value,) = struct.unpack_from(">q", buffer, offset)
        return value, offset + 8
    if tag == _TAG_FLOAT:
        (value,) = struct.unpack_from(">d", buffer, offset)
        return value, offset + 8
    if tag == _TAG_STR:
        (length,) = struct.unpack_from(">I", buffer, offset)
        offset += 4
        return buffer[offset : offset + length].decode("utf-8"), offset + length
    raise ValueError(f"unknown scalar tag {tag}")


def _encode_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    return struct.pack(">I", len(raw)) + raw


def _decode_str(buffer: bytes, offset: int) -> Tuple[str, int]:
    (length,) = struct.unpack_from(">I", buffer, offset)
    offset += 4
    return buffer[offset : offset + length].decode("utf-8"), offset + length


# ----------------------------------------------------------------------
# Expression encoding
# ----------------------------------------------------------------------
_OPERATOR_CODES: Dict[Operator, int] = {op: i for i, op in enumerate(Operator)}
_CODES_OPERATOR: Dict[int, Operator] = {i: op for op, i in _OPERATOR_CODES.items()}


def _encode_predicate(predicate: Predicate) -> bytes:
    parts = [
        _encode_str(predicate.attribute),
        struct.pack(">B", _OPERATOR_CODES[predicate.operator]),
    ]
    if predicate.operator is Operator.BETWEEN:
        low, high = predicate.operand
        parts.append(_encode_scalar(low))
        parts.append(_encode_scalar(high))
    elif predicate.operator in (Operator.IN, Operator.NOT_IN):
        members = sorted(predicate.operand, key=repr)
        parts.append(struct.pack(">I", len(members)))
        parts.extend(_encode_scalar(member) for member in members)
    else:
        parts.append(_encode_scalar(predicate.operand))
    return b"".join(parts)


def _decode_predicate(buffer: bytes, offset: int) -> Tuple[Predicate, int]:
    attribute, offset = _decode_str(buffer, offset)
    (code,) = struct.unpack_from(">B", buffer, offset)
    offset += 1
    operator = _CODES_OPERATOR[code]
    if operator is Operator.BETWEEN:
        low, offset = _decode_scalar(buffer, offset)
        high, offset = _decode_scalar(buffer, offset)
        return Predicate(attribute, operator, (low, high)), offset
    if operator in (Operator.IN, Operator.NOT_IN):
        (count,) = struct.unpack_from(">I", buffer, offset)
        offset += 4
        members = []
        for _ in range(count):
            member, offset = _decode_scalar(buffer, offset)
            members.append(member)
        return Predicate(attribute, operator, frozenset(members)), offset
    operand, offset = _decode_scalar(buffer, offset)
    return Predicate(attribute, operator, operand), offset


Expression = Union[BooleanExpression, DnfExpression]


def encode_expression(expression: Expression) -> bytes:
    """Serialise a conjunction or DNF, clause by clause."""
    clauses = clauses_of(expression)
    parts = [struct.pack(">I", len(clauses))]
    for clause in clauses:
        parts.append(struct.pack(">I", len(clause.predicates)))
        parts.extend(_encode_predicate(p) for p in clause.predicates)
    return b"".join(parts)


def decode_expression(buffer: bytes, offset: int = 0) -> Tuple[Expression, int]:
    """Inverse of :func:`encode_expression`; returns (expression, offset)."""
    (clause_count,) = struct.unpack_from(">I", buffer, offset)
    offset += 4
    clauses: List[BooleanExpression] = []
    for _ in range(clause_count):
        (predicate_count,) = struct.unpack_from(">I", buffer, offset)
        offset += 4
        predicates = []
        for _ in range(predicate_count):
            predicate, offset = _decode_predicate(buffer, offset)
            predicates.append(predicate)
        clauses.append(BooleanExpression(predicates))
    if len(clauses) == 1:
        return clauses[0], offset
    return DnfExpression(clauses), offset


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SubscribeMessage:
    """C->S: register a subscription with its start location."""

    TYPE = 1
    sub_id: int
    radius: float
    expression: Expression
    location: Point
    velocity: Point

    def encode_payload(self) -> bytes:
        """Serialise the payload (frame header excluded)."""
        return (
            struct.pack(
                ">Qddddd",
                self.sub_id,
                self.radius,
                self.location.x,
                self.location.y,
                self.velocity.x,
                self.velocity.y,
            )
            + encode_expression(self.expression)
        )

    @classmethod
    def decode_payload(cls, payload: bytes) -> "SubscribeMessage":
        """Inverse of :meth:`encode_payload`."""
        sub_id, radius, x, y, vx, vy = struct.unpack_from(">Qddddd", payload, 0)
        expression, _ = decode_expression(payload, struct.calcsize(">Qddddd"))
        return cls(sub_id, radius, expression, Point(x, y), Point(vx, vy))


@dataclass(frozen=True)
class UnsubscribeMessage:
    """C->S: drop a subscription."""

    TYPE = 2
    sub_id: int

    def encode_payload(self) -> bytes:
        """Serialise the payload (frame header excluded)."""
        return struct.pack(">Q", self.sub_id)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "UnsubscribeMessage":
        """Inverse of :meth:`encode_payload`."""
        (sub_id,) = struct.unpack(">Q", payload)
        return cls(sub_id)


@dataclass(frozen=True)
class LocationReport:
    """C->S: position and velocity after a safe-region exit or ping."""

    TYPE = 3
    sub_id: int
    location: Point
    velocity: Point

    def encode_payload(self) -> bytes:
        """Serialise the payload (frame header excluded)."""
        return struct.pack(
            ">Qdddd",
            self.sub_id,
            self.location.x,
            self.location.y,
            self.velocity.x,
            self.velocity.y,
        )

    @classmethod
    def decode_payload(cls, payload: bytes) -> "LocationReport":
        """Inverse of :meth:`encode_payload`."""
        sub_id, x, y, vx, vy = struct.unpack(">Qdddd", payload)
        return cls(sub_id, Point(x, y), Point(vx, vy))


@dataclass(frozen=True)
class LocationPing:
    """S->C: request a location (event-arrival flow)."""

    TYPE = 4
    sub_id: int

    def encode_payload(self) -> bytes:
        """Serialise the payload (frame header excluded)."""
        return struct.pack(">Q", self.sub_id)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "LocationPing":
        """Inverse of :meth:`encode_payload`."""
        (sub_id,) = struct.unpack(">Q", payload)
        return cls(sub_id)


@dataclass(frozen=True)
class SafeRegionPush:
    """S->C: a freshly constructed safe region as a WAH bitmap."""

    TYPE = 5
    sub_id: int
    grid_n: int
    complement: bool
    bitmap: WAHBitmap

    def encode_payload(self) -> bytes:
        """Serialise the payload (frame header excluded)."""
        words = self.bitmap.words
        header = struct.pack(
            ">QIBII", self.sub_id, self.grid_n, int(self.complement),
            self.bitmap.length, len(words),
        )
        return header + struct.pack(f">{len(words)}I", *words)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "SafeRegionPush":
        """Inverse of :meth:`encode_payload`."""
        sub_id, grid_n, complement, length, word_count = struct.unpack_from(
            ">QIBII", payload, 0
        )
        offset = struct.calcsize(">QIBII")
        words = struct.unpack_from(f">{word_count}I", payload, offset)
        return cls(sub_id, grid_n, bool(complement), WAHBitmap(length, list(words)))


@dataclass(frozen=True)
class NotificationMessage:
    """S->C: deliver one matching event."""

    TYPE = 6
    sub_id: int
    event_id: int
    location: Point
    attributes: Tuple[Tuple[str, object], ...]
    #: per-subscriber delivery sequence number (0 = unsequenced); lets a
    #: reconnecting client detect gaps in the stream it saw before the
    #: resync reconciliation catches up
    seq: int = 0

    def encode_payload(self) -> bytes:
        """Serialise the payload (frame header excluded)."""
        parts = [
            struct.pack(
                ">QQQddI",
                self.sub_id,
                self.event_id,
                self.seq,
                self.location.x,
                self.location.y,
                len(self.attributes),
            )
        ]
        for name, value in self.attributes:
            parts.append(_encode_str(name))
            parts.append(_encode_scalar(value))
        return b"".join(parts)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "NotificationMessage":
        """Inverse of :meth:`encode_payload`."""
        sub_id, event_id, seq, x, y, count = struct.unpack_from(">QQQddI", payload, 0)
        offset = struct.calcsize(">QQQddI")
        attributes = []
        for _ in range(count):
            name, offset = _decode_str(payload, offset)
            value, offset = _decode_scalar(payload, offset)
            attributes.append((name, value))
        return cls(sub_id, event_id, Point(x, y), tuple(attributes), seq)


@dataclass(frozen=True)
class EventPublishMessage:
    """P->S: a publisher announces a spatial event (optionally expiring)."""

    TYPE = 7
    event_id: int
    location: Point
    attributes: Tuple[Tuple[str, object], ...]
    ttl: int  # validity in timestamps; 0 means never expires

    def encode_payload(self) -> bytes:
        """Serialise the payload (frame header excluded)."""
        parts = [
            struct.pack(
                ">QddiI",
                self.event_id,
                self.location.x,
                self.location.y,
                self.ttl,
                len(self.attributes),
            )
        ]
        for name, value in self.attributes:
            parts.append(_encode_str(name))
            parts.append(_encode_scalar(value))
        return b"".join(parts)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "EventPublishMessage":
        """Inverse of :meth:`encode_payload`."""
        event_id, x, y, ttl, count = struct.unpack_from(">QddiI", payload, 0)
        offset = struct.calcsize(">QddiI")
        attributes = []
        for _ in range(count):
            name, offset = _decode_str(payload, offset)
            value, offset = _decode_scalar(payload, offset)
            attributes.append((name, value))
        return cls(event_id, Point(x, y), tuple(attributes), ttl)


@dataclass(frozen=True)
class EventPublishBatchMessage:
    """P->S: a burst of spatial events published as one frame.

    The batched fast path of the server: all events of the frame share
    one arrival timestamp and are processed by
    :meth:`~repro.system.server.ElapsServer.publish_batch`, which
    amortises index descents and safe-region reconstruction across the
    burst.  Each element is a complete :class:`EventPublishMessage`
    payload, length-prefixed, so the two encodings never diverge.
    """

    TYPE = 10
    events: Tuple[EventPublishMessage, ...]

    def __post_init__(self) -> None:
        if not self.events:
            raise ValueError("an event batch needs at least one event")

    def encode_payload(self) -> bytes:
        """Serialise the payload (frame header excluded)."""
        parts = [struct.pack(">I", len(self.events))]
        for event in self.events:
            payload = event.encode_payload()
            parts.append(struct.pack(">I", len(payload)))
            parts.append(payload)
        return b"".join(parts)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "EventPublishBatchMessage":
        """Inverse of :meth:`encode_payload`."""
        (count,) = struct.unpack_from(">I", payload, 0)
        offset = 4
        events = []
        for _ in range(count):
            (length,) = struct.unpack_from(">I", payload, offset)
            offset += 4
            events.append(
                EventPublishMessage.decode_payload(payload[offset : offset + length])
            )
            offset += length
        return cls(tuple(events))


@dataclass(frozen=True)
class SafeRegionDelta:
    """S->C: cells removed from the client's current safe region.

    The incremental-repair alternative to a full :class:`SafeRegionPush`:
    a type-II event only ever *shrinks* the safe region (safety is
    monotone in the event corpus), so the server ships just the carved
    cells as a z-ordered WAH bitmap and the client subtracts them from
    the region it already holds.  Unlike a push there is no complement
    flag — a delta is a removed-cell *set*, applied identically whatever
    representation the client's region uses.  The server falls back to a
    full push whenever the delta would not be smaller or the client's
    base region is unknown.
    """

    TYPE = 11
    sub_id: int
    grid_n: int
    bitmap: WAHBitmap

    def encode_payload(self) -> bytes:
        """Serialise the payload (frame header excluded)."""
        words = self.bitmap.words
        header = struct.pack(
            ">QIII", self.sub_id, self.grid_n, self.bitmap.length, len(words)
        )
        return header + struct.pack(f">{len(words)}I", *words)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "SafeRegionDelta":
        """Inverse of :meth:`encode_payload`."""
        sub_id, grid_n, length, word_count = struct.unpack_from(">QIII", payload, 0)
        offset = struct.calcsize(">QIII")
        words = struct.unpack_from(f">{word_count}I", payload, offset)
        return cls(sub_id, grid_n, WAHBitmap(length, list(words)))


@dataclass(frozen=True)
class StatsRequest:
    """C->S: ask the server for a :class:`StatsSnapshot`.

    The observability pull model: any connected peer (an operator tool,
    the bench-smoke job, a dashboard scraper) sends this empty frame and
    the server answers on the same connection with frame type 13.  No
    subscriber state is involved, so the request carries no fields.
    """

    TYPE = 12

    def encode_payload(self) -> bytes:
        """Serialise the payload (frame header excluded): empty."""
        return b""

    @classmethod
    def decode_payload(cls, payload: bytes) -> "StatsRequest":
        """Inverse of :meth:`encode_payload`."""
        if payload:
            raise ValueError(
                f"stats request carries no payload, got {len(payload)} bytes"
            )
        return cls()


@dataclass(frozen=True)
class StatsSnapshot:
    """S->C: a point-in-time copy of the server's metrics registry.

    Two sections travel:

    * ``counters`` — every :class:`~repro.system.metrics.CommunicationStats`
      field by name (the ``bytes_measured`` flag as 0/1);
    * ``spans`` — per pipeline stage, the fixed-bucket latency histogram
      as ``(stage, bucket counts, exact seconds sum)``; bucket bounds
      are the protocol constant
      :data:`~repro.system.observability.BUCKET_BOUNDS`, so histograms
      from different servers merge bucket-wise without negotiation.
    """

    TYPE = 13
    counters: Tuple[Tuple[str, Union[int, float]], ...]
    spans: Tuple[Tuple[str, Tuple[int, ...], float], ...]

    def encode_payload(self) -> bytes:
        """Serialise the payload (frame header excluded)."""
        parts = [struct.pack(">I", len(self.counters))]
        for name, value in self.counters:
            parts.append(_encode_str(name))
            parts.append(_encode_scalar(int(value) if isinstance(value, bool) else value))
        parts.append(struct.pack(">I", len(self.spans)))
        for stage, counts, total_seconds in self.spans:
            parts.append(_encode_str(stage))
            parts.append(struct.pack(">I", len(counts)))
            parts.append(struct.pack(f">{len(counts)}Q", *counts))
            parts.append(struct.pack(">d", total_seconds))
        return b"".join(parts)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "StatsSnapshot":
        """Inverse of :meth:`encode_payload`."""
        (counter_count,) = struct.unpack_from(">I", payload, 0)
        offset = 4
        counters = []
        for _ in range(counter_count):
            name, offset = _decode_str(payload, offset)
            value, offset = _decode_scalar(payload, offset)
            counters.append((name, value))
        (span_count,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        spans = []
        for _ in range(span_count):
            stage, offset = _decode_str(payload, offset)
            (bucket_count,) = struct.unpack_from(">I", payload, offset)
            offset += 4
            counts = struct.unpack_from(f">{bucket_count}Q", payload, offset)
            offset += 8 * bucket_count
            (total_seconds,) = struct.unpack_from(">d", payload, offset)
            offset += 8
            spans.append((stage, counts, total_seconds))
        return cls(tuple(counters), tuple(spans))

    # convenience views ---------------------------------------------------
    def counters_dict(self) -> Dict[str, Union[int, float]]:
        """The counters section as a plain dict."""
        return dict(self.counters)

    def histograms(self):
        """The spans section as live :class:`LatencyHistogram` objects."""
        from .observability import LatencyHistogram

        return {
            stage: LatencyHistogram(list(counts), total_seconds)
            for stage, counts, total_seconds in self.spans
        }


def stats_snapshot_for(registry) -> StatsSnapshot:
    """The wire message carrying a :class:`MetricsRegistry` snapshot."""
    return StatsSnapshot(
        tuple(
            (name, int(value) if isinstance(value, bool) else value)
            for name, value in sorted(registry.stats.as_dict().items())
        ),
        tuple(
            (stage, tuple(histogram.counts), histogram.total_seconds)
            for stage, histogram in sorted(registry.tracer.histograms.items())
        ),
    )


@dataclass(frozen=True)
class HeartbeatMessage:
    """C<->S: liveness probe; the server echoes the frame unchanged.

    A quiet subscriber is indistinguishable from a dead connection (the
    whole point of the safe region is that healthy clients are silent),
    so liveness travels out of band: the client heartbeats on an
    interval and both sides treat a silent period longer than their read
    timeout as a lost connection.
    """

    TYPE = 8
    sub_id: int
    seq: int

    def encode_payload(self) -> bytes:
        """Serialise the payload (frame header excluded)."""
        return struct.pack(">QQ", self.sub_id, self.seq)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "HeartbeatMessage":
        """Inverse of :meth:`encode_payload`."""
        sub_id, seq = struct.unpack(">QQ", payload)
        return cls(sub_id, seq)


@dataclass(frozen=True)
class ResyncMessage:
    """C->S: reconcile state after a reconnect.

    The client reports its position and the ids of every notification it
    actually received; the server adopts that set as the subscriber's
    ``delivered`` ground truth, redelivers matching in-region events the
    network lost, and ships a fresh safe region.
    """

    TYPE = 9
    sub_id: int
    location: Point
    velocity: Point
    received: Tuple[int, ...]

    def encode_payload(self) -> bytes:
        """Serialise the payload (frame header excluded)."""
        header = struct.pack(
            ">QddddI",
            self.sub_id,
            self.location.x,
            self.location.y,
            self.velocity.x,
            self.velocity.y,
            len(self.received),
        )
        return header + struct.pack(f">{len(self.received)}Q", *self.received)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "ResyncMessage":
        """Inverse of :meth:`encode_payload`."""
        sub_id, x, y, vx, vy, count = struct.unpack_from(">QddddI", payload, 0)
        offset = struct.calcsize(">QddddI")
        received = struct.unpack_from(f">{count}Q", payload, offset)
        return cls(sub_id, Point(x, y), Point(vx, vy), tuple(received))


_MESSAGE_TYPES = {
    cls.TYPE: cls
    for cls in (
        SubscribeMessage,
        UnsubscribeMessage,
        LocationReport,
        LocationPing,
        SafeRegionPush,
        NotificationMessage,
        EventPublishMessage,
        EventPublishBatchMessage,
        HeartbeatMessage,
        ResyncMessage,
        SafeRegionDelta,
        StatsRequest,
        StatsSnapshot,
    )
}

Message = Union[
    SubscribeMessage,
    UnsubscribeMessage,
    LocationReport,
    LocationPing,
    SafeRegionPush,
    NotificationMessage,
    EventPublishMessage,
    EventPublishBatchMessage,
    HeartbeatMessage,
    ResyncMessage,
    SafeRegionDelta,
    StatsRequest,
    StatsSnapshot,
]

_FRAME_HEADER = ">BI"


def encode_message(message: Message) -> bytes:
    """One framed message: type byte, payload length, payload."""
    payload = message.encode_payload()
    return struct.pack(_FRAME_HEADER, message.TYPE, len(payload)) + payload


def decode_message(frame: bytes) -> Message:
    """Decode one framed message; trailing bytes are an error."""
    message_type, length = struct.unpack_from(_FRAME_HEADER, frame, 0)
    header = struct.calcsize(_FRAME_HEADER)
    if len(frame) != header + length:
        raise ValueError(
            f"frame length mismatch: header says {length}, got {len(frame) - header}"
        )
    cls = _MESSAGE_TYPES.get(message_type)
    if cls is None:
        raise ValueError(f"unknown message type {message_type}")
    return cls.decode_payload(frame[header:])


def message_bytes(message: Message) -> int:
    """Wire size of one message, frame header included."""
    return len(encode_message(message))


def frame_type(frame: bytes) -> int:
    """The type byte of an encoded frame, without decoding the payload.

    The egress queue classifies frames by kind (is this a region push?
    a notification?) and tests assert on raw captures; both need the
    type without paying for a full decode.
    """
    if not frame:
        raise ValueError("empty frame has no type byte")
    return frame[0]


def subscribe_message_for(subscription, location, velocity) -> SubscribeMessage:
    """The wire message registering ``subscription`` at a position.

    The one way both network clients phrase a subscribe, so their
    convenience wrappers cannot drift apart.
    """
    return SubscribeMessage(
        subscription.sub_id,
        subscription.radius,
        subscription.expression,
        location,
        velocity,
    )


def publish_message_for(
    event_id: int, attributes, location, ttl: int = 0
) -> EventPublishMessage:
    """The wire message publishing one event."""
    return EventPublishMessage(
        event_id, location, tuple(sorted(dict(attributes).items())), ttl
    )


def publish_batch_message_for(events) -> EventPublishBatchMessage:
    """The batched publish frame for ``(event_id, attributes, location
    [, ttl])`` tuples."""
    items = []
    for entry in events:
        event_id, attributes, location = entry[:3]
        ttl = entry[3] if len(entry) > 3 else 0
        items.append(publish_message_for(event_id, attributes, location, ttl))
    return EventPublishBatchMessage(tuple(items))


def notification_for(sub_id: int, event, seq: int = 0) -> NotificationMessage:
    """The wire message delivering ``event`` to ``sub_id``."""
    return NotificationMessage(
        sub_id,
        event.event_id,
        event.location,
        tuple(sorted(event.attributes.items())),
        seq,
    )


def region_push_for(sub_id: int, safe_region) -> SafeRegionPush:
    """The wire message shipping a safe region to its client."""
    return SafeRegionPush(
        sub_id,
        safe_region.grid.n,
        safe_region.complement,
        safe_region.to_bitmap(),
    )


def region_delta_for(sub_id: int, grid, removed_cells) -> SafeRegionDelta:
    """The wire message shipping a repair's removed cells to its client."""
    from ..core import RegionDelta

    return SafeRegionDelta(
        sub_id, grid.n, RegionDelta.of(grid, removed_cells).to_bitmap()
    )


def cells_from_delta(delta: SafeRegionDelta, grid):
    """The removed-cell set of a :class:`SafeRegionDelta`.

    Inverse of :func:`region_delta_for`; the client subtracts the result
    from the safe region it holds (``GridRegion.subtract``).  ``grid``
    must match the server's grid, as with :func:`region_from_push`.
    """
    from ..geometry.zorder import deinterleave

    if delta.grid_n != grid.n:
        raise ValueError(
            f"grid mismatch: delta encodes n={delta.grid_n}, client has n={grid.n}"
        )
    return frozenset(deinterleave(code) for code in delta.bitmap.positions())


def region_from_push(push: SafeRegionPush, grid):
    """Reconstruct the client-side :class:`~repro.core.SafeRegion`.

    Inverse of :func:`region_push_for`: bit positions are Morton codes
    (see ``GridRegion.to_bitmap``), so each set position deinterleaves
    back to a grid cell.  ``grid`` must match the server's grid — the
    push carries ``grid_n`` so a client can verify before decoding.
    """
    from ..core import SafeRegion
    from ..geometry.zorder import deinterleave

    if push.grid_n != grid.n:
        raise ValueError(
            f"grid mismatch: push encodes n={push.grid_n}, client has n={grid.n}"
        )
    cells = frozenset(deinterleave(code) for code in push.bitmap.positions())
    return SafeRegion(grid, cells, push.complement)
