"""Deterministic fault injection for the Elaps TCP layer.

The network hardening of DESIGN.md §8 needs an adversary to harden
against.  This module provides one: a frame-aware TCP proxy that sits
between clients and :class:`~repro.system.network.ElapsTCPServer` and,
under a seeded RNG, perturbs the stream in the ways real networks do —

=============  ========================================================
fault          wire behaviour
=============  ========================================================
``DELAY``      the frame is held for a random interval before relay
``DROP``       the frame silently never arrives
``DUPLICATE``  the frame arrives twice, back to back
``CORRUPT``    one byte of the frame is flipped (header or payload)
``TRUNCATE``   a prefix of the frame is delivered, then the connection
               is reset (partial delivery followed by RST)
``RESET``      both sides of the proxied connection are aborted
               mid-stream (``ECONNRESET`` on each end)
=============  ========================================================

Determinism: every proxied connection derives its own
:class:`FaultInjector` from ``(config.seed, connection index,
direction)``, so the fault sequence each stream experiences does not
depend on event-loop scheduling and a failing chaos run replays from its
seed alone.

The proxy is protocol-aware only in its framing (it relays whole frames
read with the hardened ``read_frame``); it never decodes payloads, so
corrupted bytes travel exactly as a hostile network would deliver them.
"""

from __future__ import annotations

import asyncio
import contextlib
import enum
import itertools
import random
import socket
from dataclasses import dataclass
from typing import Optional, Set, Tuple

from .network import FrameError, read_frame


class FaultKind(enum.Enum):
    """What happens to one frame traversing the proxy."""

    PASS = "pass"
    DROP = "drop"
    DUPLICATE = "duplicate"
    CORRUPT = "corrupt"
    TRUNCATE = "truncate"
    RESET = "reset"


@dataclass(frozen=True)
class FaultConfig:
    """Fault probabilities (per frame) and the seed that fixes them.

    The mutating faults are mutually exclusive per frame and their rates
    must sum to at most 1; ``delay_rate`` is drawn independently, so a
    frame can be both delayed and, say, duplicated.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    truncate_rate: float = 0.0
    reset_rate: float = 0.0
    delay_rate: float = 0.0
    delay_min: float = 0.0
    delay_max: float = 0.005
    #: apply faults to client->server frames
    upstream: bool = True
    #: apply faults to server->client frames
    downstream: bool = True

    def __post_init__(self) -> None:
        rates = {
            "drop_rate": self.drop_rate,
            "duplicate_rate": self.duplicate_rate,
            "corrupt_rate": self.corrupt_rate,
            "truncate_rate": self.truncate_rate,
            "reset_rate": self.reset_rate,
            "delay_rate": self.delay_rate,
        }
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be a probability, got {rate}")
        exclusive = sum(rates.values()) - self.delay_rate
        if exclusive > 1.0:
            raise ValueError(
                f"mutually exclusive fault rates sum to {exclusive}, beyond 1.0"
            )
        if self.delay_min < 0 or self.delay_max < self.delay_min:
            raise ValueError(
                f"invalid delay window [{self.delay_min}, {self.delay_max}]"
            )


@dataclass(frozen=True)
class FaultAction:
    """One injector decision, fully materialised (no RNG left to draw)."""

    kind: FaultKind
    delay: float = 0.0
    #: CORRUPT: byte offset to flip; TRUNCATE: bytes of prefix delivered
    index: int = 0
    #: CORRUPT: the xor mask applied to the chosen byte (never 0)
    mask: int = 0


@dataclass
class FaultStats:
    """What the proxy actually did, by fault kind."""

    frames: int = 0
    passed: int = 0
    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0
    truncated: int = 0
    resets: int = 0
    delayed: int = 0

    @property
    def injected(self) -> int:
        """Frames that suffered any fault at all."""
        return self.frames - self.passed


class FaultInjector:
    """A seeded decision source for one direction of one connection."""

    def __init__(self, config: FaultConfig, stream_id: int = 0) -> None:
        self.config = config
        # a large odd multiplier spreads stream ids across seed space
        # without colliding neighbouring connections
        self.rng = random.Random(config.seed * 0x9E3779B1 + stream_id)

    def decide(self, frame_length: int) -> FaultAction:
        """The (deterministic) fate of the next frame of this stream."""
        config = self.config
        delay = 0.0
        if config.delay_rate and self.rng.random() < config.delay_rate:
            delay = self.rng.uniform(config.delay_min, config.delay_max)
        draw = self.rng.random()
        for kind, rate in (
            (FaultKind.DROP, config.drop_rate),
            (FaultKind.DUPLICATE, config.duplicate_rate),
            (FaultKind.CORRUPT, config.corrupt_rate),
            (FaultKind.TRUNCATE, config.truncate_rate),
            (FaultKind.RESET, config.reset_rate),
        ):
            if draw < rate:
                if kind is FaultKind.CORRUPT:
                    return FaultAction(
                        kind,
                        delay,
                        index=self.rng.randrange(frame_length),
                        mask=self.rng.randrange(1, 256),
                    )
                if kind is FaultKind.TRUNCATE:
                    return FaultAction(
                        kind, delay, index=self.rng.randrange(1, max(frame_length, 2))
                    )
                return FaultAction(kind, delay)
            draw -= rate
        return FaultAction(FaultKind.PASS, delay)


class ChaosProxy:
    """A frame-aware TCP proxy injecting faults between client and server.

    Point clients at ``proxy.port`` instead of the real server's; every
    connection is tunnelled with two pump tasks (one per direction), each
    consulting its own deterministic :class:`FaultInjector`.  Setting
    :attr:`enabled` to False mid-run turns the proxy into a faithful
    relay — the settle phase of a chaos test, during which reconnecting
    clients heal.
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        config: Optional[FaultConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.target_host = target_host
        self.target_port = target_port
        self.config = config or FaultConfig()
        self.host = host
        self.port = port
        self.enabled = True
        #: seconds slept before each server->client frame is read — a
        #: throttled *reader*: the proxy stops pulling from the server
        #: socket, the kernel window closes, and the server experiences
        #: a slow consumer (its send queue backs up).  Mutable mid-run,
        #: like :attr:`enabled`; 0 disables the throttle.
        self.throttle_downstream = 0.0
        #: ``SO_RCVBUF`` clamp for the proxy's server-facing socket.
        #: Without it the kernel auto-tunes the receive buffer up and
        #: silently absorbs megabytes on behalf of a throttled reader —
        #: set a small value so backpressure actually reaches the
        #: server's send queue.  Applies to connections opened after
        #: the change; ``None`` leaves the kernel default.
        self.upstream_rcvbuf: Optional[int] = None
        self.stats = FaultStats()
        self._server: Optional[asyncio.base_events.Server] = None
        self._stream_ids = itertools.count(0)
        self._writers: Set[asyncio.StreamWriter] = set()
        self._handlers: Set[asyncio.Task] = set()

    async def start(self) -> None:
        """Bind the proxy and start relaying."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting and abort every tunnelled connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.transport.abort()
        self._writers.clear()
        # let handlers run down on their own (cancelling a
        # client_connected task trips the asyncio-streams done callback)
        pending = [task for task in self._handlers if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=5)

    async def _handle(
        self, client_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            if self.upstream_rcvbuf is not None:
                # clamp before connecting so the advertised window never
                # grows past the configured buffer
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_RCVBUF, self.upstream_rcvbuf
                )
                sock.setblocking(False)
                await asyncio.get_running_loop().sock_connect(
                    sock, (self.target_host, self.target_port)
                )
                server_reader, server_writer = await asyncio.open_connection(
                    sock=sock
                )
            else:
                server_reader, server_writer = await asyncio.open_connection(
                    self.target_host, self.target_port
                )
        except OSError:
            client_writer.close()
            return
        stream_id = next(self._stream_ids)
        self._writers.add(client_writer)
        self._writers.add(server_writer)
        pair = (client_writer, server_writer)
        pumps = [
            asyncio.ensure_future(
                self._pump(
                    client_reader,
                    server_writer,
                    FaultInjector(self.config, 2 * stream_id)
                    if self.config.upstream
                    else None,
                    pair,
                )
            ),
            asyncio.ensure_future(
                self._pump(
                    server_reader,
                    client_writer,
                    FaultInjector(self.config, 2 * stream_id + 1)
                    if self.config.downstream
                    else None,
                    pair,
                    downstream=True,
                )
            ),
        ]
        try:
            # a closed or reset direction takes the whole tunnel with it,
            # like a real TCP connection would
            await asyncio.wait(pumps, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for pump in pumps:
                pump.cancel()
            for pump in pumps:
                with contextlib.suppress(asyncio.CancelledError):
                    await pump
            for writer in pair:
                self._writers.discard(writer)
                with contextlib.suppress(Exception):
                    writer.close()
            self._handlers.discard(task)

    def _abort_pair(self, pair: Tuple[asyncio.StreamWriter, ...]) -> None:
        for writer in pair:
            with contextlib.suppress(Exception):
                writer.transport.abort()

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        injector: Optional[FaultInjector],
        pair: Tuple[asyncio.StreamWriter, ...],
        downstream: bool = False,
    ) -> None:
        try:
            while True:
                if downstream and self.throttle_downstream > 0:
                    await asyncio.sleep(self.throttle_downstream)
                frame = await read_frame(reader)
                if frame is None:
                    return
                if injector is None or not self.enabled:
                    writer.write(frame)
                    await writer.drain()
                    continue
                action = injector.decide(len(frame))
                self.stats.frames += 1
                if action.delay:
                    self.stats.delayed += 1
                    await asyncio.sleep(action.delay)
                if action.kind is FaultKind.DROP:
                    self.stats.dropped += 1
                    continue
                if action.kind is FaultKind.DUPLICATE:
                    self.stats.duplicated += 1
                    writer.write(frame + frame)
                elif action.kind is FaultKind.CORRUPT:
                    self.stats.corrupted += 1
                    mutated = bytearray(frame)
                    mutated[action.index] ^= action.mask
                    writer.write(bytes(mutated))
                elif action.kind is FaultKind.TRUNCATE:
                    self.stats.truncated += 1
                    writer.write(frame[: action.index])
                    with contextlib.suppress(ConnectionError, OSError):
                        await writer.drain()
                    self._abort_pair(pair)
                    return
                elif action.kind is FaultKind.RESET:
                    self.stats.resets += 1
                    self._abort_pair(pair)
                    return
                else:
                    self.stats.passed += 1
                    writer.write(frame)
                await writer.drain()
        except (FrameError, ConnectionError, OSError):
            return
