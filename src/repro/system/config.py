"""Server configuration and the transport seam of the redesigned API.

Two things used to make :class:`~repro.system.server.ElapsServer` hard to
drive programmatically — and impossible to drive from a sharding
coordinator that must build K identical workers:

* a **twelve-keyword constructor**: every tuning knob (matching mode,
  rate window, repair policy, byte measurement, ...) was its own keyword
  argument, so call sites drifted apart and a coordinator had no single
  value to copy into each worker;
* **three post-construction hook attributes** (``region_sink``,
  ``delta_sink``, ``locator``) patched onto the server after the fact by
  whichever layer (simulation, TCP, tests) happened to own the clients.

This module replaces both:

* :class:`ServerConfig` — one frozen dataclass holding every tuning knob.
  ``ElapsServer(grid, strategy, config=ServerConfig(...))`` is the
  primary construction form; a :class:`ShardedElapsServer
  <repro.system.sharding.ShardedElapsServer>` builds every worker from
  one shared config.  The old keywords still work but emit
  :class:`DeprecationWarning`.
* :class:`Transport` — the single client-facing seam.  A transport knows
  how to ship a full safe region (``ship_region``), ship a repair delta
  (``ship_delta``, defaulting to a full push for transports that predate
  deltas), and answer the server's location ping (``locate``).  It is
  passed at construction (or assigned to ``server.transport``); the three
  legacy attributes survive as deprecated property shims that wrap plain
  callables in a :class:`CallbackTransport`.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, FrozenSet, Optional, Tuple

from ..geometry import Cell, Point

if TYPE_CHECKING:  # pragma: no cover
    from ..core import RepairBudget, SafeRegion, SystemStats
    from .journal import JournalSpec

__all__ = [
    "CallbackTransport",
    "ClientConfig",
    "MAX_FRAME_LENGTH",
    "NetworkConfig",
    "RebalancePolicy",
    "ReconnectPolicy",
    "ServerConfig",
    "Transport",
]

#: upper bound on a frame's declared payload length; anything larger is
#: treated as a framing error (a corrupted length field would otherwise
#: stall the reader for gigabytes)
MAX_FRAME_LENGTH = 1 << 24

#: the egress shed policies :class:`NetworkConfig` understands
SHED_POLICIES = ("stale", "none")

#: the matching modes the server understands (DESIGN.md §6)
MATCHING_MODES = ("ondemand", "full", "cached")

#: the shard-executor kinds a fleet can run under (DESIGN.md §12, §15)
SHARD_EXECUTORS = ("serial", "threaded", "process")


@dataclass(frozen=True)
class RebalancePolicy:
    """When and how aggressively a sharded fleet moves its band
    boundaries (DESIGN.md §15).

    The coordinator tracks per-column event load; every ``check_every``
    published events (once ``min_events`` have been seen) it compares the
    hottest band's share against the mean, and when the ratio exceeds
    ``max_imbalance`` it re-cuts the column boundaries so each band
    carries an equal share of the observed load — splitting hot bands and
    merging cold ones in one move.  ``decay`` ages the load counters
    after each rebalance so the policy follows a moving hotspot instead
    of averaging over all history.
    """

    #: published events between imbalance checks
    check_every: int = 256
    #: trigger when (hottest band load) / (mean band load) exceeds this
    max_imbalance: float = 2.0
    #: observed events required before the first check
    min_events: int = 512
    #: multiplier applied to every column-load counter after a rebalance
    decay: float = 0.5

    def __post_init__(self) -> None:
        if self.check_every < 1:
            raise ValueError(f"check_every must be positive: {self.check_every}")
        if self.max_imbalance < 1.0:
            raise ValueError(
                f"max_imbalance must be at least 1.0: {self.max_imbalance}"
            )
        if not 0.0 <= self.decay <= 1.0:
            raise ValueError(f"decay must be in [0, 1]: {self.decay}")


@dataclass(frozen=True)
class ServerConfig:
    """Every tuning knob of one Elaps server, in one immutable value.

    Replaces the keyword sprawl of the pre-sharding constructor; being
    frozen (and hashable but for the two optional callables) it can be
    shared verbatim across the workers of a sharded deployment — the
    coordinator hands the *same* config to every shard, so a fleet can
    never be built half-repairing or half-measuring.
    """

    #: event-to-subscriber matching strategy: ``ondemand`` (LazyBEQField),
    #: ``full`` (materialise every be-match), or ``cached`` (incremental
    #: per-subscriber caches)
    matching_mode: str = "ondemand"
    #: sliding window (timestamps) of the event-rate estimator (Eq. 5-6)
    rate_window: int = 50
    #: seed value for the rate estimator until the window fills; None
    #: starts the estimate from observed arrivals only
    initial_rate: Optional[float] = None
    #: lower bound on the speed used for region construction
    min_speed: float = 1.0
    #: replace the live cost-model inputs with a fixed schedule (tests
    #: and the Figure 10 oracle variants)
    stats_override: Optional[Callable[[int], "SystemStats"]] = None
    #: account wire bytes for every message that would cross the network
    measure_bytes: bool = False
    #: ablation switch: with False, every be-matching arrival pings the
    #: subscriber, as if the impact-region concept did not exist
    use_impact_region: bool = True
    #: incremental safe-region repair (DESIGN.md §10) instead of full
    #: reconstruction on type-II out-of-radius events
    repair: bool = False
    #: the repair/rebuild balance policy; None uses the default budget
    repair_budget: Optional["RepairBudget"] = None
    #: durability: journal every state-changing operation under this
    #: spec's directory and enable snapshot/recover (DESIGN.md §13);
    #: None keeps the server purely in-memory.  Sharded fleets derive a
    #: per-band spec via :meth:`JournalSpec.for_shard`.
    journal: Optional["JournalSpec"] = None
    #: route incremental constructions through the array-backed core
    #: (DESIGN.md §14): an iGM/idGM strategy is upgraded to its
    #: byte-identical vectorized twin at server build time; VM/GM are
    #: unaffected.  The scalar strategies remain the oracle the
    #: differential suite verifies against.
    vectorized_construction: bool = False
    #: how a :class:`~repro.system.sharding.ShardedElapsServer` runs its
    #: shard fan-outs when no executor instance is passed explicitly:
    #: ``serial`` (deterministic), ``threaded`` (thread pool, per-shard
    #: locks), or ``process`` (one worker process per shard — DESIGN.md
    #: §15).  ``None`` keeps the fleet's default (serial).  Single
    #: servers ignore the knob.
    shard_executor: Optional[str] = None
    #: load-adaptive repartitioning for sharded fleets: a
    #: :class:`RebalancePolicy` turns on boundary moves driven by the
    #: observed per-column event load; ``None`` keeps the bands static.
    #: Single servers ignore the knob.
    rebalance: Optional[RebalancePolicy] = None

    def __post_init__(self) -> None:
        if self.matching_mode not in MATCHING_MODES:
            raise ValueError(
                f"unknown matching mode: {self.matching_mode!r}; "
                f"pick one of {MATCHING_MODES}"
            )
        if self.shard_executor is not None and self.shard_executor not in SHARD_EXECUTORS:
            raise ValueError(
                f"unknown shard executor: {self.shard_executor!r}; "
                f"pick one of {SHARD_EXECUTORS}"
            )

    def with_(self, **changes) -> "ServerConfig":
        """A copy of this configuration with fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class NetworkConfig:
    """Every knob of the TCP front-end, in one immutable value.

    Mirrors :class:`ServerConfig`: ``ElapsTCPServer(core,
    config=NetworkConfig(...))`` is the primary construction form, the
    old per-knob keywords still work but emit ``DeprecationWarning``,
    and being frozen the same value can configure a whole fleet of
    listeners without drift.

    The data path behind these knobs (DESIGN.md §17): connection
    handlers feed a bounded **ingress** queue drained by one dispatcher
    (a full queue stops the reads — natural TCP backpressure), and every
    connection owns a bounded **send queue** drained by a dedicated
    writer task (a full queue sheds stale region frames, and a consumer
    that stays over cap is disconnected and healed by resync).
    """

    #: a connection silent for longer than this is presumed dead and
    #: reaped (clients heartbeat well inside it); None disables
    read_timeout: Optional[float] = 30.0
    #: a frame that cannot be flushed within this budget marks a stalled
    #: peer and drops the connection; None disables
    write_timeout: Optional[float] = 10.0
    #: frames declaring a payload beyond this are framing errors
    max_frame_length: int = MAX_FRAME_LENGTH
    #: with True, a dropped connection keeps its subscriber records so a
    #: reconnecting client can resubscribe/resync into them; the default
    #: preserves the original semantics (disconnect means unsubscribe)
    retain_subscribers: bool = False
    #: decoded frames buffered between the sockets and the core; when
    #: full, connection handlers stop reading (TCP backpressure)
    ingress_queue: int = 1024
    #: soft cap on frames queued per connection; crossing it triggers
    #: shedding (per ``shed_policy``) and starts the slow-consumer clock
    send_queue: int = 256
    #: hard cap on frames queued per connection — reaching it disconnects
    #: the consumer immediately; None defaults to ``2 * send_queue``
    send_queue_hard: Optional[int] = None
    #: ``"stale"`` sheds region pushes/deltas and ephemeral frames from
    #: an over-cap queue (notifications are never shed — a consumer that
    #: cannot drain them is disconnected and healed by resync);
    #: ``"none"`` disables shedding and supersede-coalescing entirely
    shed_policy: str = "stale"
    #: seconds a send queue may sit over ``send_queue`` before the
    #: consumer is declared slow and disconnected
    slow_consumer_grace: float = 2.0
    #: admission control: connections beyond this are closed at accept
    #: time (counted in ``connections_refused``); None admits everyone
    max_connections: Optional[int] = None
    #: run core dispatch (subscribe/publish/report) on a worker thread
    #: behind a core lock so heartbeats and accepts stay responsive
    #: while a long safe-region construction runs; the default keeps
    #: dispatch inline on the event loop (deterministic)
    dispatch_offload: bool = False
    #: seconds ``stop()`` waits for connection handlers before
    #: cancelling the survivors (and logging them)
    stop_timeout: float = 5.0
    #: when set, each accepted connection's transport write buffer (and
    #: its socket ``SO_SNDBUF``) is capped at this many bytes, so a slow
    #: consumer backs the writer task up into the send queue instead of
    #: hiding megabytes in kernel buffers; None keeps platform defaults
    write_buffer_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.read_timeout is not None and self.read_timeout < 0:
            raise ValueError(f"read_timeout must be >= 0: {self.read_timeout}")
        if self.write_timeout is not None and self.write_timeout < 0:
            raise ValueError(f"write_timeout must be >= 0: {self.write_timeout}")
        if self.max_frame_length < 1:
            raise ValueError(
                f"max_frame_length must be positive: {self.max_frame_length}"
            )
        if self.ingress_queue < 1:
            raise ValueError(f"ingress_queue must be positive: {self.ingress_queue}")
        if self.send_queue < 1:
            raise ValueError(f"send_queue must be positive: {self.send_queue}")
        if self.send_queue_hard is not None and self.send_queue_hard < self.send_queue:
            raise ValueError(
                f"send_queue_hard ({self.send_queue_hard}) must be at least "
                f"send_queue ({self.send_queue})"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy: {self.shed_policy!r}; "
                f"pick one of {SHED_POLICIES}"
            )
        if self.slow_consumer_grace < 0:
            raise ValueError(
                f"slow_consumer_grace must be >= 0: {self.slow_consumer_grace}"
            )
        if self.max_connections is not None and self.max_connections < 1:
            raise ValueError(
                f"max_connections must be positive: {self.max_connections}"
            )
        if self.stop_timeout < 0:
            raise ValueError(f"stop_timeout must be >= 0: {self.stop_timeout}")
        if self.write_buffer_limit is not None and self.write_buffer_limit < 1:
            raise ValueError(
                f"write_buffer_limit must be positive: {self.write_buffer_limit}"
            )

    @property
    def hard_cap(self) -> int:
        """The effective hard send-queue bound (frames)."""
        return (
            self.send_queue_hard
            if self.send_queue_hard is not None
            else 2 * self.send_queue
        )

    def with_(self, **changes) -> "NetworkConfig":
        """A copy of this configuration with fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class ReconnectPolicy:
    """Exponential backoff with jitter for a client reconnect loop."""

    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    #: extra uniform fraction of the delay, decorrelating client herds
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base_delay <= 0:
            raise ValueError(f"base_delay must be positive: {self.base_delay}")
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay ({self.max_delay}) must be at least "
                f"base_delay ({self.base_delay})"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1: {self.multiplier}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0: {self.jitter}")

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """The sleep before reconnect ``attempt`` (0-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        return raw * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class ClientConfig:
    """The shared configuration of both Elaps network clients.

    :class:`~repro.system.network.ElapsNetworkClient` (the minimal
    scripted client) and
    :class:`~repro.system.network.ResilientElapsClient` (the supervised
    subscriber) take the same value, so one config describes a client
    fleet regardless of which wrapper it runs under; the resilient
    client's old per-knob keywords layer onto it with
    ``DeprecationWarning``.
    """

    #: seconds between keepalive frames (resilient client only)
    heartbeat_interval: float = 1.0
    #: a session with no frame inside this window is declared dead and
    #: redialled; None derives ``4 * heartbeat_interval``
    read_timeout: Optional[float] = None
    #: default wait for a single pushed frame (``receive`` /
    #: ``request_stats`` on either client)
    receive_timeout: float = 5.0
    #: the backoff schedule of the resilient client's reconnect loop
    reconnect: ReconnectPolicy = field(default_factory=ReconnectPolicy)

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive: {self.heartbeat_interval}"
            )
        if self.read_timeout is not None and self.read_timeout <= 0:
            raise ValueError(f"read_timeout must be positive: {self.read_timeout}")
        if self.receive_timeout <= 0:
            raise ValueError(
                f"receive_timeout must be positive: {self.receive_timeout}"
            )

    @property
    def effective_read_timeout(self) -> float:
        """The session read timeout with the heartbeat-derived default."""
        return (
            self.read_timeout
            if self.read_timeout is not None
            else self.heartbeat_interval * 4
        )

    def with_(self, **changes) -> "ClientConfig":
        """A copy of this configuration with fields replaced."""
        return dataclasses.replace(self, **changes)


class Transport:
    """The server's one seam to its clients.

    The server calls exactly three things on the outside world: it ships
    full safe regions, it ships repair deltas, and it asks where a
    subscriber is right now (the event-arrival ping).  A transport
    bundles the three, so the simulation, the TCP layer, and a sharding
    coordinator each implement one small class instead of patching three
    attributes onto a live server.

    The base class is a usable null transport: regions vanish, deltas
    degrade to full pushes, and ``locate`` answers ``None`` ("no fresher
    position than the last report"), which makes every method optional
    for subclasses.
    """

    def ship_region(self, sub_id: int, region: "SafeRegion") -> None:
        """Push one full safe region to the subscriber's client."""

    def ship_delta(
        self, sub_id: int, removed: FrozenSet[Cell], region: "SafeRegion"
    ) -> None:
        """Push a repair: the cells carved out of the held region.

        ``region`` is the post-repair safe region, so a transport that
        cannot frame deltas inherits this default and ships the full
        region instead — the exact fallback the legacy ``delta_sink``/
        ``region_sink`` pair implemented.
        """
        self.ship_region(sub_id, region)

    def locate(self, sub_id: int) -> Optional[Tuple[Point, Point]]:
        """Answer the server's ping with ``(location, velocity)``.

        ``None`` means the transport has nothing fresher than the
        subscriber's last report (the TCP layer's answer; the in-process
        simulation asks the client state machine instead).
        """
        return None


class CallbackTransport(Transport):
    """A :class:`Transport` over plain callables.

    The adapter that lets pre-redesign call sites (and quick tests)
    migrate without defining a class: any subset of the three hooks may
    be given, and an absent ``ship_delta`` falls back to a full
    ``ship_region`` push, exactly like the legacy sink pair did.
    """

    def __init__(
        self,
        *,
        ship_region: Optional[Callable[[int, "SafeRegion"], None]] = None,
        ship_delta: Optional[
            Callable[[int, FrozenSet[Cell], "SafeRegion"], None]
        ] = None,
        locate: Optional[Callable[[int], Tuple[Point, Point]]] = None,
    ) -> None:
        self._ship_region = ship_region
        self._ship_delta = ship_delta
        self._locate = locate

    def ship_region(self, sub_id: int, region: "SafeRegion") -> None:
        """Forward to the wrapped callable (or drop when absent)."""
        if self._ship_region is not None:
            self._ship_region(sub_id, region)

    def ship_delta(
        self, sub_id: int, removed: FrozenSet[Cell], region: "SafeRegion"
    ) -> None:
        """Forward the delta, or fall back to a full region push."""
        if self._ship_delta is not None:
            self._ship_delta(sub_id, removed, region)
        else:
            self.ship_region(sub_id, region)

    def locate(self, sub_id: int) -> Optional[Tuple[Point, Point]]:
        """Ask the wrapped callable; ``None`` when no locator was given."""
        if self._locate is None:
            return None
        return self._locate(sub_id)
