"""Elaps over TCP: the wire protocol served on a real socket.

The simulation drives the server through in-process callbacks; this
module exposes the same server as a network service so that real clients
(mobile devices, publishers) can speak the binary protocol of
:mod:`repro.system.protocol` over TCP:

* **subscribers** connect, send a :class:`SubscribeMessage`, receive the
  already-matching events and their first :class:`SafeRegionPush`, then
  report with :class:`LocationReport` whenever they leave the region;
  notifications and new regions are pushed down the same connection;
* **publishers** connect and send :class:`EventPublishMessage` frames;
  the server stamps arrival times from its own clock and fans out
  notifications to the affected subscriber connections.

One simplification versus the paper's synchronous ping: when an arriving
event lands in a subscriber's impact region, the server answers the
"ping" from the subscriber's most recent report instead of blocking the
publish on a network round-trip (clients report whenever they leave
their safe region, so the freshness guarantee is the same as the
simulation's: one report round per region exit).  A
:class:`~repro.system.protocol.LocationPing` is still pushed so the
client knows to report promptly.

The layer assumes a hostile network (DESIGN.md §8).  ``read_frame``
distinguishes clean EOF from peer resets and truncated streams; the
server enforces per-connection read timeouts and a frame-length cap,
echoes client heartbeats, and degrades gracefully on malformed frames
(count in :class:`~repro.system.metrics.CommunicationStats`, drop the
connection — never the event loop).  :class:`ResilientElapsClient` is
the subscriber built for that network: heartbeat keepalive, reconnect
with exponential backoff + jitter, and resubscribe + resync after every
reconnect so deliveries stay exactly-once end to end.

The data path is built around explicit bounded queues (DESIGN.md §17),
configured by one frozen :class:`~repro.system.config.NetworkConfig`:

* **ingress** — connection handlers read and decode frames, then feed a
  bounded queue drained by a single dispatcher task.  When the queue is
  full the handlers stop reading, which is natural TCP backpressure:
  the kernel window closes and well-behaved publishers slow down
  instead of ballooning server memory.  Heartbeats are answered inline,
  off the ingress path, so keepalives survive a busy core; with
  ``dispatch_offload`` the core work itself moves to a worker thread
  behind a core lock, keeping the event loop free for accepts, echoes
  and flushes during a long safe-region construction.
* **egress** — every connection owns a bounded :class:`SendQueue`
  drained by a dedicated writer task; nothing writes to a socket
  directly.  An over-cap queue sheds *stale* frames (a newer
  ``SafeRegionPush`` supersedes any queued older push or delta; a delta
  whose base push was shed is dropped and forces the full-push
  fallback; notifications are never shed), and a consumer that stays
  over cap past the grace window — or hits the hard cap — is counted in
  ``slow_consumer_disconnects`` and dropped: no further frames are
  accepted (bounding memory at the hard cap), the queued backlog is
  flushed, and the socket closes cleanly, so the subscribe+resync path
  heals the remainder exactly like any other dead connection.

The wrapped :class:`~repro.system.ElapsServer` is not thread-safe; all
core access runs on the dispatcher (or, offloaded, on its single worker
thread behind the core lock).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import enum
import itertools
import logging
import math
import random
import socket
import struct
import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..expressions import Event, Subscription
from ..geometry import Grid, Point
from .client import MobileClient
from .config import (
    MAX_FRAME_LENGTH,
    ClientConfig,
    NetworkConfig,
    ReconnectPolicy,
    Transport,
)
from .metrics import CommunicationStats
from .protocol import (
    EventPublishBatchMessage,
    EventPublishMessage,
    HeartbeatMessage,
    LocationPing,
    LocationReport,
    NotificationMessage,
    ResyncMessage,
    SafeRegionDelta,
    SafeRegionPush,
    StatsRequest,
    StatsSnapshot,
    SubscribeMessage,
    UnsubscribeMessage,
    cells_from_delta,
    decode_message,
    encode_message,
    notification_for,
    publish_batch_message_for,
    publish_message_for,
    region_delta_for,
    region_from_push,
    region_push_for,
    stats_snapshot_for,
    subscribe_message_for,
)
from .server import ElapsServer

logger = logging.getLogger(__name__)

_FRAME_HEADER = ">BI"
_HEADER_SIZE = struct.calcsize(_FRAME_HEADER)


class FrameError(Exception):
    """The byte stream violated the framing protocol."""


class TruncatedFrameError(FrameError):
    """The peer vanished mid-frame (partial header or payload)."""


async def read_frame(
    reader: asyncio.StreamReader, max_length: int = MAX_FRAME_LENGTH
) -> Optional[bytes]:
    """Read one length-prefixed frame; None on a clean EOF.

    Failure modes are kept distinct so callers can account for them:

    * clean EOF (peer closed between frames) returns ``None``;
    * EOF inside a frame raises :class:`TruncatedFrameError`;
    * a declared length beyond ``max_length`` raises :class:`FrameError`;
    * a peer reset propagates as :class:`ConnectionResetError` instead of
      being conflated with a graceful disconnect.
    """
    try:
        header = await reader.readexactly(_HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise TruncatedFrameError(
                f"stream ended after {len(exc.partial)} header bytes"
            ) from exc
        return None
    (_, length) = struct.unpack(_FRAME_HEADER, header)
    if length > max_length:
        raise FrameError(f"declared payload of {length} bytes exceeds {max_length}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrameError(
            f"stream ended {length - len(exc.partial)} bytes short of a payload"
        ) from exc
    return header + payload


# ----------------------------------------------------------------------
# Egress: the bounded per-connection send queue
# ----------------------------------------------------------------------
class FrameKind(enum.Enum):
    """What a queued egress frame carries, for shed eligibility.

    The shed-eligibility table (DESIGN.md §17): ``REGION``/``DELTA``
    frames are *state* — latest wins, older ones may be coalesced away
    and a shed is healed by the full-push fallback; ``EPHEMERAL`` frames
    (heartbeat echoes) carry no durable meaning; ``NOTIFICATION`` and
    ``CONTROL`` frames are deliveries the client is owed and are never
    shed — a consumer that cannot drain them is disconnected instead,
    which triggers the resync path that redelivers exactly-once.
    """

    NOTIFICATION = "notification"
    REGION = "region"
    DELTA = "delta"
    EPHEMERAL = "ephemeral"
    CONTROL = "control"


#: frame kinds an over-cap queue may drop (healed by fallback/next echo)
SHEDDABLE_KINDS = frozenset(
    {FrameKind.REGION, FrameKind.DELTA, FrameKind.EPHEMERAL}
)

#: frame kinds that carry region state for one subscriber
_REGION_KINDS = frozenset({FrameKind.REGION, FrameKind.DELTA})


class SendVerdict(enum.Enum):
    """What :meth:`SendQueue.offer` concluded about the consumer."""

    #: queue at or under the soft cap
    OK = "ok"
    #: over the soft cap but inside the grace window — keep serving
    OVER = "over"
    #: hard cap reached, or over cap past the grace window — drop the
    #: consumer (it will heal through reconnect + resync)
    DISCONNECT = "disconnect"


@dataclass
class QueuedFrame:
    """One frame waiting in a :class:`SendQueue`."""

    kind: FrameKind
    sub_id: Optional[int]
    frame: bytes


class SendQueue:
    """A bounded egress queue with stale-frame shedding.

    Pure synchronous state (offers and pops happen on the event loop;
    the property suite drives it directly).  Counters go to the
    :class:`~repro.system.metrics.CommunicationStats` handed in —
    ``frames_shed``, ``superseded_region_ships`` and the
    ``send_queue_high_water`` gauge.

    Invariants the property tests pin:

    * depth never exceeds ``hard_cap``, provided the caller stops
      offering once it sees :data:`SendVerdict.DISCONNECT` — which the
      server does by marking the connection draining;
    * no ``DELTA`` frame for a subscriber survives (or enters) the queue
      after a region frame for that subscriber was shed, until a fresh
      full push re-syncs the chain (``region_state_dirty``);
    * ``NOTIFICATION``/``CONTROL`` frames are never dropped;
    * the relative order of surviving frames is preserved.
    """

    def __init__(
        self,
        soft_cap: int,
        hard_cap: Optional[int] = None,
        *,
        grace: float = 2.0,
        shed: bool = True,
        stats: Optional[CommunicationStats] = None,
    ) -> None:
        if soft_cap < 1:
            raise ValueError(f"soft_cap must be positive: {soft_cap}")
        self.soft_cap = soft_cap
        self.hard_cap = hard_cap if hard_cap is not None else 2 * soft_cap
        if self.hard_cap < soft_cap:
            raise ValueError(
                f"hard_cap ({self.hard_cap}) must be at least soft_cap ({soft_cap})"
            )
        self.grace = grace
        self.shed_enabled = shed
        self.stats = stats if stats is not None else CommunicationStats()
        self.high_water = 0
        self._entries: Deque[QueuedFrame] = deque()
        self._sheddable = 0
        self._dirty: Set[int] = set()
        self._over_since: Optional[float] = None

    def __len__(self) -> int:
        return len(self._entries)

    def region_state_dirty(self, sub_id: int) -> bool:
        """True if a region frame for ``sub_id`` was shed and no full
        push has re-synced the chain since — the server must fall back
        to a full push instead of shipping a delta."""
        return sub_id in self._dirty

    def offer(
        self, kind: FrameKind, sub_id: Optional[int], frame: bytes, now: float
    ) -> SendVerdict:
        """Enqueue one frame and judge the consumer's health."""
        if kind is FrameKind.REGION:
            if self.shed_enabled:
                self._supersede(sub_id)
            # a full push is self-contained: it re-syncs a broken chain
            self._dirty.discard(sub_id)
        elif kind is FrameKind.DELTA and sub_id in self._dirty:
            # the base region this delta applies to was shed off this
            # queue; applying it would corrupt the client's region, so
            # it is dropped here and the sub stays dirty — the server's
            # next ship for it becomes a full push
            self.stats.frames_shed += 1
            return self._verdict(now)
        self._entries.append(QueuedFrame(kind, sub_id, frame))
        if kind in SHEDDABLE_KINDS:
            self._sheddable += 1
        depth = len(self._entries)
        if depth > self.high_water:
            self.high_water = depth
        if depth > self.stats.send_queue_high_water:
            self.stats.send_queue_high_water = depth
        if depth > self.soft_cap and self.shed_enabled and self._sheddable:
            self._shed()
        return self._verdict(now)

    def pop(self) -> Optional[QueuedFrame]:
        """The oldest queued frame, or None when empty."""
        if not self._entries:
            return None
        entry = self._entries.popleft()
        if entry.kind in SHEDDABLE_KINDS:
            self._sheddable -= 1
        if len(self._entries) <= self.soft_cap:
            self._over_since = None
        return entry

    # internals --------------------------------------------------------
    def _supersede(self, sub_id: Optional[int]) -> None:
        """A newer full push makes queued region state for the sub moot."""
        if sub_id is None or not self._entries:
            return
        removed = 0
        kept: Deque[QueuedFrame] = deque()
        for entry in self._entries:
            if entry.sub_id == sub_id and entry.kind in _REGION_KINDS:
                removed += 1
                self._sheddable -= 1
            else:
                kept.append(entry)
        if removed:
            self._entries = kept
            self.stats.superseded_region_ships += removed

    def _shed(self) -> None:
        """Drop stale frames, oldest first, until back under the cap.

        Dropping any region frame for a subscriber breaks its delta
        chain: every queued region frame for that subscriber goes with
        it and the subscriber is marked dirty until a fresh full push.
        """
        need = len(self._entries) - self.soft_cap
        broken: Set[int] = set()
        kept: Deque[QueuedFrame] = deque()
        for entry in self._entries:
            region_frame = entry.kind in _REGION_KINDS
            if region_frame and entry.sub_id in broken:
                self.stats.frames_shed += 1
                self._sheddable -= 1
                need -= 1
                continue
            if need > 0 and entry.kind in SHEDDABLE_KINDS:
                self.stats.frames_shed += 1
                self._sheddable -= 1
                need -= 1
                if region_frame and entry.sub_id is not None:
                    broken.add(entry.sub_id)
                    self._dirty.add(entry.sub_id)
                continue
            kept.append(entry)
        self._entries = kept

    def _verdict(self, now: float) -> SendVerdict:
        depth = len(self._entries)
        if depth <= self.soft_cap:
            self._over_since = None
            return SendVerdict.OK
        if depth >= self.hard_cap:
            return SendVerdict.DISCONNECT
        if self._over_since is None:
            self._over_since = now
            return SendVerdict.OVER
        if now - self._over_since > self.grace:
            return SendVerdict.DISCONNECT
        return SendVerdict.OVER


class _Connection:
    """One accepted socket: its writer, send queue, and writer task."""

    __slots__ = (
        "writer", "queue", "ready", "sub_ids", "closed", "draining",
        "writer_task",
    )

    def __init__(self, writer: asyncio.StreamWriter, queue: SendQueue) -> None:
        self.writer = writer
        self.queue = queue
        self.ready = asyncio.Event()
        self.sub_ids: Set[int] = set()
        self.closed = False
        #: a slow-consumer verdict landed: no new frames are accepted
        #: (bounding memory at the hard cap) but the queued backlog is
        #: still flushed before the close, so the client keeps every
        #: frame it was already owed and its next resync only has to
        #: cover the remainder — a backlog larger than the hard cap
        #: heals geometrically instead of livelocking on resets
        self.draining = False
        self.writer_task: Optional[asyncio.Task] = None


class TCPTransport(Transport):
    """The TCP layer's client-facing seam: frames over the sockets.

    Regions and deltas are encoded and queued on the subscriber's live
    connection; the location ping is answered from the last reported
    position (a TCP client is not synchronously pingable — it reports
    when it leaves its region, exactly the paper's protocol).
    """

    def __init__(self, tcp_server: "ElapsTCPServer") -> None:
        self._tcp = tcp_server

    def ship_region(self, sub_id, region) -> None:
        """Frame and queue a full safe region for the live connection."""
        self._tcp._push_region(sub_id, region)

    def ship_delta(self, sub_id, removed, region) -> None:
        """Frame and queue a repair delta for the live connection."""
        self._tcp._push_delta(sub_id, removed, region)

    def locate(self, sub_id):
        """The last position the subscriber reported over the wire."""
        return self._tcp._last_known_location(sub_id)


#: the ElapsTCPServer keywords that now live on NetworkConfig
_LEGACY_NETWORK_KWARGS = frozenset(
    {"read_timeout", "write_timeout", "max_frame_length", "retain_subscribers"}
)


class ElapsTCPServer:
    """Serve an :class:`ElapsServer` (or a
    :class:`~repro.system.sharding.ShardedElapsServer`) on a TCP port.

    ``ElapsTCPServer(core, config=NetworkConfig(...))`` is the primary
    construction form; the pre-§17 per-knob keywords still work but emit
    ``DeprecationWarning`` and layer onto the config.
    """

    def __init__(
        self,
        server: ElapsServer,
        host: str = "127.0.0.1",
        port: int = 0,
        timestamp_seconds: float = 5.0,
        config: Optional[NetworkConfig] = None,
        **legacy,
    ) -> None:
        if timestamp_seconds <= 0:
            raise ValueError(f"timestamp length must be positive: {timestamp_seconds}")
        unknown = set(legacy) - _LEGACY_NETWORK_KWARGS
        if unknown:
            raise TypeError(
                f"ElapsTCPServer got unexpected keyword arguments {sorted(unknown)}"
            )
        if legacy:
            warnings.warn(
                f"ElapsTCPServer keyword arguments {sorted(legacy)} are "
                "deprecated; pass config=NetworkConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = (config or NetworkConfig()).with_(**legacy)
        elif config is None:
            config = NetworkConfig()
        #: the immutable knob set this front-end was built from
        self.config = config
        self.server = server
        self.host = host
        self.port = port
        self.timestamp_seconds = timestamp_seconds
        self._subscriber_conns: Dict[int, _Connection] = {}
        self._connections: Set[_Connection] = set()
        self._connection_tasks: Set[asyncio.Task] = set()
        self._writer_tasks: Set[asyncio.Task] = set()
        self._event_ids = itertools.count(1)
        self._started_at = time.monotonic()
        self._tcp_server: Optional[asyncio.base_events.Server] = None
        self._ingress: Optional[asyncio.Queue] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[int] = None
        self._executor: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._core_lock: Optional[asyncio.Lock] = None
        # everything the wrapped server ships goes out over the sockets
        server.transport = TCPTransport(self)

    # legacy attribute views (the knobs moved onto ``config``) ---------
    @property
    def read_timeout(self) -> Optional[float]:
        """Compat view of :attr:`NetworkConfig.read_timeout`."""
        return self.config.read_timeout

    @property
    def write_timeout(self) -> Optional[float]:
        """Compat view of :attr:`NetworkConfig.write_timeout`."""
        return self.config.write_timeout

    @property
    def max_frame_length(self) -> int:
        """Compat view of :attr:`NetworkConfig.max_frame_length`."""
        return self.config.max_frame_length

    @property
    def retain_subscribers(self) -> bool:
        """Compat view of :attr:`NetworkConfig.retain_subscribers`."""
        return self.config.retain_subscribers

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind, start the dispatcher, and start accepting connections."""
        self._loop = asyncio.get_running_loop()
        self._loop_thread = threading.get_ident()
        self._ingress = asyncio.Queue(maxsize=self.config.ingress_queue)
        if self.config.dispatch_offload:
            self._executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="elaps-core"
            )
            self._core_lock = asyncio.Lock()
        self._dispatcher = asyncio.ensure_future(self._dispatcher_loop())
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._tcp_server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, close every connection, wait for handlers.

        Handlers are unblocked by closing their transports first: a
        clean EOF exercises exactly the disconnect path they already
        own.  Any handler still alive after ``config.stop_timeout`` is
        cancelled and logged instead of leaked; the dispatcher then
        drains the remaining ingress work (including the handlers' close
        markers) before it is stopped.
        """
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        for conn in list(self._connections):
            conn.closed = True
            conn.ready.set()
            with contextlib.suppress(Exception):
                conn.writer.close()
        pending = [task for task in self._connection_tasks if not task.done()]
        if pending:
            _, survivors = await asyncio.wait(
                pending, timeout=self.config.stop_timeout
            )
            if survivors:
                logger.warning(
                    "stop(): cancelling %d connection handler(s) still "
                    "alive after %.1fs",
                    len(survivors),
                    self.config.stop_timeout,
                )
                for task in survivors:
                    task.cancel()
                await asyncio.gather(*survivors, return_exceptions=True)
        if self._dispatcher is not None:
            if self._ingress is not None:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        self._ingress.join(), self.config.stop_timeout
                    )
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
            self._dispatcher = None
        for task in list(self._writer_tasks):
            task.cancel()
        if self._writer_tasks:
            await asyncio.gather(*self._writer_tasks, return_exceptions=True)
            self._writer_tasks.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None
        self._subscriber_conns.clear()
        self._connections.clear()

    def now(self) -> int:
        """The server clock in timestamps since start."""
        return int((time.monotonic() - self._started_at) / self.timestamp_seconds)

    # ------------------------------------------------------------------
    # Server-transport plumbing (egress)
    # ------------------------------------------------------------------
    def _last_known_location(self, sub_id: int):
        record = self.server.subscribers[sub_id]
        return record.location, record.velocity

    def _push_region(self, sub_id: int, region) -> None:
        self._ship(
            sub_id, FrameKind.REGION, encode_message(region_push_for(sub_id, region))
        )

    def _push_delta(self, sub_id: int, removed, region) -> None:
        """Queue a repair as a delta frame (the full region stays home).

        The delta only makes sense against the region the client already
        holds.  With no live connection the frame is dropped, exactly
        like a full push would be, and the client's reconnect resync
        ships a fresh full region anyway.  If the queue shed the base
        region this delta builds on, the delta would poison the client's
        state — the ship falls back to the full post-repair region
        instead (the PR 3 delta contract).
        """
        conn = self._subscriber_conns.get(sub_id)
        if conn is None:
            return
        if conn.queue.region_state_dirty(sub_id):
            self._push_region(sub_id, region)
            return
        self._ship(
            sub_id,
            FrameKind.DELTA,
            encode_message(region_delta_for(sub_id, self.server.grid, removed)),
        )

    def _push_notifications(self, notifications) -> None:
        for notification in notifications:
            self._ship(
                notification.sub_id,
                FrameKind.NOTIFICATION,
                encode_message(
                    notification_for(
                        notification.sub_id, notification.event, notification.seq
                    )
                ),
            )

    def _ship(self, sub_id: int, kind: FrameKind, frame: bytes) -> None:
        """Queue a frame for a subscriber's connection.

        Offloaded dispatch ships from the worker thread; queue state is
        only ever touched on the event loop, so those ships marshal over
        (``call_soon_threadsafe`` preserves submission order).
        """
        if self._loop is not None and threading.get_ident() != self._loop_thread:
            self._loop.call_soon_threadsafe(self._ship_on_loop, sub_id, kind, frame)
        else:
            self._ship_on_loop(sub_id, kind, frame)

    def _ship_on_loop(self, sub_id: int, kind: FrameKind, frame: bytes) -> None:
        conn = self._subscriber_conns.get(sub_id)
        if conn is None:
            # no live connection: the loss is healed by the client's
            # next resync, exactly like the pre-queue direct write
            return
        self._offer(conn, kind, sub_id, frame)

    def _offer(
        self, conn: _Connection, kind: FrameKind, sub_id: Optional[int], frame: bytes
    ) -> None:
        """Enqueue one frame and act on the queue's verdict."""
        if conn.closed or conn.draining:
            return
        verdict = conn.queue.offer(kind, sub_id, frame, time.monotonic())
        conn.ready.set()
        if verdict is SendVerdict.DISCONNECT:
            self.server.metrics.slow_consumer_disconnects += 1
            logger.warning(
                "slow consumer: send queue depth %d (cap %d/%d); "
                "disconnecting after flush",
                len(conn.queue),
                self.config.send_queue,
                self.config.hard_cap,
            )
            conn.draining = True

    def _abort_connection(self, conn: _Connection) -> None:
        """Server-initiated teardown; counters guard on ``conn.closed``."""
        if conn.closed:
            return
        conn.closed = True
        conn.ready.set()
        with contextlib.suppress(Exception):
            conn.writer.transport.abort()

    async def _writer_loop(self, conn: _Connection) -> None:
        """Drain one connection's send queue onto its socket.

        The only place this connection's socket is written.  A stalled
        drain lands in ``write_timeouts``; any other write failure on a
        live connection lands in ``push_errors`` (the counter the old
        silent ``_push_to`` except-pass was hiding).
        """
        metrics = self.server.metrics
        tracer = self.server.tracer
        writer = conn.writer
        write_timeout = self.config.write_timeout
        while True:
            entry = conn.queue.pop()
            if entry is None:
                if conn.closed:
                    return
                if conn.draining:
                    # backlog flushed: finish the slow-consumer
                    # disconnect with a clean FIN so every written
                    # frame survives (an abort's RST could discard
                    # them in flight)
                    conn.closed = True
                    with contextlib.suppress(Exception):
                        writer.close()
                    return
                conn.ready.clear()
                await conn.ready.wait()
                continue
            # coalesce a burst into one write; drain once for the batch
            frames = [entry.frame]
            while len(frames) < 64:
                nxt = conn.queue.pop()
                if nxt is None:
                    break
                frames.append(nxt.frame)
            try:
                writer.write(frames[0] if len(frames) == 1 else b"".join(frames))
                with tracer.span("drain"):
                    if write_timeout is None:
                        await writer.drain()
                    else:
                        await asyncio.wait_for(writer.drain(), write_timeout)
            except asyncio.TimeoutError:
                # a drain that cannot flush is a stalled *peer*, not a
                # silent one; counting it as a read timeout hid every
                # backpressure incident inside the idle-connection tally
                if not conn.closed:
                    metrics.write_timeouts += 1
                    self._abort_connection(conn)
                return
            except asyncio.CancelledError:
                raise
            except Exception:
                if not conn.closed:
                    metrics.push_errors += 1
                    logger.debug(
                        "write to connection failed; dropping it", exc_info=True
                    )
                    self._abort_connection(conn)
                return

    # ------------------------------------------------------------------
    # Connection handling (ingress)
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        metrics = self.server.metrics
        tracer = self.server.tracer
        config = self.config
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        if (
            config.max_connections is not None
            and len(self._connections) >= config.max_connections
        ):
            metrics.connections_refused += 1
            self._connection_tasks.discard(task)
            writer.close()
            return
        if config.write_buffer_limit is not None:
            # cap the kernel+transport buffering so a slow consumer
            # backs up into the (observable, bounded) send queue instead
            # of hiding megabytes of frames below the metrics
            with contextlib.suppress(Exception):
                writer.transport.set_write_buffer_limits(
                    high=config.write_buffer_limit
                )
                sock = writer.get_extra_info("socket")
                if sock is not None:
                    sock.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_SNDBUF,
                        config.write_buffer_limit,
                    )
        conn = _Connection(
            writer,
            SendQueue(
                config.send_queue,
                config.hard_cap,
                grace=config.slow_consumer_grace,
                shed=config.shed_policy == "stale",
                stats=metrics,
            ),
        )
        conn.writer_task = asyncio.ensure_future(self._writer_loop(conn))
        self._writer_tasks.add(conn.writer_task)
        conn.writer_task.add_done_callback(self._writer_tasks.discard)
        self._connections.add(conn)
        assert self._ingress is not None, "start() first"
        try:
            while True:
                try:
                    # the "read" stage includes the wait for the peer's
                    # next frame, so its histogram is the inter-frame
                    # arrival picture, not pure parsing cost
                    with tracer.span("read"):
                        frame = await asyncio.wait_for(
                            read_frame(reader, config.max_frame_length),
                            config.read_timeout,
                        )
                except asyncio.TimeoutError:
                    if not conn.closed:
                        metrics.read_timeouts += 1
                    break
                except ConnectionResetError:
                    if not conn.closed:
                        metrics.connection_resets += 1
                    break
                except FrameError:
                    metrics.malformed_frames += 1
                    break
                if frame is None:
                    break
                try:
                    with tracer.span("decode"):
                        message = decode_message(frame)
                except Exception:
                    # corrupted payload (bad tag, short buffer, garbage
                    # unicode, unknown type...): count it and cut the
                    # connection — the stream can no longer be trusted
                    metrics.malformed_frames += 1
                    break
                if not self._message_sane(message):
                    metrics.malformed_frames += 1
                    break
                if isinstance(message, HeartbeatMessage):
                    # answered inline, off the ingress path: keepalives
                    # stay responsive however busy the dispatcher is
                    metrics.heartbeats += 1
                    self._offer(
                        conn, FrameKind.EPHEMERAL, None, encode_message(message)
                    )
                    continue
                # a full ingress queue blocks here, which stops this
                # read loop: the kernel window closes and the peer
                # experiences ordinary TCP backpressure
                await self._ingress.put((conn, message))
                depth = self._ingress.qsize()
                if depth > metrics.ingress_queue_high_water:
                    metrics.ingress_queue_high_water = depth
        except Exception:  # graceful degradation: never crash the loop
            logger.exception("connection handler failed; dropping connection")
        finally:
            conn.closed = True
            conn.ready.set()
            self._connections.discard(conn)
            self._connection_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
            # the dispatcher owns subscriber-state cleanup, via a close
            # marker that queues FIFO *behind* this connection's
            # still-pending messages — no teardown/dispatch races
            try:
                self._ingress.put_nowait((conn, None))
            except asyncio.QueueFull:
                with contextlib.suppress(asyncio.CancelledError):
                    await self._ingress.put((conn, None))

    # ------------------------------------------------------------------
    # Dispatch (the core side of the ingress queue)
    # ------------------------------------------------------------------
    async def _dispatcher_loop(self) -> None:
        """Drain the ingress queue into the wrapped server, in order."""
        assert self._ingress is not None
        tracer = self.server.tracer
        while True:
            conn, message = await self._ingress.get()
            try:
                if message is None:
                    await self._cleanup_connection(conn)
                else:
                    with tracer.span("dispatch"):
                        await self._dispatch(conn, message)
            except asyncio.CancelledError:
                raise
            except Exception:
                # graceful degradation: a poisoned message costs its
                # connection, never the dispatcher
                logger.exception("dispatch failed; dropping connection")
                self._abort_connection(conn)
            finally:
                self._ingress.task_done()

    async def _run_core(self, fn):
        """Run one core operation, optionally on the offload thread.

        The wrapped server is not thread-safe: offloaded operations
        serialise behind the core lock, and everything they ship
        marshals back to the event loop (see :meth:`_ship`).
        """
        if self._executor is None:
            return fn()
        assert self._core_lock is not None and self._loop is not None
        async with self._core_lock:
            return await self._loop.run_in_executor(self._executor, fn)

    async def _cleanup_connection(self, conn: _Connection) -> None:
        """Tear down the subscriber state a dead connection owned."""
        for sub_id in list(conn.sub_ids):
            # a reconnected client may already own a fresh connection;
            # only tear down state that still belongs to this one
            if self._subscriber_conns.get(sub_id) is not conn:
                continue
            self._subscriber_conns.pop(sub_id, None)
            if (
                not self.config.retain_subscribers
                and sub_id in self.server.subscribers
            ):
                await self._run_core(
                    lambda sid=sub_id: self.server.unsubscribe(sid)
                )

    async def _dispatch(self, conn: _Connection, message) -> None:
        """Apply one decoded frame to the wrapped server."""
        if isinstance(message, SubscribeMessage):
            self._subscriber_conns[message.sub_id] = conn
            conn.sub_ids.add(message.sub_id)
            subscription = Subscription(
                message.sub_id, message.expression, message.radius
            )
            now = self.now()
            notifications, _ = await self._run_core(
                lambda: self.server.subscribe(
                    subscription, message.location, message.velocity, now
                )
            )
            # the initial region push went out via the region sink;
            # deliver the already-matching events
            self._push_notifications(notifications)
        elif isinstance(message, LocationReport):
            if message.sub_id in self.server.subscribers:
                now = self.now()
                notifications, _ = await self._run_core(
                    lambda: self.server.report_location(
                        message.sub_id, message.location, message.velocity, now
                    )
                )
                self._push_notifications(notifications)
        elif isinstance(message, ResyncMessage):
            if message.sub_id in self.server.subscribers:
                self._subscriber_conns[message.sub_id] = conn
                conn.sub_ids.add(message.sub_id)
                now = self.now()
                notifications, _ = await self._run_core(
                    lambda: self.server.resync(
                        message.sub_id,
                        message.location,
                        message.velocity,
                        message.received,
                        now,
                    )
                )
                self._push_notifications(notifications)
        elif isinstance(message, StatsRequest):
            # observability pull: answer with a point-in-time copy of the
            # whole registry on the requesting connection
            registry = await self._run_core(self.server.merged_registry)
            self._offer(
                conn,
                FrameKind.CONTROL,
                None,
                encode_message(stats_snapshot_for(registry)),
            )
        elif isinstance(message, UnsubscribeMessage):
            if message.sub_id in self.server.subscribers:
                await self._run_core(
                    lambda: self.server.unsubscribe(message.sub_id)
                )
            self._subscriber_conns.pop(message.sub_id, None)
            conn.sub_ids.discard(message.sub_id)
        elif isinstance(message, EventPublishMessage):
            now = self.now()
            event = self._event_from(message, now)
            notifications = await self._run_core(
                lambda: (
                    self.server.expire_due_events(now),
                    self.server.publish(event, now),
                )[1]
            )
            self._push_notifications(notifications)
        elif isinstance(message, EventPublishBatchMessage):
            now = self.now()
            events = [self._event_from(item, now) for item in message.events]
            notifications = await self._run_core(
                lambda: (
                    self.server.expire_due_events(now),
                    self.server.publish_batch(events, now),
                )[1]
            )
            self._push_notifications(notifications)

    def _message_sane(self, message) -> bool:
        """Semantic bounds on network input.

        Decoding only proves the bytes parse; a corrupted frame can
        still carry poison — a radius of ``1e308`` would iterate region
        construction until the heat death of the universe, a NaN
        coordinate breaks cell addressing.  Geometry must be finite and
        the radius must fit inside the served space.
        """

        def sane_point(p: Point) -> bool:
            """Both coordinates finite (no NaN/inf cell addressing)."""
            return math.isfinite(p.x) and math.isfinite(p.y)

        space = self.server.grid.space
        diagonal = math.hypot(space.width, space.height)
        if isinstance(message, SubscribeMessage):
            return (
                sane_point(message.location)
                and sane_point(message.velocity)
                and math.isfinite(message.radius)
                and 0 < message.radius <= diagonal
            )
        if isinstance(message, (LocationReport, ResyncMessage)):
            return sane_point(message.location) and sane_point(message.velocity)
        if isinstance(message, EventPublishMessage):
            return sane_point(message.location)
        if isinstance(message, EventPublishBatchMessage):
            return all(sane_point(event.location) for event in message.events)
        return True

    def _event_from(self, message: EventPublishMessage, now: int) -> Event:
        """A server-side event for one publish, with a collision-free id."""
        return Event(
            next(self._event_ids) << 32 | (message.event_id & 0xFFFFFFFF),
            dict(message.attributes),
            message.location,
            arrived_at=now,
            expires_at=None if message.ttl <= 0 else now + message.ttl,
        )


class ElapsNetworkClient:
    """A minimal subscriber/publisher client for :class:`ElapsTCPServer`."""

    def __init__(
        self, host: str, port: int, config: Optional[ClientConfig] = None
    ) -> None:
        self.host = host
        self.port = port
        self.config = config or ClientConfig()
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        """Open the TCP connection."""
        self.reader, self.writer = await asyncio.open_connection(self.host, self.port)

    async def close(self) -> None:
        """Close the connection."""
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except ConnectionResetError:  # pragma: no cover - platform noise
                pass

    async def send(self, message) -> None:
        """Send one protocol message."""
        assert self.writer is not None, "connect() first"
        self.writer.write(encode_message(message))
        await self.writer.drain()

    async def receive(self, timeout: Optional[float] = None):
        """Receive one pushed message (decoded), or None on EOF.

        ``timeout`` defaults to ``config.receive_timeout``.
        """
        assert self.reader is not None, "connect() first"
        if timeout is None:
            timeout = self.config.receive_timeout
        frame = await asyncio.wait_for(read_frame(self.reader), timeout)
        if frame is None:
            return None
        return decode_message(frame)

    # convenience wrappers ------------------------------------------------
    async def subscribe(self, subscription, location: Point, velocity: Point):
        """Subscribe and collect the pushes until the first region arrives."""
        await self.send(subscribe_message_for(subscription, location, velocity))
        received = []
        while True:
            message = await self.receive()
            received.append(message)
            if message is None or message.TYPE == SafeRegionPush.TYPE:
                return received

    async def publish(self, event_id: int, attributes: dict, location: Point,
                      ttl: int = 0) -> None:
        """Publish one event."""
        await self.send(publish_message_for(event_id, attributes, location, ttl))

    async def request_stats(
        self, timeout: Optional[float] = None
    ) -> Optional[StatsSnapshot]:
        """Request a :class:`StatsSnapshot`, skipping unrelated pushes.

        Notifications or region pushes already in flight on this
        connection are consumed (and discarded) until the snapshot
        arrives; a dedicated metrics connection sees none.  Returns
        ``None`` if the server closes first.
        """
        await self.send(StatsRequest())
        while True:
            message = await self.receive(timeout)
            if message is None or isinstance(message, StatsSnapshot):
                return message

    async def publish_batch(self, events) -> None:
        """Publish a burst as one frame (the batched fast path).

        ``events`` is an iterable of ``(event_id, attributes, location)``
        or ``(event_id, attributes, location, ttl)`` tuples.
        """
        await self.send(publish_batch_message_for(events))


# ----------------------------------------------------------------------
# Resilient subscriber
# ----------------------------------------------------------------------
#: the ResilientElapsClient keywords that now live on ClientConfig
_LEGACY_CLIENT_KWARGS = {
    "policy": "reconnect",
    "heartbeat_interval": "heartbeat_interval",
    "read_timeout": "read_timeout",
}


class ResilientElapsClient:
    """A subscriber that survives resets, drops, and silent networks.

    Wraps a :class:`~repro.system.client.MobileClient` (the durable
    state: subscription, location, received events) in a supervised
    connection loop:

    * every connection starts with a :class:`SubscribeMessage`; every
      *re*-connection follows it with a :class:`ResyncMessage` carrying
      the ids of all events the client actually holds, so the server can
      redeliver what the dead connection swallowed without ever
      double-shipping;
    * a heartbeat frame goes out every ``heartbeat_interval`` seconds and
      the server echoes it, so a connection with no frame inside
      ``read_timeout`` is declared dead;
    * any connection failure (reset, truncation, timeout, refused
      connect) feeds the :class:`ReconnectPolicy` backoff and the loop
      tries again; delivered events are deduped by id, so the
      application sees each event at most once no matter how the
      network behaves.

    Configured by the same :class:`~repro.system.config.ClientConfig`
    as :class:`ElapsNetworkClient`, and exposing the same convenience
    surface (``subscribe``/``publish``/``publish_batch``/
    ``request_stats``); the pre-config keywords (``policy``,
    ``heartbeat_interval``, ``read_timeout``) still work but emit
    ``DeprecationWarning``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        subscription: Subscription,
        location: Point,
        velocity: Optional[Point] = None,
        *,
        grid: Optional[Grid] = None,
        config: Optional[ClientConfig] = None,
        rng: Optional[random.Random] = None,
        **legacy,
    ) -> None:
        unknown = set(legacy) - set(_LEGACY_CLIENT_KWARGS)
        if unknown:
            raise TypeError(
                f"ResilientElapsClient got unexpected keyword arguments "
                f"{sorted(unknown)}"
            )
        if legacy:
            warnings.warn(
                f"ResilientElapsClient keyword arguments {sorted(legacy)} are "
                "deprecated; pass config=ClientConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            changes = {
                _LEGACY_CLIENT_KWARGS[name]: value
                for name, value in legacy.items()
                if value is not None
            }
            config = (config or ClientConfig()).with_(**changes)
        elif config is None:
            config = ClientConfig()
        self.host = host
        self.port = port
        self.config = config
        self.mobile = MobileClient(
            subscription, location, velocity or Point(0.0, 0.0)
        )
        #: with a grid, safe-region pushes are decoded into real regions
        #: so ``mobile.must_report`` works; without one they are counted
        self.grid = grid
        self.policy = config.reconnect
        self.heartbeat_interval = config.heartbeat_interval
        self.read_timeout = config.effective_read_timeout
        self.rng = rng or random.Random()
        self.connections = 0
        self.reconnects = 0
        self.regions_received = 0
        self.deltas_received = 0
        self.heartbeats_acked = 0
        self._writer: Optional[asyncio.StreamWriter] = None
        self._task: Optional[asyncio.Task] = None
        self._stopping = False
        self._connected = asyncio.Event()
        self._region_received = asyncio.Event()
        self._stats_waiters: List[asyncio.Future] = []
        self._session_ok = False

    # ------------------------------------------------------------------
    # Convenience views
    # ------------------------------------------------------------------
    @property
    def events(self) -> List[Event]:
        """Every event delivered to the application (deduped)."""
        return self.mobile.received_events

    @property
    def duplicates_suppressed(self) -> int:
        """Redeliveries the dedupe filter absorbed."""
        return self.mobile.duplicates_suppressed

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the connection supervisor."""
        self._task = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        """Stop reconnecting and close the live connection, if any."""
        self._stopping = True
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None
        self._close_writer()

    async def wait_connected(self, timeout: float = 5.0) -> None:
        """Block until a connection is up and the subscribe was sent."""
        await asyncio.wait_for(self._connected.wait(), timeout)

    # ------------------------------------------------------------------
    # Application actions (the shared client surface)
    # ------------------------------------------------------------------
    async def subscribe(self, timeout: Optional[float] = None) -> int:
        """Ensure the subscription is live: start the supervisor if
        needed and wait until the current session holds a safe region.

        The resilient twin of :meth:`ElapsNetworkClient.subscribe` — the
        subscription itself was fixed at construction, so this waits for
        the session's :class:`SafeRegionPush` instead of sending one.
        Returns the total number of regions received so far.
        """
        if timeout is None:
            timeout = self.config.receive_timeout
        if self._task is None:
            await self.start()
        await asyncio.wait_for(self._region_received.wait(), timeout)
        return self.regions_received

    async def publish(self, event_id: int, attributes: dict, location: Point,
                      ttl: int = 0) -> None:
        """Publish one event on the live connection (best effort —
        a publish raced by a reconnect is not replayed)."""
        await self.wait_connected()
        await self._send_quietly(
            publish_message_for(event_id, attributes, location, ttl)
        )

    async def publish_batch(self, events) -> None:
        """Publish a burst as one frame (best effort, like
        :meth:`publish`)."""
        await self.wait_connected()
        await self._send_quietly(publish_batch_message_for(events))

    async def request_stats(
        self, timeout: Optional[float] = None
    ) -> Optional[StatsSnapshot]:
        """Request a :class:`StatsSnapshot` over the live connection."""
        if timeout is None:
            timeout = self.config.receive_timeout
        await self.wait_connected(timeout)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._stats_waiters.append(future)
        try:
            await self._send_quietly(StatsRequest())
            return await asyncio.wait_for(future, timeout)
        finally:
            if future in self._stats_waiters:
                self._stats_waiters.remove(future)

    async def report(self, location: Point, velocity: Point) -> None:
        """Move the subscriber and (best-effort) report the position."""
        self.mobile.location = location
        self.mobile.velocity = velocity
        await self._send_quietly(
            LocationReport(self.mobile.subscription.sub_id, location, velocity)
        )

    async def resync_now(self) -> None:
        """Force a resync on the live connection (e.g. after a chaos run)."""
        await self._send_quietly(
            ResyncMessage(
                self.mobile.subscription.sub_id,
                self.mobile.location,
                self.mobile.velocity,
                self.mobile.received_ids(),
            )
        )

    async def force_reconnect(self) -> None:
        """Kill the live connection; the supervisor dials a new one."""
        self._close_writer(abort=True)

    async def _send_quietly(self, message) -> None:
        writer = self._writer
        if writer is None:
            return
        try:
            writer.write(encode_message(message))
            await writer.drain()
        except (ConnectionError, OSError):
            # the reader loop will notice and reconnect; the resync on
            # the fresh connection replays whatever this send was for
            self._close_writer(abort=True)

    def _close_writer(self, abort: bool = False) -> None:
        writer, self._writer = self._writer, None
        if writer is None:
            return
        try:
            if abort:
                writer.transport.abort()
            else:
                writer.close()
        except Exception:  # pragma: no cover - platform noise
            pass

    # ------------------------------------------------------------------
    # Supervisor
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        attempt = 0
        while not self._stopping:
            self._session_ok = False
            try:
                await self._session()
            except asyncio.CancelledError:
                raise
            except Exception:
                # resets, timeouts, truncation, decode errors from a
                # corrupted push... every network failure funnels into
                # the same answer: back off and dial again
                logger.debug("subscriber session failed; reconnecting", exc_info=True)
            finally:
                self._connected.clear()
                self._region_received.clear()
                self._close_writer()
                self.mobile.reset_connection()
            if self._stopping:
                break
            # a session that got as far as a region push earns a fresh
            # backoff schedule; repeated failures keep escalating
            attempt = 0 if self._session_ok else attempt + 1
            self.reconnects += 1
            await asyncio.sleep(self.policy.delay_for(attempt, self.rng))

    async def _session(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._writer = writer
        self.connections += 1
        writer.write(
            encode_message(
                subscribe_message_for(
                    self.mobile.subscription, self.mobile.location,
                    self.mobile.velocity,
                )
            )
        )
        if self.connections > 1:
            # reconnect: reconcile the server against what actually
            # arrived before the old connection died
            writer.write(
                encode_message(
                    ResyncMessage(
                        self.mobile.subscription.sub_id,
                        self.mobile.location,
                        self.mobile.velocity,
                        self.mobile.received_ids(),
                    )
                )
            )
        await writer.drain()
        self._connected.set()
        heartbeats = asyncio.ensure_future(self._heartbeat_loop(writer))
        try:
            while True:
                frame = await asyncio.wait_for(read_frame(reader), self.read_timeout)
                if frame is None:
                    return  # server closed cleanly
                self._apply(decode_message(frame))
        finally:
            heartbeats.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await heartbeats

    async def _heartbeat_loop(self, writer: asyncio.StreamWriter) -> None:
        seq = 0
        sub_id = self.mobile.subscription.sub_id
        try:
            while True:
                await asyncio.sleep(self.heartbeat_interval)
                seq += 1
                writer.write(encode_message(HeartbeatMessage(sub_id, seq)))
                await writer.drain()
        except (ConnectionError, OSError):
            return  # the reader loop surfaces the failure

    def _apply(self, message) -> None:
        if isinstance(message, NotificationMessage):
            self.mobile.receive_notification(
                Event(message.event_id, dict(message.attributes), message.location),
                message.seq,
            )
        elif isinstance(message, SafeRegionPush):
            self.regions_received += 1
            self._session_ok = True
            self._region_received.set()
            if self.grid is not None:
                self.mobile.receive_region(region_from_push(message, self.grid))
        elif isinstance(message, SafeRegionDelta):
            self.deltas_received += 1
            if self.grid is not None:
                # False (no region held — e.g. the delta raced a
                # reconnect) is safe to ignore: a region-less client
                # reports immediately and resyncs into a full push
                self.mobile.apply_region_delta(cells_from_delta(message, self.grid))
        elif isinstance(message, HeartbeatMessage):
            self.heartbeats_acked += 1
        elif isinstance(message, StatsSnapshot):
            for future in self._stats_waiters:
                if not future.done():
                    future.set_result(message)
                    break
        elif isinstance(message, LocationPing):
            writer = self._writer
            if writer is not None:
                location, velocity = self.mobile.answer_ping()
                writer.write(
                    encode_message(
                        LocationReport(
                            self.mobile.subscription.sub_id, location, velocity
                        )
                    )
                )
