"""Elaps over TCP: the wire protocol served on a real socket.

The simulation drives the server through in-process callbacks; this
module exposes the same server as a network service so that real clients
(mobile devices, publishers) can speak the binary protocol of
:mod:`repro.system.protocol` over TCP:

* **subscribers** connect, send a :class:`SubscribeMessage`, receive the
  already-matching events and their first :class:`SafeRegionPush`, then
  report with :class:`LocationReport` whenever they leave the region;
  notifications and new regions are pushed down the same connection;
* **publishers** connect and send :class:`EventPublishMessage` frames;
  the server stamps arrival times from its own clock and fans out
  notifications to the affected subscriber connections.

One simplification versus the paper's synchronous ping: when an arriving
event lands in a subscriber's impact region, the server answers the
"ping" from the subscriber's most recent report instead of blocking the
publish on a network round-trip (clients report whenever they leave
their safe region, so the freshness guarantee is the same as the
simulation's: one report round per region exit).  A
:class:`~repro.system.protocol.LocationPing` is still pushed so the
client knows to report promptly.

The layer assumes a hostile network (DESIGN.md §8).  ``read_frame``
distinguishes clean EOF from peer resets and truncated streams; the
server enforces per-connection read timeouts and a frame-length cap,
echoes client heartbeats, and degrades gracefully on malformed frames
(count in :class:`~repro.system.metrics.CommunicationStats`, drop the
connection — never the event loop).  :class:`ResilientElapsClient` is
the subscriber built for that network: heartbeat keepalive, reconnect
with exponential backoff + jitter, and resubscribe + resync after every
reconnect so deliveries stay exactly-once end to end.

The implementation is a single-threaded ``asyncio`` server; the wrapped
:class:`~repro.system.ElapsServer` is not thread-safe and all handling
runs on the event loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import logging
import math
import random
import struct
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..expressions import Event, Subscription
from ..geometry import Grid, Point
from .client import MobileClient
from .protocol import (
    EventPublishBatchMessage,
    EventPublishMessage,
    HeartbeatMessage,
    LocationPing,
    LocationReport,
    NotificationMessage,
    ResyncMessage,
    SafeRegionDelta,
    SafeRegionPush,
    StatsRequest,
    StatsSnapshot,
    SubscribeMessage,
    UnsubscribeMessage,
    cells_from_delta,
    decode_message,
    encode_message,
    notification_for,
    region_delta_for,
    region_from_push,
    region_push_for,
    stats_snapshot_for,
)
from .config import Transport
from .server import ElapsServer

logger = logging.getLogger(__name__)

_FRAME_HEADER = ">BI"
_HEADER_SIZE = struct.calcsize(_FRAME_HEADER)

#: upper bound on a frame's declared payload length; anything larger is
#: treated as a framing error (a corrupted length field would otherwise
#: stall the reader for gigabytes)
MAX_FRAME_LENGTH = 1 << 24


class FrameError(Exception):
    """The byte stream violated the framing protocol."""


class TruncatedFrameError(FrameError):
    """The peer vanished mid-frame (partial header or payload)."""


async def read_frame(
    reader: asyncio.StreamReader, max_length: int = MAX_FRAME_LENGTH
) -> Optional[bytes]:
    """Read one length-prefixed frame; None on a clean EOF.

    Failure modes are kept distinct so callers can account for them:

    * clean EOF (peer closed between frames) returns ``None``;
    * EOF inside a frame raises :class:`TruncatedFrameError`;
    * a declared length beyond ``max_length`` raises :class:`FrameError`;
    * a peer reset propagates as :class:`ConnectionResetError` instead of
      being conflated with a graceful disconnect.
    """
    try:
        header = await reader.readexactly(_HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise TruncatedFrameError(
                f"stream ended after {len(exc.partial)} header bytes"
            ) from exc
        return None
    (_, length) = struct.unpack(_FRAME_HEADER, header)
    if length > max_length:
        raise FrameError(f"declared payload of {length} bytes exceeds {max_length}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrameError(
            f"stream ended {length - len(exc.partial)} bytes short of a payload"
        ) from exc
    return header + payload


class TCPTransport(Transport):
    """The TCP layer's client-facing seam: frames over the sockets.

    Regions and deltas are encoded and pushed best-effort to the
    subscriber's live connection; the location ping is answered from the
    last reported position (a TCP client is not synchronously pingable —
    it reports when it leaves its region, exactly the paper's protocol).
    """

    def __init__(self, tcp_server: "ElapsTCPServer") -> None:
        self._tcp = tcp_server

    def ship_region(self, sub_id, region) -> None:
        """Frame and push a full safe region to the live connection."""
        self._tcp._push_region(sub_id, region)

    def ship_delta(self, sub_id, removed, region) -> None:
        """Frame and push a repair delta to the live connection."""
        self._tcp._push_delta(sub_id, removed, region)

    def locate(self, sub_id):
        """The last position the subscriber reported over the wire."""
        return self._tcp._last_known_location(sub_id)


class ElapsTCPServer:
    """Serve an :class:`ElapsServer` (or a
    :class:`~repro.system.sharding.ShardedElapsServer`) on a TCP port."""

    def __init__(
        self,
        server: ElapsServer,
        host: str = "127.0.0.1",
        port: int = 0,
        timestamp_seconds: float = 5.0,
        *,
        read_timeout: Optional[float] = 30.0,
        write_timeout: Optional[float] = 10.0,
        max_frame_length: int = MAX_FRAME_LENGTH,
        retain_subscribers: bool = False,
    ) -> None:
        if timestamp_seconds <= 0:
            raise ValueError(f"timestamp length must be positive: {timestamp_seconds}")
        self.server = server
        self.host = host
        self.port = port
        self.timestamp_seconds = timestamp_seconds
        #: a connection silent for longer than this is presumed dead and
        #: reaped (clients heartbeat well inside it); None disables
        self.read_timeout = read_timeout
        self.write_timeout = write_timeout
        self.max_frame_length = max_frame_length
        #: with True, a dropped connection keeps its subscriber records
        #: so a reconnecting client can resubscribe/resync into them; the
        #: default preserves the original semantics (disconnect means
        #: unsubscribe)
        self.retain_subscribers = retain_subscribers
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._connections: set = set()
        self._connection_tasks: set = set()
        self._event_ids = itertools.count(1)
        self._started_at = time.monotonic()
        self._tcp_server: Optional[asyncio.base_events.Server] = None
        # everything the wrapped server ships goes out over the sockets
        server.transport = TCPTransport(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._tcp_server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, close every connection, wait for handlers.

        Handlers are unblocked by closing their transports rather than
        cancelled: an externally cancelled client_connected task trips
        the asyncio-streams done callback (which surfaces the
        cancellation to the loop exception handler on some Pythons), and
        a clean EOF exercises exactly the disconnect path the handlers
        already own.
        """
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        self._writers.clear()
        pending = [task for task in self._connection_tasks if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=5)

    def now(self) -> int:
        """The server clock in timestamps since start."""
        return int((time.monotonic() - self._started_at) / self.timestamp_seconds)

    # ------------------------------------------------------------------
    # Server-transport plumbing
    # ------------------------------------------------------------------
    def _last_known_location(self, sub_id: int):
        record = self.server.subscribers[sub_id]
        return record.location, record.velocity

    def _push_region(self, sub_id: int, region) -> None:
        self._push_to(sub_id, encode_message(region_push_for(sub_id, region)))

    def _push_delta(self, sub_id: int, removed, region) -> None:
        """Ship a repair as a delta frame (the full region stays home).

        The delta only makes sense against the region the client already
        holds; with no live connection the frame is dropped, exactly like
        a full push would be, and the client's reconnect resync ships a
        fresh full region anyway.
        """
        self._push_to(
            sub_id, encode_message(region_delta_for(sub_id, self.server.grid, removed))
        )

    def _push_notifications(self, notifications) -> None:
        for notification in notifications:
            self._push_to(
                notification.sub_id,
                encode_message(
                    notification_for(
                        notification.sub_id, notification.event, notification.seq
                    )
                ),
            )

    def _push_to(self, sub_id: int, frame: bytes) -> None:
        """Best-effort write to a subscriber's connection.

        A dying transport must not take the publish path down with it;
        the loss is healed by the client's next resync.
        """
        writer = self._writers.get(sub_id)
        if writer is None:
            return
        try:
            writer.write(frame)
        except Exception:  # pragma: no cover - transport-dependent
            logger.debug("push to subscriber %d failed", sub_id, exc_info=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection_subs: set = set()
        metrics = self.server.metrics
        tracer = self.server.tracer
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        self._connections.add(writer)
        try:
            while True:
                try:
                    # the "read" stage includes the wait for the peer's
                    # next frame, so its histogram is the inter-frame
                    # arrival picture, not pure parsing cost
                    with tracer.span("read"):
                        frame = await asyncio.wait_for(
                            read_frame(reader, self.max_frame_length),
                            self.read_timeout,
                        )
                except asyncio.TimeoutError:
                    metrics.read_timeouts += 1
                    break
                except ConnectionResetError:
                    metrics.connection_resets += 1
                    break
                except FrameError:
                    metrics.malformed_frames += 1
                    break
                if frame is None:
                    break
                try:
                    with tracer.span("decode"):
                        message = decode_message(frame)
                except Exception:
                    # corrupted payload (bad tag, short buffer, garbage
                    # unicode, unknown type...): count it and cut the
                    # connection — the stream can no longer be trusted
                    metrics.malformed_frames += 1
                    break
                if not self._message_sane(message):
                    metrics.malformed_frames += 1
                    break
                try:
                    with tracer.span("dispatch"):
                        self._dispatch(message, writer, connection_subs)
                    with tracer.span("drain"):
                        await asyncio.wait_for(writer.drain(), self.write_timeout)
                except (ConnectionResetError, BrokenPipeError):
                    metrics.connection_resets += 1
                    break
                except asyncio.TimeoutError:
                    # a drain that cannot flush is a stalled *peer*, not a
                    # silent one; counting it as a read timeout hid every
                    # backpressure incident inside the idle-connection tally
                    metrics.write_timeouts += 1
                    break
        except Exception:  # graceful degradation: never crash the loop
            logger.exception("connection handler failed; dropping connection")
        finally:
            for sub_id in connection_subs:
                # a reconnected client may already own a fresh connection;
                # only tear down state that still belongs to this one
                if self._writers.get(sub_id) is not writer:
                    continue
                self._writers.pop(sub_id, None)
                if not self.retain_subscribers and sub_id in self.server.subscribers:
                    self.server.unsubscribe(sub_id)
            self._connections.discard(writer)
            self._connection_tasks.discard(task)
            writer.close()

    def _message_sane(self, message) -> bool:
        """Semantic bounds on network input.

        Decoding only proves the bytes parse; a corrupted frame can
        still carry poison — a radius of ``1e308`` would iterate region
        construction until the heat death of the universe, a NaN
        coordinate breaks cell addressing.  Geometry must be finite and
        the radius must fit inside the served space.
        """

        def sane_point(p: Point) -> bool:
            """Both coordinates finite (no NaN/inf cell addressing)."""
            return math.isfinite(p.x) and math.isfinite(p.y)

        space = self.server.grid.space
        diagonal = math.hypot(space.width, space.height)
        if isinstance(message, SubscribeMessage):
            return (
                sane_point(message.location)
                and sane_point(message.velocity)
                and math.isfinite(message.radius)
                and 0 < message.radius <= diagonal
            )
        if isinstance(message, (LocationReport, ResyncMessage)):
            return sane_point(message.location) and sane_point(message.velocity)
        if isinstance(message, EventPublishMessage):
            return sane_point(message.location)
        if isinstance(message, EventPublishBatchMessage):
            return all(sane_point(event.location) for event in message.events)
        return True

    def _dispatch(
        self, message, writer: asyncio.StreamWriter, connection_subs: set
    ) -> None:
        """Apply one decoded frame to the wrapped server."""
        metrics = self.server.metrics
        if isinstance(message, SubscribeMessage):
            self._writers[message.sub_id] = writer
            connection_subs.add(message.sub_id)
            subscription = Subscription(
                message.sub_id, message.expression, message.radius
            )
            notifications, _ = self.server.subscribe(
                subscription, message.location, message.velocity, self.now()
            )
            # the initial region push went out via the region sink;
            # deliver the already-matching events
            self._push_notifications(notifications)
        elif isinstance(message, LocationReport):
            if message.sub_id in self.server.subscribers:
                notifications, _ = self.server.report_location(
                    message.sub_id, message.location, message.velocity, self.now()
                )
                self._push_notifications(notifications)
        elif isinstance(message, ResyncMessage):
            if message.sub_id in self.server.subscribers:
                self._writers[message.sub_id] = writer
                connection_subs.add(message.sub_id)
                notifications, _ = self.server.resync(
                    message.sub_id,
                    message.location,
                    message.velocity,
                    message.received,
                    self.now(),
                )
                self._push_notifications(notifications)
        elif isinstance(message, HeartbeatMessage):
            metrics.heartbeats += 1
            writer.write(encode_message(message))
        elif isinstance(message, StatsRequest):
            # observability pull: answer with a point-in-time copy of the
            # whole registry on the requesting connection
            writer.write(encode_message(stats_snapshot_for(self.server.merged_registry())))
        elif isinstance(message, UnsubscribeMessage):
            if message.sub_id in self.server.subscribers:
                self.server.unsubscribe(message.sub_id)
            self._writers.pop(message.sub_id, None)
            connection_subs.discard(message.sub_id)
        elif isinstance(message, EventPublishMessage):
            now = self.now()
            self.server.expire_due_events(now)
            notifications = self.server.publish(self._event_from(message, now), now)
            self._push_notifications(notifications)
        elif isinstance(message, EventPublishBatchMessage):
            now = self.now()
            self.server.expire_due_events(now)
            events = [self._event_from(item, now) for item in message.events]
            notifications = self.server.publish_batch(events, now)
            self._push_notifications(notifications)

    def _event_from(self, message: EventPublishMessage, now: int) -> Event:
        """A server-side event for one publish, with a collision-free id."""
        return Event(
            next(self._event_ids) << 32 | (message.event_id & 0xFFFFFFFF),
            dict(message.attributes),
            message.location,
            arrived_at=now,
            expires_at=None if message.ttl <= 0 else now + message.ttl,
        )


class ElapsNetworkClient:
    """A minimal subscriber/publisher client for :class:`ElapsTCPServer`."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        """Open the TCP connection."""
        self.reader, self.writer = await asyncio.open_connection(self.host, self.port)

    async def close(self) -> None:
        """Close the connection."""
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except ConnectionResetError:  # pragma: no cover - platform noise
                pass

    async def send(self, message) -> None:
        """Send one protocol message."""
        assert self.writer is not None, "connect() first"
        self.writer.write(encode_message(message))
        await self.writer.drain()

    async def receive(self, timeout: float = 5.0):
        """Receive one pushed message (decoded), or None on EOF."""
        assert self.reader is not None, "connect() first"
        frame = await asyncio.wait_for(read_frame(self.reader), timeout)
        if frame is None:
            return None
        return decode_message(frame)

    # convenience wrappers ------------------------------------------------
    async def subscribe(self, subscription, location: Point, velocity: Point):
        """Subscribe and collect the pushes until the first region arrives."""
        await self.send(
            SubscribeMessage(
                subscription.sub_id,
                subscription.radius,
                subscription.expression,
                location,
                velocity,
            )
        )
        received = []
        while True:
            message = await self.receive()
            received.append(message)
            if message is None or message.TYPE == 5:  # SafeRegionPush
                return received

    async def publish(self, event_id: int, attributes: dict, location: Point,
                      ttl: int = 0) -> None:
        """Publish one event."""
        await self.send(
            EventPublishMessage(
                event_id, location, tuple(sorted(attributes.items())), ttl
            )
        )

    async def request_stats(self, timeout: float = 5.0) -> Optional[StatsSnapshot]:
        """Request a :class:`StatsSnapshot`, skipping unrelated pushes.

        Notifications or region pushes already in flight on this
        connection are consumed (and discarded) until the snapshot
        arrives; a dedicated metrics connection sees none.  Returns
        ``None`` if the server closes first.
        """
        await self.send(StatsRequest())
        while True:
            message = await self.receive(timeout)
            if message is None or isinstance(message, StatsSnapshot):
                return message

    async def publish_batch(self, events) -> None:
        """Publish a burst as one frame (the batched fast path).

        ``events`` is an iterable of ``(event_id, attributes, location)``
        or ``(event_id, attributes, location, ttl)`` tuples.
        """
        items = []
        for entry in events:
            event_id, attributes, location = entry[:3]
            ttl = entry[3] if len(entry) > 3 else 0
            items.append(
                EventPublishMessage(
                    event_id, location, tuple(sorted(attributes.items())), ttl
                )
            )
        await self.send(EventPublishBatchMessage(tuple(items)))


# ----------------------------------------------------------------------
# Resilient subscriber
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReconnectPolicy:
    """Exponential backoff with jitter for the reconnect loop."""

    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    #: extra uniform fraction of the delay, decorrelating client herds
    jitter: float = 0.5

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """The sleep before reconnect ``attempt`` (0-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        return raw * (1.0 + self.jitter * rng.random())


class ResilientElapsClient:
    """A subscriber that survives resets, drops, and silent networks.

    Wraps a :class:`~repro.system.client.MobileClient` (the durable
    state: subscription, location, received events) in a supervised
    connection loop:

    * every connection starts with a :class:`SubscribeMessage`; every
      *re*-connection follows it with a :class:`ResyncMessage` carrying
      the ids of all events the client actually holds, so the server can
      redeliver what the dead connection swallowed without ever
      double-shipping;
    * a heartbeat frame goes out every ``heartbeat_interval`` seconds and
      the server echoes it, so a connection with no frame inside
      ``read_timeout`` is declared dead;
    * any connection failure (reset, truncation, timeout, refused
      connect) feeds the :class:`ReconnectPolicy` backoff and the loop
      tries again; delivered events are deduped by id, so the
      application sees each event at most once no matter how the
      network behaves.
    """

    def __init__(
        self,
        host: str,
        port: int,
        subscription: Subscription,
        location: Point,
        velocity: Optional[Point] = None,
        *,
        grid: Optional[Grid] = None,
        policy: Optional[ReconnectPolicy] = None,
        heartbeat_interval: float = 1.0,
        read_timeout: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.mobile = MobileClient(
            subscription, location, velocity or Point(0.0, 0.0)
        )
        #: with a grid, safe-region pushes are decoded into real regions
        #: so ``mobile.must_report`` works; without one they are counted
        self.grid = grid
        self.policy = policy or ReconnectPolicy()
        self.heartbeat_interval = heartbeat_interval
        self.read_timeout = (
            read_timeout if read_timeout is not None else heartbeat_interval * 4
        )
        self.rng = rng or random.Random()
        self.connections = 0
        self.reconnects = 0
        self.regions_received = 0
        self.deltas_received = 0
        self.heartbeats_acked = 0
        self._writer: Optional[asyncio.StreamWriter] = None
        self._task: Optional[asyncio.Task] = None
        self._stopping = False
        self._connected = asyncio.Event()
        self._session_ok = False

    # ------------------------------------------------------------------
    # Convenience views
    # ------------------------------------------------------------------
    @property
    def events(self) -> List[Event]:
        """Every event delivered to the application (deduped)."""
        return self.mobile.received_events

    @property
    def duplicates_suppressed(self) -> int:
        """Redeliveries the dedupe filter absorbed."""
        return self.mobile.duplicates_suppressed

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the connection supervisor."""
        self._task = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        """Stop reconnecting and close the live connection, if any."""
        self._stopping = True
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None
        self._close_writer()

    async def wait_connected(self, timeout: float = 5.0) -> None:
        """Block until a connection is up and the subscribe was sent."""
        await asyncio.wait_for(self._connected.wait(), timeout)

    # ------------------------------------------------------------------
    # Application actions
    # ------------------------------------------------------------------
    async def report(self, location: Point, velocity: Point) -> None:
        """Move the subscriber and (best-effort) report the position."""
        self.mobile.location = location
        self.mobile.velocity = velocity
        await self._send_quietly(
            LocationReport(self.mobile.subscription.sub_id, location, velocity)
        )

    async def resync_now(self) -> None:
        """Force a resync on the live connection (e.g. after a chaos run)."""
        await self._send_quietly(
            ResyncMessage(
                self.mobile.subscription.sub_id,
                self.mobile.location,
                self.mobile.velocity,
                self.mobile.received_ids(),
            )
        )

    async def force_reconnect(self) -> None:
        """Kill the live connection; the supervisor dials a new one."""
        self._close_writer(abort=True)

    async def _send_quietly(self, message) -> None:
        writer = self._writer
        if writer is None:
            return
        try:
            writer.write(encode_message(message))
            await writer.drain()
        except (ConnectionError, OSError):
            # the reader loop will notice and reconnect; the resync on
            # the fresh connection replays whatever this send was for
            self._close_writer(abort=True)

    def _close_writer(self, abort: bool = False) -> None:
        writer, self._writer = self._writer, None
        if writer is None:
            return
        try:
            if abort:
                writer.transport.abort()
            else:
                writer.close()
        except Exception:  # pragma: no cover - platform noise
            pass

    # ------------------------------------------------------------------
    # Supervisor
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        attempt = 0
        while not self._stopping:
            self._session_ok = False
            try:
                await self._session()
            except asyncio.CancelledError:
                raise
            except Exception:
                # resets, timeouts, truncation, decode errors from a
                # corrupted push... every network failure funnels into
                # the same answer: back off and dial again
                logger.debug("subscriber session failed; reconnecting", exc_info=True)
            finally:
                self._connected.clear()
                self._close_writer()
                self.mobile.reset_connection()
            if self._stopping:
                break
            # a session that got as far as a region push earns a fresh
            # backoff schedule; repeated failures keep escalating
            attempt = 0 if self._session_ok else attempt + 1
            self.reconnects += 1
            await asyncio.sleep(self.policy.delay_for(attempt, self.rng))

    async def _session(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._writer = writer
        self.connections += 1
        subscription = self.mobile.subscription
        writer.write(
            encode_message(
                SubscribeMessage(
                    subscription.sub_id,
                    subscription.radius,
                    subscription.expression,
                    self.mobile.location,
                    self.mobile.velocity,
                )
            )
        )
        if self.connections > 1:
            # reconnect: reconcile the server against what actually
            # arrived before the old connection died
            writer.write(
                encode_message(
                    ResyncMessage(
                        subscription.sub_id,
                        self.mobile.location,
                        self.mobile.velocity,
                        self.mobile.received_ids(),
                    )
                )
            )
        await writer.drain()
        self._connected.set()
        heartbeats = asyncio.ensure_future(self._heartbeat_loop(writer))
        try:
            while True:
                frame = await asyncio.wait_for(read_frame(reader), self.read_timeout)
                if frame is None:
                    return  # server closed cleanly
                self._apply(decode_message(frame))
        finally:
            heartbeats.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await heartbeats

    async def _heartbeat_loop(self, writer: asyncio.StreamWriter) -> None:
        seq = 0
        sub_id = self.mobile.subscription.sub_id
        try:
            while True:
                await asyncio.sleep(self.heartbeat_interval)
                seq += 1
                writer.write(encode_message(HeartbeatMessage(sub_id, seq)))
                await writer.drain()
        except (ConnectionError, OSError):
            return  # the reader loop surfaces the failure

    def _apply(self, message) -> None:
        if isinstance(message, NotificationMessage):
            self.mobile.receive_notification(
                Event(message.event_id, dict(message.attributes), message.location),
                message.seq,
            )
        elif isinstance(message, SafeRegionPush):
            self.regions_received += 1
            self._session_ok = True
            if self.grid is not None:
                self.mobile.receive_region(region_from_push(message, self.grid))
        elif isinstance(message, SafeRegionDelta):
            self.deltas_received += 1
            if self.grid is not None:
                # False (no region held — e.g. the delta raced a
                # reconnect) is safe to ignore: a region-less client
                # reports immediately and resyncs into a full push
                self.mobile.apply_region_delta(cells_from_delta(message, self.grid))
        elif isinstance(message, HeartbeatMessage):
            self.heartbeats_acked += 1
        elif isinstance(message, LocationPing):
            writer = self._writer
            if writer is not None:
                location, velocity = self.mobile.answer_ping()
                writer.write(
                    encode_message(
                        LocationReport(
                            self.mobile.subscription.sub_id, location, velocity
                        )
                    )
                )
