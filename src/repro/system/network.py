"""Elaps over TCP: the wire protocol served on a real socket.

The simulation drives the server through in-process callbacks; this
module exposes the same server as a network service so that real clients
(mobile devices, publishers) can speak the binary protocol of
:mod:`repro.system.protocol` over TCP:

* **subscribers** connect, send a :class:`SubscribeMessage`, receive the
  already-matching events and their first :class:`SafeRegionPush`, then
  report with :class:`LocationReport` whenever they leave the region;
  notifications and new regions are pushed down the same connection;
* **publishers** connect and send :class:`EventPublishMessage` frames;
  the server stamps arrival times from its own clock and fans out
  notifications to the affected subscriber connections.

One simplification versus the paper's synchronous ping: when an arriving
event lands in a subscriber's impact region, the server answers the
"ping" from the subscriber's most recent report instead of blocking the
publish on a network round-trip (clients report whenever they leave
their safe region, so the freshness guarantee is the same as the
simulation's: one report round per region exit).  A
:class:`~repro.system.protocol.LocationPing` is still pushed so the
client knows to report promptly.

The implementation is a single-threaded ``asyncio`` server; the wrapped
:class:`~repro.system.ElapsServer` is not thread-safe and all handling
runs on the event loop.
"""

from __future__ import annotations

import asyncio
import itertools
import struct
import time
from typing import Dict, Optional

from ..expressions import Event
from ..geometry import Point
from .protocol import (
    EventPublishMessage,
    LocationReport,
    SubscribeMessage,
    UnsubscribeMessage,
    decode_message,
    encode_message,
    notification_for,
    region_push_for,
)
from .server import ElapsServer

_FRAME_HEADER = ">BI"
_HEADER_SIZE = struct.calcsize(_FRAME_HEADER)


async def read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one length-prefixed frame; None on a clean EOF."""
    try:
        header = await reader.readexactly(_HEADER_SIZE)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    (_, length) = struct.unpack(_FRAME_HEADER, header)
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    return header + payload


class ElapsTCPServer:
    """Serve an :class:`ElapsServer` on a TCP port."""

    def __init__(
        self,
        server: ElapsServer,
        host: str = "127.0.0.1",
        port: int = 0,
        timestamp_seconds: float = 5.0,
    ) -> None:
        if timestamp_seconds <= 0:
            raise ValueError(f"timestamp length must be positive: {timestamp_seconds}")
        self.server = server
        self.host = host
        self.port = port
        self.timestamp_seconds = timestamp_seconds
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._event_ids = itertools.count(1)
        self._started_at = time.monotonic()
        self._tcp_server: Optional[asyncio.base_events.Server] = None
        # the wrapped server's callbacks feed the connected clients
        server.locator = self._last_known_location
        server.region_sink = self._push_region

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._tcp_server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting and close every connection."""
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        for writer in list(self._writers.values()):
            writer.close()
        self._writers.clear()

    def now(self) -> int:
        """The server clock in timestamps since start."""
        return int((time.monotonic() - self._started_at) / self.timestamp_seconds)

    # ------------------------------------------------------------------
    # Server-callback plumbing
    # ------------------------------------------------------------------
    def _last_known_location(self, sub_id: int):
        record = self.server.subscribers[sub_id]
        return record.location, record.velocity

    def _push_region(self, sub_id: int, region) -> None:
        writer = self._writers.get(sub_id)
        if writer is not None:
            writer.write(encode_message(region_push_for(sub_id, region)))

    def _push_notifications(self, notifications) -> None:
        for notification in notifications:
            writer = self._writers.get(notification.sub_id)
            if writer is not None:
                writer.write(
                    encode_message(
                        notification_for(notification.sub_id, notification.event)
                    )
                )

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection_subs: set = set()
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                message = decode_message(frame)
                if isinstance(message, SubscribeMessage):
                    self._writers[message.sub_id] = writer
                    connection_subs.add(message.sub_id)
                    from ..expressions import Subscription

                    subscription = Subscription(
                        message.sub_id, message.expression, message.radius
                    )
                    notifications, _ = self.server.subscribe(
                        subscription, message.location, message.velocity, self.now()
                    )
                    # the initial region push went out via the region sink;
                    # deliver the already-matching events
                    self._push_notifications(notifications)
                elif isinstance(message, LocationReport):
                    if message.sub_id in self.server.subscribers:
                        notifications, _ = self.server.report_location(
                            message.sub_id, message.location, message.velocity, self.now()
                        )
                        self._push_notifications(notifications)
                elif isinstance(message, UnsubscribeMessage):
                    if message.sub_id in self.server.subscribers:
                        self.server.unsubscribe(message.sub_id)
                    self._writers.pop(message.sub_id, None)
                    connection_subs.discard(message.sub_id)
                elif isinstance(message, EventPublishMessage):
                    now = self.now()
                    event = Event(
                        next(self._event_ids) << 32 | (message.event_id & 0xFFFFFFFF),
                        dict(message.attributes),
                        message.location,
                        arrived_at=now,
                        expires_at=None if message.ttl <= 0 else now + message.ttl,
                    )
                    self.server.expire_due_events(now)
                    notifications = self.server.publish(event, now)
                    self._push_notifications(notifications)
                await writer.drain()
        finally:
            for sub_id in connection_subs:
                if sub_id in self.server.subscribers:
                    self.server.unsubscribe(sub_id)
                self._writers.pop(sub_id, None)
            writer.close()


class ElapsNetworkClient:
    """A minimal subscriber/publisher client for :class:`ElapsTCPServer`."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        """Open the TCP connection."""
        self.reader, self.writer = await asyncio.open_connection(self.host, self.port)

    async def close(self) -> None:
        """Close the connection."""
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except ConnectionResetError:  # pragma: no cover - platform noise
                pass

    async def send(self, message) -> None:
        """Send one protocol message."""
        assert self.writer is not None, "connect() first"
        self.writer.write(encode_message(message))
        await self.writer.drain()

    async def receive(self, timeout: float = 5.0):
        """Receive one pushed message (decoded), or None on EOF."""
        assert self.reader is not None, "connect() first"
        frame = await asyncio.wait_for(read_frame(self.reader), timeout)
        if frame is None:
            return None
        return decode_message(frame)

    # convenience wrappers ------------------------------------------------
    async def subscribe(self, subscription, location: Point, velocity: Point):
        """Subscribe and collect the pushes until the first region arrives."""
        await self.send(
            SubscribeMessage(
                subscription.sub_id,
                subscription.radius,
                subscription.expression,
                location,
                velocity,
            )
        )
        received = []
        while True:
            message = await self.receive()
            received.append(message)
            if message is None or message.TYPE == 5:  # SafeRegionPush
                return received

    async def publish(self, event_id: int, attributes: dict, location: Point,
                      ttl: int = 0) -> None:
        """Publish one event."""
        await self.send(
            EventPublishMessage(
                event_id, location, tuple(sorted(attributes.items())), ttl
            )
        )
