"""One-call experiment runner used by the examples and every benchmark.

An :class:`ExperimentConfig` captures the paper's evaluation knobs
(Table 2) plus the scaled-down sizes of this reproduction; ``run_experiment``
builds the whole stack — dataset, trajectories, indexes, server, simulation
— deterministically from the seed, runs it, and returns the per-subscriber
figures the paper plots.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..core import (
    GridMethod,
    IDGM,
    IGM,
    SafeRegionStrategy,
    SystemStats,
    VectorizedIDGM,
    VectorizedIGM,
    VoronoiMethod,
)
from ..datasets import FoursquareLikeGenerator, TwitterLikeGenerator
from ..geometry import Grid, Rect
from ..index import BEQTree, SubscriptionIndex
from ..trajectories import (
    RoadNetwork,
    SyntheticTrajectoryGenerator,
    TaxiTrajectoryGenerator,
)
from .config import ServerConfig
from .server import ElapsServer
from .config import RebalancePolicy
from .sharding import (
    ProcessExecutor,
    SerialExecutor,
    ShardedElapsServer,
    ThreadedExecutor,
)
from .simulation import Simulation, SimulationResult

#: strategy factory registry: name -> (max_cells -> strategy).  The
#: ``-vec`` variants run the array-backed construction core (DESIGN.md
#: §14), byte-identical to their scalar oracles.
STRATEGIES: Dict[str, Callable[[Optional[int]], SafeRegionStrategy]] = {
    "VM": lambda max_cells: VoronoiMethod(max_cells=max_cells),
    "GM": lambda max_cells: GridMethod(),
    "iGM": lambda max_cells: IGM(max_cells=max_cells),
    "idGM": lambda max_cells: IDGM(max_cells=max_cells),
    "iGM-vec": lambda max_cells: VectorizedIGM(max_cells=max_cells),
    "idGM-vec": lambda max_cells: VectorizedIDGM(max_cells=max_cells),
}

#: the incremental family, scalar and vectorized, for override handling
_INCREMENTAL_CLASSES = {
    "iGM": IGM,
    "idGM": IDGM,
    "iGM-vec": VectorizedIGM,
    "idGM-vec": VectorizedIDGM,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """The knobs of one communication-overhead experiment.

    Defaults mirror Table 2's bold values, scaled down for a pure-Python
    substrate (see DESIGN.md): the paper's 30M-event corpus becomes
    ``initial_events``, its 10,000 trajectories become ``subscribers``,
    its 1000 timestamps become ``timestamps``.
    """

    strategy: str = "iGM"
    dataset: str = "twitter"  # or "foursquare"
    movement: str = "synthetic"  # or "taxi"
    event_rate: float = 2.0  # f, events per timestamp
    speed: float = 60.0  # vs, metres per timestamp
    radius: float = 3000.0  # r, notification radius in metres
    initial_events: int = 20_000  # E, corpus size
    subscription_size: int = 3  # delta
    subscribers: int = 40
    timestamps: int = 250
    grid_n: int = 120  # N
    space_size: float = 50_000.0
    emax: int = 512  # BEQ-Tree leaf capacity
    event_ttl: Optional[int] = None
    matching_mode: str = "ondemand"
    max_cells: Optional[int] = 2500  # safe-region cap (deviation, DESIGN.md)
    seed: int = 7
    measure_bytes: bool = False
    stats_override: Optional[Callable[[int], SystemStats]] = None
    alpha: Optional[float] = None  # idGM direction weight override
    beta: Optional[float] = None  # termination threshold override (Fig 9)
    rate_schedule: Optional[Callable[[int], float]] = None  # dynamic f (Fig 10a)
    speed_schedule: Optional[Callable[[int], float]] = None  # dynamic vs (Fig 10b)
    oracle_rebuild: bool = False  # the "-opi" free-refresh oracle (Fig 10)
    use_impact_region: bool = True  # ablation: False pings on every match
    incremental_impact: bool = True  # ablation: Example 2 strips on/off
    repair: bool = False  # incremental safe-region repair (DESIGN.md §10)
    trace_spans: bool = True  # span tracer on the server's hot stages
    slow_span_seconds: Optional[float] = None  # log spans at/above this
    shards: int = 1  # spatial shards; > 1 builds a ShardedElapsServer
    shard_executor: str = "serial"  # "serial", "threaded", or "process"
    rebalance: bool = False  # load-adaptive boundary moves (DESIGN.md §15)

    def with_(self, **changes) -> "ExperimentConfig":
        """A copy of this configuration with fields replaced."""
        return dataclasses.replace(self, **changes)


def build_strategy(config: ExperimentConfig) -> SafeRegionStrategy:
    """Instantiate the configured strategy, honouring alpha/beta overrides."""
    name = config.strategy
    if name not in STRATEGIES:
        raise ValueError(f"unknown strategy {name!r}; pick one of {sorted(STRATEGIES)}")
    overridden = (
        config.alpha is not None
        or config.beta is not None
        or not config.incremental_impact
    )
    if name in _INCREMENTAL_CLASSES and overridden:
        cls = _INCREMENTAL_CLASSES[name]
        if name.startswith("iGM"):
            return cls(
                beta=config.beta if config.beta is not None else 1.0,
                max_cells=config.max_cells,
                incremental_impact=config.incremental_impact,
            )
        return cls(
            alpha=config.alpha if config.alpha is not None else 0.5,
            beta=config.beta if config.beta is not None else 1.0,
            max_cells=config.max_cells,
            incremental_impact=config.incremental_impact,
        )
    return STRATEGIES[name](config.max_cells)


def _build_generator(config: ExperimentConfig, space: Rect):
    if config.dataset == "twitter":
        return TwitterLikeGenerator(space, seed=config.seed)
    if config.dataset == "foursquare":
        return FoursquareLikeGenerator(space, seed=config.seed)
    raise ValueError(f"unknown dataset {config.dataset!r}")


def build_server(config: ExperimentConfig, journal=None):
    """Assemble a bare (un-bootstrapped) server for this configuration.

    Returns a single :class:`ElapsServer` or, when ``config.shards > 1``,
    a :class:`ShardedElapsServer` fleet — the same construction
    :func:`build_simulation` uses, exposed so trace replay can re-run a
    recorded workload under a different configuration.  ``journal``
    (a :class:`~repro.system.journal.JournalSpec`) turns on durability.
    """
    space = Rect(0.0, 0.0, config.space_size, config.space_size)
    grid = Grid(config.grid_n, space)
    generator = _build_generator(config, space)
    server_config = ServerConfig(
        matching_mode=config.matching_mode,
        initial_rate=config.event_rate,
        stats_override=config.stats_override,
        measure_bytes=config.measure_bytes,
        use_impact_region=config.use_impact_region,
        repair=config.repair,
        journal=journal,
    )
    if config.shards > 1:
        if config.shard_executor == "serial":
            executor = SerialExecutor()
        elif config.shard_executor == "threaded":
            executor = ThreadedExecutor(max_workers=config.shards)
        elif config.shard_executor == "process":
            executor = ProcessExecutor()
        else:
            raise ValueError(
                f"unknown shard executor {config.shard_executor!r}; "
                "pick 'serial', 'threaded', or 'process'"
            )
        server = ShardedElapsServer(
            grid,
            lambda: build_strategy(config),
            server_config,
            shards=config.shards,
            executor=executor,
            event_index_factory=lambda: BEQTree(space, emax=config.emax),
            subscription_index_factory=lambda: SubscriptionIndex(
                generator.frequency_hint()
            ),
            rebalance=RebalancePolicy() if config.rebalance else None,
        )
        tracers = [server.tracer] + [w.tracer for w in server.shard_servers]
    else:
        server = ElapsServer(
            grid,
            build_strategy(config),
            server_config,
            event_index=BEQTree(space, emax=config.emax),
            subscription_index=SubscriptionIndex(generator.frequency_hint()),
        )
        tracers = [server.tracer]
    for tracer in tracers:
        tracer.enabled = config.trace_spans
        tracer.slow_threshold = config.slow_span_seconds
    return server


def build_simulation(config: ExperimentConfig, wrap_server=None) -> Simulation:
    """Assemble the full Elaps stack for one experiment.

    ``wrap_server`` (server -> server) is applied before bootstrap, so a
    wrapper such as :class:`repro.testing.replay.TraceRecorder` observes
    every operation including the initial corpus load.
    """
    space = Rect(0.0, 0.0, config.space_size, config.space_size)
    generator = _build_generator(config, space)
    stream = generator.event_stream(start_id=config.initial_events, seed_offset=1)

    subscriptions = generator.subscriptions(
        config.subscribers, size=config.subscription_size, radius=config.radius
    )

    network = RoadNetwork(space, grid_size=12, seed=config.seed)
    if config.movement == "synthetic":
        trajectory_gen = SyntheticTrajectoryGenerator(
            network,
            speed=config.speed,
            seed=config.seed,
            speed_schedule=config.speed_schedule,
        )
    elif config.movement == "taxi":
        trajectory_gen = TaxiTrajectoryGenerator(
            network, base_speed=config.speed, seed=config.seed
        )
    else:
        raise ValueError(f"unknown movement {config.movement!r}")
    trajectories = trajectory_gen.trajectories(config.subscribers, config.timestamps + 1)

    server = build_server(config)
    if wrap_server is not None:
        server = wrap_server(server)
    server.bootstrap(generator.events(config.initial_events))
    return Simulation(
        server,
        subscriptions,
        trajectories,
        stream,
        event_rate=config.event_rate,
        event_ttl=config.event_ttl,
        rate_schedule=config.rate_schedule,
        oracle_rebuild=config.oracle_rebuild,
        oracle_signal=config.rate_schedule or config.speed_schedule,
    )


def run_experiment(config: ExperimentConfig) -> SimulationResult:
    """Build and run one experiment end to end."""
    simulation = build_simulation(config)
    return simulation.run(config.timestamps)
