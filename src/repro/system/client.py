"""The mobile client: the subscriber-side half of the protocol.

The client owns exactly three things (Section 3): its subscription, its
current safe region, and its GPS readings.  Its contract is minimal —
and it is the whole point of the safe-region machinery:

* while the current position stays inside the safe region, the client is
  **silent** (it may even disconnect);
* the moment the position leaves the region (or no region is held, or an
  empty region was received because the subscriber's own cell is unsafe),
  the client reports its location and velocity;
* when the server pings (an event arrived in the impact region), the
  client answers with its location;
* safe-region pushes replace the held region.

The client never sees events it was not notified about and never learns
the impact region — that stays on the server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set, Tuple

from ..core import SafeRegion
from ..expressions import Event, Subscription
from ..geometry import Point


@dataclass
class MobileClient:
    """Client-side state machine for one subscriber."""

    subscription: Subscription
    location: Point
    velocity: Point = field(default_factory=lambda: Point(0.0, 0.0))
    safe_region: Optional[SafeRegion] = None
    received_events: List[Event] = field(default_factory=list)
    reports_sent: int = 0
    #: ids of every event ever applied — the dedupe filter that makes
    #: redelivery after a resync idempotent, and the payload of a
    #: :class:`~repro.system.protocol.ResyncMessage`
    seen_event_ids: Set[int] = field(default_factory=set)
    #: notifications discarded because the event was already held
    #: (a lossy network redelivering, or a resync overlapping a push)
    duplicates_suppressed: int = 0
    #: highest per-subscriber delivery sequence number observed (0 until
    #: a sequenced notification arrives); the server stamps each fresh
    #: delivery with the next value, so a jump past ``last_seq + 1``
    #: means the dead connection swallowed a notification
    last_seq: int = 0
    #: sequence gaps observed (each one is a delivery the client knows
    #: it missed and will recover through resync)
    seq_gaps: int = 0

    # ------------------------------------------------------------------
    # Movement
    # ------------------------------------------------------------------
    def move_to(self, location: Point, velocity: Point) -> bool:
        """Advance one timestamp; returns True if a report is due.

        A report is due when no usable safe region is held or the new
        position left it — the client-side check of Section 3.
        """
        self.location = location
        self.velocity = velocity
        return self.must_report()

    def must_report(self) -> bool:
        """Client-side check: is the held safe region still usable here?"""
        region = self.safe_region
        if region is None or region.is_empty():
            return True
        return not region.contains_point(self.location)

    def report(self) -> tuple:
        """The (location, velocity) payload of a location report."""
        self.reports_sent += 1
        return self.location, self.velocity

    # ------------------------------------------------------------------
    # Server pushes
    # ------------------------------------------------------------------
    def receive_region(self, region: SafeRegion) -> None:
        """Install a pushed safe region."""
        self.safe_region = region

    def apply_region_delta(self, removed_cells) -> bool:
        """Shrink the held region by a server repair's removed cells.

        The delta counterpart of :meth:`receive_region`: the server
        carved cells out of the region this client holds and shipped
        only those cells.  Returns False when no region is held (a
        reconnecting client that dropped its region) — the delta is
        then discarded, which is safe because a region-less client
        reports every timestamp anyway and the resync path ships a
        fresh full region.
        """
        if self.safe_region is None:
            return False
        self.safe_region, _ = self.safe_region.subtract(removed_cells)
        return True

    def receive_notification(self, event: Event, seq: int = 0) -> bool:
        """Record a delivered event; False if it was a duplicate.

        At-most-once to the application: an event id seen before is
        suppressed, so a hostile network (or an overlapping resync) may
        redeliver freely without the client observing the event twice.
        A sequenced delivery (``seq > 0``) also advances ``last_seq``;
        jumps past the expected next value are counted as ``seq_gaps``.
        """
        if seq > 0:
            if self.last_seq and seq > self.last_seq + 1:
                self.seq_gaps += 1
            self.last_seq = max(self.last_seq, seq)
        if event.event_id in self.seen_event_ids:
            self.duplicates_suppressed += 1
            return False
        self.seen_event_ids.add(event.event_id)
        self.received_events.append(event)
        return True

    def receive_notifications(self, events: Iterable[Event]) -> int:
        """Apply a burst of notifications; returns how many were fresh.

        The batched counterpart of :meth:`receive_notification` (a
        ``publish_batch`` on the server can deliver several events to one
        subscriber at once); the same dedupe filter applies per event.
        """
        return sum(1 for event in events if self.receive_notification(event))

    def answer_ping(self) -> tuple:
        """The client's reply to a server location ping."""
        return self.location, self.velocity

    # ------------------------------------------------------------------
    # Reconnect support
    # ------------------------------------------------------------------
    def received_ids(self) -> Tuple[int, ...]:
        """The resync payload: every event id this client holds."""
        return tuple(sorted(self.seen_event_ids))

    def reset_connection(self) -> None:
        """Forget connection-scoped state after a lost connection.

        The held safe region may be stale (pushes can be lost while the
        connection was dying), so it is dropped — ``must_report`` then
        answers True and the reconnect path reports/resyncs immediately.
        Received events survive: they are the client's durable state.
        """
        self.safe_region = None
