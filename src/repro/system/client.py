"""The mobile client: the subscriber-side half of the protocol.

The client owns exactly three things (Section 3): its subscription, its
current safe region, and its GPS readings.  Its contract is minimal —
and it is the whole point of the safe-region machinery:

* while the current position stays inside the safe region, the client is
  **silent** (it may even disconnect);
* the moment the position leaves the region (or no region is held, or an
  empty region was received because the subscriber's own cell is unsafe),
  the client reports its location and velocity;
* when the server pings (an event arrived in the impact region), the
  client answers with its location;
* safe-region pushes replace the held region.

The client never sees events it was not notified about and never learns
the impact region — that stays on the server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core import SafeRegion
from ..expressions import Event, Subscription
from ..geometry import Point


@dataclass
class MobileClient:
    """Client-side state machine for one subscriber."""

    subscription: Subscription
    location: Point
    velocity: Point = field(default_factory=lambda: Point(0.0, 0.0))
    safe_region: Optional[SafeRegion] = None
    received_events: List[Event] = field(default_factory=list)
    reports_sent: int = 0

    # ------------------------------------------------------------------
    # Movement
    # ------------------------------------------------------------------
    def move_to(self, location: Point, velocity: Point) -> bool:
        """Advance one timestamp; returns True if a report is due.

        A report is due when no usable safe region is held or the new
        position left it — the client-side check of Section 3.
        """
        self.location = location
        self.velocity = velocity
        return self.must_report()

    def must_report(self) -> bool:
        """Client-side check: is the held safe region still usable here?"""
        region = self.safe_region
        if region is None or region.is_empty():
            return True
        return not region.contains_point(self.location)

    def report(self) -> tuple:
        """The (location, velocity) payload of a location report."""
        self.reports_sent += 1
        return self.location, self.velocity

    # ------------------------------------------------------------------
    # Server pushes
    # ------------------------------------------------------------------
    def receive_region(self, region: SafeRegion) -> None:
        """Install a pushed safe region."""
        self.safe_region = region

    def receive_notification(self, event: Event) -> None:
        """Record a delivered event."""
        self.received_events.append(event)

    def answer_ping(self) -> tuple:
        """The client's reply to a server location ping."""
        return self.location, self.velocity
