"""System layer: the Elaps server (Figure 6), the client/server
simulation, the experiment runner, and the metrics they report."""

from .client import MobileClient
from .config import (
    CallbackTransport,
    ClientConfig,
    NetworkConfig,
    RebalancePolicy,
    ServerConfig,
    Transport,
)
from .experiment import (
    ExperimentConfig,
    STRATEGIES,
    build_server,
    build_simulation,
    build_strategy,
    run_experiment,
)
from .faults import ChaosProxy, FaultConfig, FaultInjector, FaultKind, FaultStats
from .journal import (
    Journal,
    JournalCorruptionError,
    JournalError,
    JournalRecord,
    JournalSpec,
)
from .metrics import CommunicationStats
from .network import (
    ElapsNetworkClient,
    ElapsTCPServer,
    FrameError,
    FrameKind,
    ReconnectPolicy,
    ResilientElapsClient,
    SendQueue,
    SendVerdict,
    TruncatedFrameError,
)
from .observability import (
    BUCKET_BOUNDS,
    LatencyHistogram,
    MetricsRegistry,
    SpanTracer,
    render_prometheus,
)
from .server import ElapsServer, Notification, SubscriberRecord
from .sharding import (
    ProcessExecutor,
    SerialExecutor,
    ShardCall,
    ShardExecutor,
    ShardSpec,
    ShardedElapsServer,
    ThreadedExecutor,
    WorkerCrashed,
    partition_columns,
)
from .simulation import Simulation, SimulationResult, SimulationTransport

__all__ = [
    "BUCKET_BOUNDS",
    "CallbackTransport",
    "ChaosProxy",
    "ClientConfig",
    "CommunicationStats",
    "LatencyHistogram",
    "MetricsRegistry",
    "SpanTracer",
    "render_prometheus",
    "ElapsNetworkClient",
    "ElapsServer",
    "ElapsTCPServer",
    "FaultConfig",
    "FaultInjector",
    "FaultKind",
    "FaultStats",
    "FrameError",
    "FrameKind",
    "Journal",
    "JournalCorruptionError",
    "JournalError",
    "JournalRecord",
    "JournalSpec",
    "MobileClient",
    "ExperimentConfig",
    "NetworkConfig",
    "Notification",
    "ProcessExecutor",
    "RebalancePolicy",
    "ReconnectPolicy",
    "ResilientElapsClient",
    "STRATEGIES",
    "SendQueue",
    "SendVerdict",
    "SerialExecutor",
    "ServerConfig",
    "ShardCall",
    "ShardExecutor",
    "ShardSpec",
    "ShardedElapsServer",
    "Simulation",
    "SimulationResult",
    "SimulationTransport",
    "SubscriberRecord",
    "ThreadedExecutor",
    "Transport",
    "TruncatedFrameError",
    "WorkerCrashed",
    "build_server",
    "build_simulation",
    "build_strategy",
    "partition_columns",
    "run_experiment",
]
