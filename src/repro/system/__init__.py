"""System layer: the Elaps server (Figure 6), the client/server
simulation, the experiment runner, and the metrics they report."""

from .client import MobileClient
from .experiment import ExperimentConfig, STRATEGIES, build_simulation, build_strategy, run_experiment
from .metrics import CommunicationStats
from .network import ElapsNetworkClient, ElapsTCPServer
from .server import ElapsServer, Notification, SubscriberRecord
from .simulation import Simulation, SimulationResult

__all__ = [
    "CommunicationStats",
    "ElapsNetworkClient",
    "ElapsServer",
    "ElapsTCPServer",
    "MobileClient",
    "ExperimentConfig",
    "Notification",
    "STRATEGIES",
    "Simulation",
    "SimulationResult",
    "SubscriberRecord",
    "build_simulation",
    "build_strategy",
    "run_experiment",
]
