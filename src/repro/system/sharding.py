"""Spatially sharded Elaps: K workers behind one coordinator.

The grid is split into K contiguous **column bands** (rectangular shards
of ``grid.space``); each band is owned by a full, independent
:class:`~repro.system.server.ElapsServer` — its own BEQ-Tree, its own
subscription index, its own impact index — built from one shared
:class:`~repro.system.config.ServerConfig`.  The coordinator on top
implements the single-server public surface, so the TCP layer, the
simulation, the CLI and the benchmarks drive a fleet exactly like they
drive one server.

Routing rules (DESIGN.md §12):

* **Events** go to exactly one shard — the one whose band contains the
  event point.  Each shard therefore holds a disjoint slice of the event
  corpus, and the owning shard is the sole delivery authority for its
  events: corpus matching can never duplicate a notification across
  workers.
* **Subscribers** are *multi-homed*: a subscriber lives on every shard
  whose band its notification circle or dilated safe region overlaps
  (dilation by the notification radius — the impact reach).  Definition 1
  is a conjunction over events, so the region that is safe against *all*
  events is the **intersection** of the per-shard safe regions; the
  coordinator holds that intersection and ships it to the client.
  Per-shard Lemma 1 keeps each worker's impact region covering the
  notification circle whenever the subscriber sits inside the *held*
  (intersection) region, because the held region is a subset of every
  shard's own region.
* **Re-homing** happens whenever a reconstruction (or a location change)
  moves the dilated held region across a band boundary: the coordinator
  subscribes the subscriber on the newly-overlapped shards.  Homes are
  sticky — a shard once homed keeps its record until unsubscribe — so a
  shard's per-subscriber ``delivered`` set never forgets, and the
  coordinator keeps a global delivered set as the final dedup guard for
  the re-homing corpus-match path.

Execution is pluggable through :class:`ShardExecutor`:
:class:`SerialExecutor` runs shard tasks in ascending shard order on the
calling thread (deterministic — the golden-trace differential runs under
it), :class:`ThreadedExecutor` fans them out over a thread pool with one
lock per shard (workers share no state, so per-shard locking is the only
synchronisation the fleet needs), and :class:`ProcessExecutor` hosts each
worker in its own OS process (DESIGN.md §15) — the coordinator ships
:class:`ShardCall` command messages over pipes, the workers reply with
results plus any buffered region shipments, and location pings travel
back up the same pipe synchronously.

Bands need not stay static: with a
:class:`~repro.system.config.RebalancePolicy` the coordinator tracks
per-column event load and moves the column boundaries when one band runs
hot (``partition_columns`` accepts explicit boundaries).  A rebalance
migrates events between shards through
:meth:`ElapsServer.extract_events_in_columns` + ``bootstrap`` and
re-homes subscribers through the ordinary sticky multi-homing machinery,
so client-visible deliveries are unchanged — byte-identical under
:class:`SerialExecutor`.
"""

from __future__ import annotations

import bisect
import dataclasses
import inspect
import itertools
import json
import math
import multiprocessing
import multiprocessing.connection
import os
import threading
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field as dataclass_field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..core import SafeRegion, SafeRegionStrategy, SystemStats
from ..expressions import Event, Subscription
from ..geometry import Cell, Grid, Point, Rect
from .config import RebalancePolicy, ServerConfig, Transport
from .metrics import CommunicationStats
from .observability import LatencyHistogram, MetricsRegistry
from .server import ElapsServer, Notification

__all__ = [
    "ProcessExecutor",
    "RebalancePolicy",
    "SerialExecutor",
    "ShardCall",
    "ShardExecutor",
    "ShardSpec",
    "ShardedElapsServer",
    "ThreadedExecutor",
    "WorkerCrashed",
    "partition_columns",
]


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the space: a contiguous band of grid columns."""

    shard_id: int
    #: owned grid columns ``[col_lo, col_hi)``
    col_lo: int
    col_hi: int
    #: the rectangle of space the band covers
    rect: Rect


def partition_columns(
    grid: Grid, shards: Union[int, Sequence[int]]
) -> List[ShardSpec]:
    """Split ``grid.space`` into contiguous column bands.

    ``shards`` is either a band count — the split is then maximally even
    (sizes differ by at most one column) — or an explicit boundary
    sequence ``[0, c1, ..., grid.n]``, strictly increasing, which is how
    load-adaptive repartitioning expresses uneven bands.  Either way
    bands cover every column exactly once and are never empty — which
    caps the band count at the grid resolution.
    """
    if isinstance(shards, int):
        if shards < 1:
            raise ValueError(f"shard count must be positive, got {shards}")
        if shards > grid.n:
            raise ValueError(
                f"cannot split {grid.n} grid columns into {shards} shards"
            )
        bounds = [round(k * grid.n / shards) for k in range(shards + 1)]
    else:
        bounds = [int(b) for b in shards]
        if len(bounds) < 2:
            raise ValueError(f"need at least two boundaries, got {bounds}")
        if bounds[0] != 0 or bounds[-1] != grid.n:
            raise ValueError(
                f"boundaries must run from 0 to {grid.n}, got {bounds}"
            )
        if any(hi <= lo for lo, hi in zip(bounds, bounds[1:])):
            raise ValueError(
                f"boundaries must be strictly increasing (no empty bands): "
                f"{bounds}"
            )
    specs = []
    for shard_id in range(len(bounds) - 1):
        lo, hi = bounds[shard_id], bounds[shard_id + 1]
        rect = Rect(
            grid.space.x_min + lo * grid.cell_width,
            grid.space.y_min,
            grid.space.x_min + hi * grid.cell_width,
            grid.space.y_max,
        )
        specs.append(ShardSpec(shard_id, lo, hi, rect))
    return specs


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class ShardCall:
    """A thunk-equivalent command message: ``method(*args)`` on one
    shard's worker.

    The coordinator issues every piece of shard work as a ``ShardCall``.
    In-process executors simply *call* it (the bound thunk runs against
    the local :class:`ElapsServer`); :class:`ProcessExecutor` instead
    reads ``method``/``args`` and ships them over the worker's pipe —
    same contract, different transport.
    """

    __slots__ = ("method", "args", "_local")

    def __init__(
        self,
        method: str,
        args: Sequence[object] = (),
        local: Optional[Callable[[], object]] = None,
    ) -> None:
        self.method = method
        self.args = tuple(args)
        self._local = local

    def __call__(self) -> object:
        if self._local is None:
            raise TypeError(
                f"ShardCall({self.method!r}) has no local binding; "
                "run it through a ProcessExecutor"
            )
        return self._local()

    def __repr__(self) -> str:
        return f"ShardCall({self.method!r}, {len(self.args)} args)"


class WorkerCrashed(RuntimeError):
    """A shard worker process died mid-fleet (DESIGN.md §15).

    Raised by :meth:`ProcessExecutor.run` when a worker's pipe hits EOF
    or its process is found dead; the fleet is unusable afterwards (a
    shard's corpus slice is gone) and should be closed and recovered
    from its band journals.
    """

    def __init__(self, shard_id: int, exitcode: Optional[int]) -> None:
        super().__init__(
            f"shard worker {shard_id} died (exit code {exitcode})"
        )
        self.shard_id = shard_id
        self.exitcode = exitcode


class ShardExecutor:
    """How the coordinator runs work on its shards.

    ``run`` takes ``{shard_id: task}`` and returns ``{shard_id:
    result}``; tasks are :class:`ShardCall` command messages (plain
    zero-argument thunks are accepted by the in-process executors).
    Implementations decide *where* the tasks run; the coordinator never
    assumes more than "every task ran to completion before ``run``
    returns".
    """

    def run(self, tasks: Mapping[int, Callable[[], object]]) -> Dict[int, object]:
        """Run every task; return its result keyed by shard id."""
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (a no-op for serial execution)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(ShardExecutor):
    """Run shard tasks inline, in ascending shard order.

    Fully deterministic — the sharded-vs-single golden differential is
    pinned under this executor — and the right choice whenever the
    workload is driven from tests or a single-threaded simulation.
    """

    def run(self, tasks: Mapping[int, Callable[[], object]]) -> Dict[int, object]:
        """Run the thunks one after another, ascending shard order."""
        return {shard_id: tasks[shard_id]() for shard_id in sorted(tasks)}


class ThreadedExecutor(ShardExecutor):
    """Run shard tasks on a thread pool, one lock per shard.

    Shards share no mutable state (each worker owns its indexes
    outright), so the per-shard lock is the only synchronisation needed:
    it serialises tasks that target the *same* shard while tasks for
    different shards run concurrently.  The pool is created lazily on
    first use, sized to ``max_workers`` when given; without a cap it is
    sized to the widest fan-out seen so far and *grows by replacement*
    when a wider one arrives — a pool sized to the first call's width
    would silently queue the extra shards of a later, wider fan-out
    (e.g. after a band split raises K).
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_width = 0
        self._retired: List[ThreadPoolExecutor] = []
        self._locks: Dict[int, threading.Lock] = {}
        self._admin = threading.Lock()

    def _lock_for(self, shard_id: int) -> threading.Lock:
        with self._admin:
            lock = self._locks.get(shard_id)
            if lock is None:
                lock = self._locks[shard_id] = threading.Lock()
            return lock

    def _ensure_pool(self, width: int) -> ThreadPoolExecutor:
        with self._admin:
            target = self.max_workers or max(width, 1)
            if self._pool is not None and target > self._pool_width:
                # Grow by replacement: the old pool drains its in-flight
                # work on its own threads while new submissions get the
                # full width.  (ThreadPoolExecutor cannot be resized.)
                retired = self._pool
                self._retired.append(retired)
                retired.shutdown(wait=False)
                self._pool = None
            if self._pool is None:
                self._pool_width = max(target, self._pool_width)
                self._pool = ThreadPoolExecutor(
                    max_workers=self._pool_width,
                    thread_name_prefix="elaps-shard",
                )
            return self._pool

    def run(self, tasks: Mapping[int, Callable[[], object]]) -> Dict[int, object]:
        """Fan the thunks out over the pool, serialised per shard."""
        if len(tasks) == 1:
            # Single-shard work (the common publish) skips the pool
            # round-trip but still honours the shard lock.
            ((shard_id, thunk),) = tasks.items()
            with self._lock_for(shard_id):
                return {shard_id: thunk()}

        def _locked(shard_id: int, thunk: Callable[[], object]) -> object:
            with self._lock_for(shard_id):
                return thunk()

        pool = self._ensure_pool(len(tasks))
        futures = {
            shard_id: pool.submit(_locked, shard_id, tasks[shard_id])
            for shard_id in sorted(tasks)
        }
        return {shard_id: future.result() for shard_id, future in futures.items()}

    def close(self) -> None:
        """Shut the pools down and wait for in-flight shard work."""
        with self._admin:
            pool, self._pool = self._pool, None
            retired, self._retired = self._retired, []
            self._pool_width = 0
        for stale in retired:
            stale.shutdown(wait=True)
        if pool is not None:
            pool.shutdown(wait=True)


# ----------------------------------------------------------------------
# Process-parallel execution (DESIGN.md §15)
# ----------------------------------------------------------------------
class _WorkerTransport(Transport):
    """The transport a worker-process server is built with.

    Region and delta ships are *buffered* and returned with the command
    reply — the coordinator replays them into its usual callbacks after
    the fan-out — while ``locate`` is a synchronous upcall over the
    worker's pipe: the parent services ``("locate", sub_id)`` requests
    while it waits for command replies, so an event-arrival ping inside
    a worker blocks only that worker.
    """

    def __init__(self, conn) -> None:
        self._conn = conn
        self._shipments: List[Tuple] = []

    def ship_region(self, sub_id: int, region: SafeRegion) -> None:
        """Buffer a full region ship for replay with the next reply."""
        self._shipments.append(("region", sub_id, region))

    def ship_delta(
        self, sub_id: int, removed: FrozenSet[Cell], region: SafeRegion
    ) -> None:
        """Buffer a delta ship for replay with the next reply."""
        self._shipments.append(("delta", sub_id, removed, region))

    def locate(self, sub_id: int) -> Optional[Tuple[Point, Point]]:
        """Ask the coordinator (synchronously, over the pipe) where a
        subscriber is; blocks only this worker."""
        self._conn.send(("locate", sub_id))
        return self._conn.recv()

    def drain(self) -> List[Tuple]:
        """Return and clear the buffered shipments (sent with replies)."""
        shipments, self._shipments = self._shipments, []
        return shipments


@dataclass(frozen=True)
class _ShardSubscriberView:
    """A picklable snapshot of one worker-side subscriber record — the
    fields fleet recovery reads (same attribute names as the live
    :class:`~repro.system.server.SubscriberRecord`)."""

    subscription: Subscription
    location: Point
    velocity: Point
    delivered: FrozenSet[int]
    safe: Optional[SafeRegion]


def _dispatch_command(server: ElapsServer, method: str, args: Tuple) -> object:
    """Run one command message against the worker-owned server.

    Plain names call the public surface directly; the dunder commands
    marshal state that is an *attribute* (not a method) on a local
    server, or that needs a picklable projection.
    """
    if method == "__metrics__":
        return server.metrics
    if method == "__registry__":
        return (
            server.metrics,
            {
                stage: histogram.as_dict()
                for stage, histogram in server.registry.tracer.histograms.items()
            },
        )
    if method == "__describe__":
        return {
            sub_id: _ShardSubscriberView(
                subscription=record.subscription,
                location=record.location,
                velocity=record.velocity,
                delivered=frozenset(record.delivered),
                safe=record.safe,
            )
            for sub_id, record in server.subscribers.items()
        }
    if method == "__corpus__":
        return list(server.corpus_matches(args[0]))
    if method == "__tracer_set__":
        setattr(server.tracer, args[0], args[1])
        return None
    if method == "__tracer_get__":
        return getattr(server.tracer, args[0])
    return getattr(server, method)(*args)


def _shard_worker_main(builder, conn) -> None:
    """The worker-process loop: build the shard's server, then serve
    command messages until EOF or the ``None`` close sentinel."""
    transport = _WorkerTransport(conn)
    server = builder(transport)
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            if message is None:
                server.close()
                conn.send(("closed",))
                break
            method, args = message
            try:
                result = _dispatch_command(server, method, args)
            except BaseException as exc:  # noqa: BLE001 — marshal everything
                shipped = transport.drain()
                remote_tb = traceback.format_exc()
                try:
                    conn.send(("error", exc, remote_tb, shipped))
                except Exception:
                    # The exception itself would not pickle; ship a
                    # faithful stand-in so the parent still raises.
                    conn.send(
                        ("error", RuntimeError(repr(exc)), remote_tb, shipped)
                    )
            else:
                try:
                    conn.send(("done", result, transport.drain()))
                except Exception as exc:
                    conn.send(
                        (
                            "error",
                            RuntimeError(
                                f"unpicklable result from {method!r}: {exc!r}"
                            ),
                            "",
                            [],
                        )
                    )
    finally:
        conn.close()


@dataclass
class _WorkerHandle:
    """Parent-side handle on one worker process and its pipe end."""

    shard_id: int
    process: multiprocessing.process.BaseProcess
    conn: multiprocessing.connection.Connection


class ProcessExecutor(ShardExecutor):
    """Run each shard in its own OS process — K shards, K cores.

    The fleet constructor calls :meth:`launch` with one builder per
    shard; each worker process builds its :class:`ElapsServer` *inside
    the child* (the default ``fork`` start method inherits the grid,
    strategy factory, and config without pickling them) and then serves
    :class:`ShardCall` command messages over its pipe.  Only the command
    arguments, results, and buffered region shipments cross the pipes.

    ``run`` dispatches every task before collecting any reply, so the
    fan-out genuinely overlaps; while collecting, the parent services
    the workers' synchronous ``locate`` upcalls.  A dead worker surfaces
    as :class:`WorkerCrashed`.  ``close`` sends every worker a close
    sentinel (each closes its server — and journal — cleanly), joins the
    processes, and is idempotent.
    """

    #: the fleet builds its workers inside this executor's processes
    hosts_workers = True

    def __init__(self, mp_context: str = "fork") -> None:
        if mp_context not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {mp_context!r} unavailable on this platform"
            )
        if mp_context != "fork":
            raise ValueError(
                "ProcessExecutor requires the 'fork' start method: worker "
                "builders close over unpicklable factories by design"
            )
        self._context = multiprocessing.get_context(mp_context)
        self._workers: Dict[int, _WorkerHandle] = {}
        self._locate: Optional[Callable] = None
        self._on_region: Optional[Callable] = None
        self._on_delta: Optional[Callable] = None
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has torn the workers down."""
        return self._closed

    def launch(
        self,
        builders: Sequence[Callable[[Transport], ElapsServer]],
        *,
        locate: Callable[[int], Optional[Tuple[Point, Point]]],
        on_region: Callable[[int, int, SafeRegion], None],
        on_delta: Callable[[int, int, FrozenSet[Cell], SafeRegion], None],
    ) -> None:
        """Fork one worker per builder and wire the coordinator hooks."""
        if self._workers:
            raise RuntimeError("this ProcessExecutor already hosts a fleet")
        if self._closed:
            raise RuntimeError("cannot launch on a closed ProcessExecutor")
        self._locate = locate
        self._on_region = on_region
        self._on_delta = on_delta
        for shard_id, builder in enumerate(builders):
            parent_conn, child_conn = self._context.Pipe()
            process = self._context.Process(
                target=_shard_worker_main,
                args=(builder, child_conn),
                name=f"elaps-shard-{shard_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers[shard_id] = _WorkerHandle(shard_id, process, parent_conn)

    def _crashed(self, handle: _WorkerHandle) -> WorkerCrashed:
        handle.process.join(timeout=5.0)
        return WorkerCrashed(handle.shard_id, handle.process.exitcode)

    def call(self, shard_id: int, method: str, *args) -> object:
        """One synchronous command against one worker."""
        return self.run({shard_id: ShardCall(method, args)})[shard_id]

    def run(self, tasks: Mapping[int, Callable[[], object]]) -> Dict[int, object]:
        """Dispatch every command, then collect; service locate upcalls."""
        if self._closed:
            raise RuntimeError("ProcessExecutor is closed")
        if not self._workers:
            raise RuntimeError("ProcessExecutor.run before launch()")
        pending: Dict[object, _WorkerHandle] = {}
        for shard_id in sorted(tasks):
            task = tasks[shard_id]
            if not isinstance(task, ShardCall):
                raise TypeError(
                    f"ProcessExecutor needs ShardCall tasks, got {task!r} "
                    f"for shard {shard_id}"
                )
            handle = self._workers[shard_id]
            if not handle.process.is_alive():
                raise self._crashed(handle)
            try:
                handle.conn.send((task.method, task.args))
            except (BrokenPipeError, OSError):
                raise self._crashed(handle) from None
            pending[handle.conn] = handle
        results: Dict[int, object] = {}
        errors: List[Tuple[int, BaseException, str]] = []
        shipments: List[Tuple[int, List[Tuple]]] = []
        while pending:
            ready = multiprocessing.connection.wait(list(pending))
            for conn in ready:
                handle = pending[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    raise self._crashed(handle) from None
                kind = message[0]
                if kind == "locate":
                    conn.send(self._locate(message[1]))
                elif kind == "done":
                    _, result, shipped = message
                    results[handle.shard_id] = result
                    shipments.append((handle.shard_id, shipped))
                    del pending[conn]
                else:  # "error"
                    _, exc, remote_tb, shipped = message
                    errors.append((handle.shard_id, exc, remote_tb))
                    shipments.append((handle.shard_id, shipped))
                    del pending[conn]
        # Replay region traffic in shard order — shipments that happened
        # before a failure are real worker state and must land.
        for shard_id, shipped in sorted(shipments):
            for item in shipped:
                if item[0] == "region":
                    self._on_region(shard_id, item[1], item[2])
                else:
                    self._on_delta(shard_id, item[1], item[2], item[3])
        if errors:
            errors.sort(key=lambda entry: entry[0])
            _, exc, remote_tb = errors[0]
            exc._remote_traceback = remote_tb
            raise exc
        return results

    def close(self) -> None:
        """Send every worker the close sentinel, then join (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers.values():
            if handle.process.is_alive():
                try:
                    handle.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for handle in self._workers.values():
            try:
                if handle.conn.poll(5.0):
                    handle.conn.recv()  # the ("closed",) ack
            except (EOFError, BrokenPipeError, OSError):
                pass
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            handle.conn.close()


def _registry_from_parts(
    stats: CommunicationStats, spans: Dict[str, Dict]
) -> MetricsRegistry:
    """Rebuild a registry from the parts a worker marshals back."""
    registry = MetricsRegistry(dataclasses.replace(stats))
    for stage, digest in spans.items():
        registry.tracer.histograms[stage] = LatencyHistogram.from_dict(digest)
    return registry


class _RemoteTracer:
    """Attribute proxy for a worker-process tracer: assignments and
    reads travel over the worker's pipe (``tracer.enabled = True`` on a
    fleet works identically for local and process workers)."""

    __slots__ = ("_shard",)

    def __init__(self, shard: "_RemoteShard") -> None:
        object.__setattr__(self, "_shard", shard)

    def __setattr__(self, name: str, value: object) -> None:
        object.__getattribute__(self, "_shard")._invoke(
            "__tracer_set__", name, value
        )

    def __getattr__(self, name: str) -> object:
        return object.__getattribute__(self, "_shard")._invoke(
            "__tracer_get__", name
        )


class _RemoteShard:
    """Coordinator-side stand-in for a worker living in another process.

    Implements the slice of the :class:`ElapsServer` surface the
    coordinator touches *directly* (outside :meth:`ShardExecutor.run`
    fan-outs): each method is one synchronous command round-trip.
    ``metrics``/``registry``/``subscribers`` — attributes on a local
    worker — marshal picklable snapshots back.
    """

    def __init__(self, executor: ProcessExecutor, shard_id: int) -> None:
        self._executor = executor
        self.shard_id = shard_id

    def _invoke(self, method: str, *args) -> object:
        return self._executor.call(self.shard_id, method, *args)

    def bootstrap(self, events) -> None:
        """Load events into the worker without notifying anyone."""
        self._invoke("bootstrap", list(events))

    def subscribe(self, subscription, location, velocity, now=0):
        """Register the subscription on the worker; returns (matches, region)."""
        return self._invoke("subscribe", subscription, location, velocity, now)

    def unsubscribe(self, sub_id: int) -> None:
        """Drop the subscriber from the worker."""
        self._invoke("unsubscribe", sub_id)

    def publish(self, event, now):
        """Publish one event on the worker; returns its notifications."""
        return self._invoke("publish", event, now)

    def publish_batch(self, events, now):
        """Publish an event batch on the worker; returns its notifications."""
        return self._invoke("publish_batch", list(events), now)

    def report_location(self, sub_id, location, velocity, now):
        """Forward a location update; returns (deliveries, region)."""
        return self._invoke("report_location", sub_id, location, velocity, now)

    def resync(self, sub_id, location, velocity, received, now):
        """Replay a client resync on the worker (exactly-once dedup)."""
        return self._invoke("resync", sub_id, location, velocity, received, now)

    def expire_due_events(self, now: int) -> int:
        """Expire due events on the worker; returns how many left."""
        return self._invoke("expire_due_events", now)

    def rebuild_all(self, now: int) -> None:
        """Rebuild every cached safe region on the worker."""
        self._invoke("rebuild_all", now)

    def system_stats(self, now: int) -> SystemStats:
        """The worker's :class:`SystemStats` snapshot."""
        return self._invoke("system_stats", now)

    def extract_events_in_columns(self, ranges) -> List[Event]:
        """Remove and return the worker's events in the column ranges
        (the donor half of a band move)."""
        return self._invoke("extract_events_in_columns", tuple(ranges))

    def resequence_subscriptions(self, order) -> None:
        """Re-insert the worker's subscriptions in coordinator order."""
        self._invoke("resequence_subscriptions", list(order))

    def snapshot(self) -> None:
        """Force a journal snapshot on the worker."""
        self._invoke("snapshot")

    def recover(self) -> int:
        """Replay the worker's journal; returns the records applied."""
        return self._invoke("recover")

    def corpus_matches(self, expression) -> Iterator[Event]:
        """Iterate the worker's live events matching the expression."""
        return iter(self._invoke("__corpus__", expression))

    @property
    def metrics(self) -> CommunicationStats:
        """A picklable snapshot of the worker's communication stats."""
        return self._invoke("__metrics__")

    @property
    def registry(self) -> MetricsRegistry:
        """The worker's metrics registry, rebuilt from marshalled parts."""
        stats, spans = self._invoke("__registry__")
        return _registry_from_parts(stats, spans)

    @property
    def subscribers(self) -> Dict[int, _ShardSubscriberView]:
        """Lightweight views of the worker's subscriber records."""
        return self._invoke("__describe__")

    @property
    def tracer(self) -> _RemoteTracer:
        """A proxy forwarding tracer toggles over the pipe."""
        return _RemoteTracer(self)

    def close(self) -> None:
        """A no-op once the executor shut the worker down (the close
        sentinel already closed the remote server and its journal)."""
        if not self._executor.closed and self._workers_alive():
            self._invoke("close")

    def _workers_alive(self) -> bool:
        handle = self._executor._workers.get(self.shard_id)
        return handle is not None and handle.process.is_alive()


# ----------------------------------------------------------------------
# Coordinator-side state
# ----------------------------------------------------------------------
@dataclass
class ShardedSubscriberRecord:
    """The coordinator's view of one subscriber."""

    subscription: Subscription
    location: Point
    velocity: Point
    #: the shard containing the subscribe-time location
    owner: int
    #: every shard currently holding a full per-shard record (sticky)
    homes: Set[int] = dataclass_field(default_factory=set)
    #: global delivered-event ids — the final dedup guard
    delivered: Set[int] = dataclass_field(default_factory=set)
    #: the latest safe region shipped by each homed shard
    shard_regions: Dict[int, SafeRegion] = dataclass_field(default_factory=dict)
    #: the held region: the intersection of ``shard_regions`` over homes
    safe: Optional[SafeRegion] = None
    #: coordinator-level delivery sequence number; the coordinator
    #: re-stamps every fresh notification so the client sees one gapless
    #: stream regardless of which shard produced the delivery
    next_seq: int = 0


@dataclass
class _Dirty:
    """Pending region changes for one subscriber within one operation."""

    #: a shard shipped a *full* region — the held intersection must be
    #: recomputed and re-shipped in full
    full: bool = False
    #: cells repairs carved out (delta path; ignored once ``full`` is set)
    removed: Set[Cell] = dataclass_field(default_factory=set)


class _ShardTransport(Transport):
    """The transport each worker is built with: everything a shard ships
    lands at the coordinator, never directly at a client."""

    def __init__(self, coordinator: "ShardedElapsServer", shard_id: int) -> None:
        self._coordinator = coordinator
        self._shard_id = shard_id

    def ship_region(self, sub_id: int, region: SafeRegion) -> None:
        """Record this shard's freshly built region at the coordinator."""
        self._coordinator._on_shard_region(self._shard_id, sub_id, region)

    def ship_delta(
        self, sub_id: int, removed: FrozenSet[Cell], region: SafeRegion
    ) -> None:
        """Record this shard's repair delta at the coordinator."""
        self._coordinator._on_shard_delta(self._shard_id, sub_id, removed, region)

    def locate(self, sub_id: int) -> Optional[Tuple[Point, Point]]:
        """Ping through the coordinator's client-facing transport."""
        return self._coordinator._locate_subscriber(sub_id)


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------
class ShardedElapsServer:
    """K-shard Elaps fleet behind the single-server public surface.

    Construction mirrors ``ElapsServer(grid, strategy, config)``; every
    worker is built from the *same* :class:`ServerConfig`.  ``strategy``
    may be a :class:`~repro.core.SafeRegionStrategy` instance (shared by
    all workers — the bundled strategies are stateless per ``construct``
    call) or a factory producing one fresh strategy per shard.  The
    factory takes either no argument or the shard's :class:`ShardSpec` —
    the latter lets a fleet split a global region budget across bands
    (the client-held region is the K-way intersection of the per-shard
    regions, so each shard only needs ``max_cells / K`` of the budget;
    deliveries are unaffected either way).
    """

    def __init__(
        self,
        grid: Grid,
        strategy,
        config: Optional[ServerConfig] = None,
        *,
        shards: int = 4,
        executor: Optional[ShardExecutor] = None,
        transport: Optional[Transport] = None,
        event_index_factory: Optional[Callable[[], object]] = None,
        subscription_index_factory: Optional[Callable[[], object]] = None,
        rebalance: Optional[RebalancePolicy] = None,
    ) -> None:
        self.grid = grid
        self.config = config or ServerConfig()
        self.specs = partition_columns(grid, shards)
        if executor is None:
            executor = self._executor_from_config(
                self.config.shard_executor, len(self.specs)
            )
        self.executor = executor
        #: the client-facing seam, exactly as on a single server
        self.transport: Optional[Transport] = transport
        #: boundary-move policy; ``None`` keeps the bands static
        self.rebalance_policy = (
            rebalance if rebalance is not None else self.config.rebalance
        )

        if isinstance(strategy, SafeRegionStrategy):
            factory: Callable[[ShardSpec], SafeRegionStrategy] = (
                lambda spec: strategy
            )
        elif callable(strategy):
            takes_spec = len(inspect.signature(strategy).parameters) >= 1
            factory = strategy if takes_spec else lambda spec: strategy()
        else:
            raise TypeError(
                "strategy must be a SafeRegionStrategy or a factory "
                f"(taking nothing or the ShardSpec), got {strategy!r}"
            )
        # Per-band durability: each worker journals autonomously under a
        # ``band-<k>/`` subdirectory of the configured journal path (the
        # one place workers deviate from the shared config).
        def worker_config(spec: ShardSpec) -> ServerConfig:
            """This band's config: shared knobs, band-local journal."""
            if self.config.journal is None:
                return self.config
            return self.config.with_(journal=self.config.journal.for_shard(spec.shard_id))

        if getattr(self.executor, "hosts_workers", False):
            # Process fleet: each worker server is built *inside* its
            # forked child (the builder closure carries the grid, the
            # strategy factory and the config across the fork without
            # pickling); the coordinator keeps pipe-backed proxies.
            def make_builder(spec: ShardSpec) -> Callable[[Transport], ElapsServer]:
                """A builder closure for this band, run inside the fork."""
                band_config = worker_config(spec)

                def build(worker_transport: Transport) -> ElapsServer:
                    """Construct the band's server around the worker pipe."""
                    return ElapsServer(
                        grid,
                        factory(spec),
                        band_config,
                        event_index=(
                            event_index_factory() if event_index_factory else None
                        ),
                        subscription_index=(
                            subscription_index_factory()
                            if subscription_index_factory
                            else None
                        ),
                        transport=worker_transport,
                    )

                return build

            self.executor.launch(
                [make_builder(spec) for spec in self.specs],
                locate=self._locate_subscriber,
                on_region=self._on_shard_region,
                on_delta=self._on_shard_delta,
            )
            self.shard_servers: List[ElapsServer] = [
                _RemoteShard(self.executor, spec.shard_id) for spec in self.specs
            ]
        else:
            self.shard_servers = [
                ElapsServer(
                    grid,
                    factory(spec),
                    worker_config(spec),
                    event_index=event_index_factory() if event_index_factory else None,
                    subscription_index=(
                        subscription_index_factory() if subscription_index_factory else None
                    ),
                    transport=_ShardTransport(self, spec.shard_id),
                )
                for spec in self.specs
            ]
        #: column index → owning shard id
        self._shard_by_column: List[int] = [0] * grid.n
        for spec in self.specs:
            for column in range(spec.col_lo, spec.col_hi):
                self._shard_by_column[column] = spec.shard_id
        #: grid columns one notification radius can span (dilation reach)
        self._reach_cache: Dict[float, int] = {}

        self.subscribers: Dict[int, ShardedSubscriberRecord] = {}
        #: coordinator-level counters: client-facing region pushes; the
        #: per-worker activity lives in each shard's own metrics and is
        #: folded in by :meth:`merged_metrics`
        self.metrics = CommunicationStats()
        self.metrics.bytes_measured = self.config.measure_bytes
        self.registry = MetricsRegistry(self.metrics)
        self.tracer = self.registry.tracer
        self._dirty: Dict[int, _Dirty] = {}
        self._mutex = threading.Lock()
        #: per-column published-event counters — the load signal the
        #: rebalance policy cuts new boundaries from
        self._column_load: List[float] = [0.0] * grid.n
        self._events_seen = 0
        self._events_since_check = 0
        #: boundary moves performed so far
        self.rebalances = 0

    @staticmethod
    def _executor_from_config(kind: Optional[str], shards: int) -> ShardExecutor:
        """The executor the config's ``shard_executor`` knob names."""
        if kind is None or kind == "serial":
            return SerialExecutor()
        if kind == "threaded":
            return ThreadedExecutor(max_workers=shards)
        if kind == "process":
            return ProcessExecutor()
        raise ValueError(f"unknown shard executor kind {kind!r}")

    def _call(self, shard_id: int, method: str, *args) -> ShardCall:
        """One unit of shard work, in command-message form."""
        worker = self.shard_servers[shard_id]
        return ShardCall(
            method, args, local=lambda: getattr(worker, method)(*args)
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        """The shard count K."""
        return len(self.shard_servers)

    def shard_of_point(self, p: Point) -> int:
        """The shard whose band contains ``p``."""
        return self._shard_by_column[self.grid.cell_of(p)[0]]

    def _column_reach(self, radius: float) -> int:
        """Columns a dilation by ``radius`` can add on either side."""
        reach = self._reach_cache.get(radius)
        if reach is None:
            reach = int(math.ceil(radius / self.grid.cell_width)) + 1
            self._reach_cache[radius] = reach
        return reach

    def _shards_in_columns(self, lo: int, hi: int) -> Set[int]:
        lo = max(lo, 0)
        hi = min(hi, self.grid.n - 1)
        if lo > hi:
            return set()
        return set(self._shard_by_column[lo : hi + 1])

    def _desired_homes(self, record: ShardedSubscriberRecord) -> Set[int]:
        """Every shard the homing invariant requires right now.

        The invariant that makes sharding lossless: a subscriber is homed
        on (a) its owner shard, (b) every shard overlapping the columns
        of its notification circle at the last known location — while
        the held region is empty the client reports every tick, and this
        keeps the shard holding any within-radius event responsible for
        it — and (c) every shard overlapping the dilation of the held
        safe region, so an event that could invalidate the held region
        always lands on a shard that knows the subscriber (per-shard
        Definition 2).
        """
        radius = record.subscription.radius
        reach = self._column_reach(radius)
        column = self.grid.cell_of(record.location)[0]
        homes = {record.owner}
        homes |= self._shards_in_columns(column - reach, column + reach)
        held = record.safe
        if held is not None and not held.is_empty():
            if held.complement:
                return set(range(self.shards))
            columns = [i for (i, _) in held.cells]
            homes |= self._shards_in_columns(
                min(columns) - reach, max(columns) + reach
            )
        return homes

    # ------------------------------------------------------------------
    # Shard-to-coordinator callbacks (may arrive from worker threads)
    # ------------------------------------------------------------------
    def _on_shard_region(self, shard_id: int, sub_id: int, region: SafeRegion) -> None:
        with self._mutex:
            record = self.subscribers.get(sub_id)
            if record is None:
                return
            record.shard_regions[shard_id] = region
            self._dirty.setdefault(sub_id, _Dirty()).full = True

    def _on_shard_delta(
        self,
        shard_id: int,
        sub_id: int,
        removed: FrozenSet[Cell],
        region: SafeRegion,
    ) -> None:
        with self._mutex:
            record = self.subscribers.get(sub_id)
            if record is None:
                return
            record.shard_regions[shard_id] = region
            self._dirty.setdefault(sub_id, _Dirty()).removed.update(removed)

    def _locate_subscriber(self, sub_id: int) -> Optional[Tuple[Point, Point]]:
        transport = self.transport
        if transport is None:
            return None
        answer = transport.locate(sub_id)
        if answer is not None:
            record = self.subscribers.get(sub_id)
            if record is not None:
                record.location, record.velocity = answer
        return answer

    # ------------------------------------------------------------------
    # Held-region maintenance
    # ------------------------------------------------------------------
    def _recompute_held(self, record: ShardedSubscriberRecord) -> None:
        held: Optional[SafeRegion] = None
        for shard_id in sorted(record.homes):
            region = record.shard_regions.get(shard_id)
            if region is None:
                continue
            held = region if held is None else held.intersected_with(region)
        record.safe = held

    def _absorb(self, notifications: Sequence[Notification]) -> List[Notification]:
        """Dedup shard notifications against the global delivered sets.

        Fresh notifications are re-stamped with the coordinator-level
        sequence number: each worker numbers its own deliveries, but the
        client sees one stream, so the coordinator's counter is the one
        that must be gapless.
        """
        fresh: List[Notification] = []
        for notification in notifications:
            record = self.subscribers.get(notification.sub_id)
            if record is None or notification.event.event_id in record.delivered:
                continue
            record.delivered.add(notification.event.event_id)
            record.next_seq += 1
            fresh.append(dataclasses.replace(notification, seq=record.next_seq))
        return fresh

    def _rehome(
        self,
        record: ShardedSubscriberRecord,
        now: int,
        notifications: List[Notification],
    ) -> None:
        """Subscribe the record on every newly-required shard.

        A new home runs the full subscribe flow — its corpus matches
        within the radius come back as notifications (deduped by
        :meth:`_absorb`), and its freshly built region lands in
        ``shard_regions`` via the shard transport, shrinking the held
        intersection.  Growing the held region's column span can demand
        further homes, so this loops to the fixpoint (at most K rounds).
        """
        while True:
            new = self._desired_homes(record) - record.homes
            if not new:
                return
            record.homes |= new
            subscription = record.subscription
            results = self.executor.run(
                {
                    shard_id: self._call(
                        shard_id, "subscribe",
                        subscription, record.location, record.velocity, now,
                    )
                    for shard_id in new
                }
            )
            for shard_id in sorted(results):
                shard_notifications, _ = results[shard_id]
                notifications.extend(self._absorb(shard_notifications))
            self._recompute_held(record)

    def _prune_homes(
        self,
        record: ShardedSubscriberRecord,
        now: int,
        notifications: List[Notification],
    ) -> None:
        """Drop every home the invariant no longer requires.

        Homes are sticky across ordinary movement (re-subscribing on
        return would re-run a corpus match), but across a *rebalance*
        stale homes are pure erosion: a migrated subscriber would stay
        registered on its pre-move owner forever, and after a few
        boundary moves every shard would hold every subscriber — exactly
        the load the repartition exists to split.  Dropping a
        non-required home only removes duplicate candidate matches; the
        required set still covers the owner, the notification circle and
        the held region's dilation, which is what makes sharding
        lossless.  Removing a region from the held intersection can only
        grow it, so the grown span may demand homes back — re-home to
        the fixpoint afterwards.
        """
        stale = record.homes - self._desired_homes(record)
        if not stale:
            return
        record.homes -= stale
        for shard_id in stale:
            record.shard_regions.pop(shard_id, None)
        self.executor.run(
            {
                shard_id: self._call(
                    shard_id, "unsubscribe", record.subscription.sub_id
                )
                for shard_id in stale
            }
        )
        self._recompute_held(record)
        self._rehome(record, now, notifications)

    def _settle(self, now: int, notifications: List[Notification]) -> None:
        """Drain pending region changes: merge, re-home, ship once.

        Every public operation ends here.  Shard constructions recorded
        in ``_dirty`` are folded into the held intersections; re-homing
        may trigger further constructions (drained in the next round);
        when the fleet is quiet each touched subscriber gets exactly one
        client-facing ship — a delta when only repairs happened, a full
        region otherwise.
        """
        shipped: Dict[int, object] = {}
        while True:
            with self._mutex:
                dirty, self._dirty = self._dirty, {}
            if not dirty:
                break
            for sub_id, change in dirty.items():
                record = self.subscribers.get(sub_id)
                if record is None:
                    continue
                if change.full or record.safe is None:
                    self._recompute_held(record)
                    shipped[sub_id] = "full"
                else:
                    record.safe, actually_removed = record.safe.subtract(
                        change.removed
                    )
                    if shipped.get(sub_id) != "full":
                        accumulator = shipped.setdefault(sub_id, set())
                        accumulator.update(actually_removed)
                self._rehome(record, now, notifications)
        for sub_id, what in shipped.items():
            record = self.subscribers.get(sub_id)
            if record is None or record.safe is None:
                continue
            if what == "full":
                self._ship_held(record)
            elif what:
                if self.transport is not None:
                    self.transport.ship_delta(sub_id, frozenset(what), record.safe)

    def _ship_held(self, record: ShardedSubscriberRecord) -> None:
        if self.transport is not None and record.safe is not None:
            self.transport.ship_region(record.subscription.sub_id, record.safe)

    # ------------------------------------------------------------------
    # Public surface (mirrors ElapsServer)
    # ------------------------------------------------------------------
    def bootstrap(self, events) -> None:
        """Load the initial event database, routed to the owning shards."""
        groups: Dict[int, List[Event]] = {}
        for event in events:
            groups.setdefault(self.shard_of_point(event.location), []).append(event)
        for shard_id, shard_events in sorted(groups.items()):
            self.shard_servers[shard_id].bootstrap(shard_events)

    def subscribe(
        self,
        subscription: Subscription,
        location: Point,
        velocity: Point,
        now: int = 0,
    ) -> Tuple[List[Notification], SafeRegion]:
        """Register a subscriber on every shard the invariant requires."""
        existing = self.subscribers.get(subscription.sub_id)
        record = ShardedSubscriberRecord(
            subscription=subscription,
            location=location,
            velocity=velocity,
            owner=self.shard_of_point(location),
            delivered=existing.delivered if existing is not None else set(),
        )
        # Pop-then-insert so a resubscriber moves to the *end* of the
        # coordinator's subscribe order — exactly where a single server's
        # subscription index puts it (delete + insert).  The order is
        # what :meth:`ElapsServer.resequence_subscriptions` restores on
        # shards that gain members during a rebalance.
        self.subscribers.pop(subscription.sub_id, None)
        self.subscribers[subscription.sub_id] = record
        notifications: List[Notification] = []
        if existing is not None and existing.homes:
            # Resubscribe: refresh the record on every shard that already
            # holds one (their delivered sets survive, matching the
            # single server's reconnect semantics).
            record.homes = set(existing.homes)
            results = self.executor.run(
                {
                    shard_id: self._call(
                        shard_id, "subscribe", subscription, location, velocity, now
                    )
                    for shard_id in record.homes
                }
            )
            for shard_id in sorted(results):
                shard_notifications, _ = results[shard_id]
                notifications.extend(self._absorb(shard_notifications))
            self._recompute_held(record)
        self._rehome(record, now, notifications)
        self._settle(now, notifications)
        return notifications, record.safe

    def unsubscribe(self, sub_id: int) -> None:
        """Drop the subscriber from the coordinator and every home."""
        record = self.subscribers.pop(sub_id, None)
        if record is None:
            raise KeyError(f"unknown subscriber {sub_id}")
        with self._mutex:
            self._dirty.pop(sub_id, None)
        if record.homes:
            self.executor.run(
                {
                    shard_id: self._call(shard_id, "unsubscribe", sub_id)
                    for shard_id in record.homes
                }
            )

    def publish(self, event: Event, now: int) -> List[Notification]:
        """Route one event to its owning shard; settle region changes."""
        shard_id = self.shard_of_point(event.location)
        results = self.executor.run(
            {shard_id: self._call(shard_id, "publish", event, now)}
        )
        notifications = self._absorb(results[shard_id])
        self._note_load([event])
        self._settle(now, notifications)
        self._maybe_rebalance(now, notifications)
        return notifications

    def publish_batch(self, events: List[Event], now: int) -> List[Notification]:
        """Split a burst by owning shard; merge notifications in order.

        Each event belongs to exactly one shard, so merging the per-shard
        notification lists by original event position (a stable sort)
        reproduces the single server's order: within one event the
        notified subscribers all came from that event's shard, already in
        subscription-index order.

        Every worker runs the batched subscription matcher on its slice
        (``SubscriptionIndex.match_batch`` via ``_publish_batch``), so
        the per-event matching residual that does not split with K is
        amortised *within* each shard too; the ``match_batch_probes`` /
        ``partitions_pruned`` counters it accumulates merge through
        :meth:`merged_metrics` like every other field.
        """
        events = list(events)
        if not events:
            return []
        groups: Dict[int, List[Event]] = {}
        for event in events:
            groups.setdefault(self.shard_of_point(event.location), []).append(event)
        results = self.executor.run(
            {
                shard_id: self._call(shard_id, "publish_batch", shard_events, now)
                for shard_id, shard_events in groups.items()
            }
        )
        position = {
            event.event_id: index for index, event in enumerate(events)
        }
        merged: List[Notification] = []
        for shard_id in sorted(results):
            merged.extend(results[shard_id])
        merged.sort(key=lambda n: position.get(n.event.event_id, len(events)))
        notifications = self._absorb(merged)
        self._note_load(events)
        self._settle(now, notifications)
        self._maybe_rebalance(now, notifications)
        return notifications

    def report_location(
        self, sub_id: int, location: Point, velocity: Point, now: int
    ) -> Tuple[List[Notification], SafeRegion]:
        """Fan a client report out to every home; intersect the regions."""
        record = self.subscribers[sub_id]
        record.location = location
        record.velocity = velocity
        results = self.executor.run(
            {
                shard_id: self._call(
                    shard_id, "report_location", sub_id, location, velocity, now
                )
                for shard_id in record.homes
            }
        )
        notifications: List[Notification] = []
        for shard_id in sorted(results):
            shard_notifications, _ = results[shard_id]
            notifications.extend(self._absorb(shard_notifications))
        self._settle(now, notifications)
        return notifications, record.safe

    def resync(
        self,
        sub_id: int,
        location: Point,
        velocity: Point,
        received,
        now: int,
    ) -> Tuple[List[Notification], SafeRegion]:
        """Reconcile a reconnecting client against every home."""
        record = self.subscribers[sub_id]
        record.location = location
        record.velocity = velocity
        record.delivered = set(received)
        results = self.executor.run(
            {
                shard_id: self._call(
                    shard_id, "resync", sub_id, location, velocity, received, now
                )
                for shard_id in record.homes
            }
        )
        notifications: List[Notification] = []
        for shard_id in sorted(results):
            shard_notifications, _ = results[shard_id]
            notifications.extend(self._absorb(shard_notifications))
        self._settle(now, notifications)
        return notifications, record.safe

    def expire_due_events(self, now: int) -> int:
        """Expire on every shard; Lemma 4 — still no client traffic."""
        results = self.executor.run(
            {
                spec.shard_id: self._call(spec.shard_id, "expire_due_events", now)
                for spec in self.specs
            }
        )
        return sum(results.values())

    def rebuild_all(self, now: int) -> None:
        """Rebuild every record on every shard with fresh statistics."""
        self.executor.run(
            {
                spec.shard_id: self._call(spec.shard_id, "rebuild_all", now)
                for spec in self.specs
            }
        )
        self._settle(now, [])

    # ------------------------------------------------------------------
    # Load-adaptive repartitioning (DESIGN.md §15)
    # ------------------------------------------------------------------
    def _bounds(self) -> List[int]:
        """The current column boundaries ``[0, c1, ..., grid.n]``."""
        return [spec.col_lo for spec in self.specs] + [self.grid.n]

    def _note_load(self, events: Sequence[Event]) -> None:
        """Record published events in the per-column load counters."""
        cell_of = self.grid.cell_of
        load = self._column_load
        for event in events:
            load[cell_of(event.location)[0]] += 1.0
        self._events_seen += len(events)
        self._events_since_check += len(events)

    def _band_loads(self) -> List[float]:
        """Observed load per current band (sum of its column counters)."""
        return [
            sum(self._column_load[spec.col_lo : spec.col_hi])
            for spec in self.specs
        ]

    def shard_loads(self) -> List[float]:
        """The rebalance signal: observed event load per band."""
        return self._band_loads()

    def _balanced_bounds(self) -> List[int]:
        """Column boundaries giving every band an equal share of the
        observed load — the equi-depth cut over the column histogram.

        Each cut lands where the load prefix sum crosses ``k/K`` of the
        total, clamped so no band goes empty (every band keeps at least
        one column, matching :func:`partition_columns`'s contract).
        """
        n = self.grid.n
        shards = len(self.specs)
        prefix = [0.0]
        for value in self._column_load:
            prefix.append(prefix[-1] + value)
        total = prefix[-1]
        bounds = [0]
        for k in range(1, shards):
            lo = bounds[-1] + 1
            hi = n - (shards - k)
            cut = bisect.bisect_left(prefix, total * k / shards, lo=lo, hi=hi)
            bounds.append(cut)
        bounds.append(n)
        return bounds

    def _maybe_rebalance(self, now: int, notifications: List[Notification]) -> None:
        """Policy-driven check after a publish: move the boundaries when
        the hottest band's load share crosses the imbalance threshold."""
        policy = self.rebalance_policy
        if policy is None or len(self.specs) < 2:
            return
        if self._events_seen < policy.min_events:
            return
        if self._events_since_check < policy.check_every:
            return
        self._events_since_check = 0
        loads = self._band_loads()
        total = sum(loads)
        if total <= 0.0:
            return
        if max(loads) <= policy.max_imbalance * (total / len(loads)):
            return
        bounds = self._balanced_bounds()
        if bounds == self._bounds():
            return
        self._rebalance_to(bounds, now, notifications)

    def rebalance_now(self, now: int = 0, bounds: Optional[Sequence[int]] = None) -> bool:
        """Force one boundary move, policy or no policy.

        With ``bounds`` the fleet re-cuts to exactly those column
        boundaries; without, it cuts to :meth:`_balanced_bounds` over the
        load observed so far (a no-op before any publish).  Returns True
        when the boundaries actually changed.  Useful for tests and for
        operators pre-warming a known hotspot.
        """
        if bounds is None:
            if not any(self._column_load):
                return False
            bounds = self._balanced_bounds()
        bounds = [int(b) for b in bounds]
        if bounds == self._bounds():
            return False
        self._rebalance_to(bounds, now, [])
        return True

    def _rebalance_to(
        self, bounds: Sequence[int], now: int, notifications: List[Notification]
    ) -> None:
        """Move the band boundaries to ``bounds``: migrate events,
        re-home subscribers, restore notification order, persist.

        The move emits no fresh client deliveries by construction: every
        live event within a subscriber's radius was already delivered
        under the homing invariant, so the corpus matches produced by
        re-homing are all absorbed as duplicates, and migration itself
        (extract + bootstrap) never runs arrival processing (Def. 1 is a
        conjunction over events — removing one can only grow true safe
        regions, and the receiving shard's regions are rebuilt through
        the normal re-home flow).
        """
        n = self.grid.n
        old_map = self._shard_by_column
        new_specs = partition_columns(self.grid, bounds)
        new_map = [0] * n
        for spec in new_specs:
            for column in range(spec.col_lo, spec.col_hi):
                new_map[column] = spec.shard_id
        if new_map == old_map:
            return
        pre_members: List[Set[int]] = [
            {
                sub_id
                for sub_id, record in self.subscribers.items()
                if shard_id in record.homes
            }
            for shard_id in range(len(self.specs))
        ]
        # 1. Extract every moving column's events from its donor shard,
        #    as contiguous half-open ranges (journaled on the donor).
        donor_ranges: Dict[int, List[Tuple[int, int]]] = {}
        column = 0
        while column < n:
            donor = old_map[column]
            if new_map[column] == donor:
                column += 1
                continue
            start = column
            while (
                column < n
                and old_map[column] == donor
                and new_map[column] != donor
            ):
                column += 1
            donor_ranges.setdefault(donor, []).append((start, column))
        extracted = self.executor.run(
            {
                donor: self._call(
                    donor, "extract_events_in_columns", tuple(ranges)
                )
                for donor, ranges in donor_ranges.items()
            }
        )
        # 2. Switch the routing map; from here on new operations land on
        #    the new owners.
        self.specs = new_specs
        self._shard_by_column = new_map
        # 3. Hand the moved events to their new owners (journaled there
        #    as a bootstrap), in deterministic arrival order.
        regroup: Dict[int, List[Event]] = {}
        for donor in sorted(extracted):
            for event in extracted[donor]:
                regroup.setdefault(
                    self.shard_of_point(event.location), []
                ).append(event)
        for group in regroup.values():
            group.sort(key=lambda e: (e.arrived_at, e.event_id))
        if regroup:
            self.executor.run(
                {
                    shard_id: self._call(shard_id, "bootstrap", group)
                    for shard_id, group in regroup.items()
                }
            )
        # 4. Re-home every subscriber under the new map (owners may have
        #    changed; new homes run the full subscribe flow, their corpus
        #    matches deduped to nothing by _absorb), then prune the homes
        #    the invariant no longer requires under the new boundaries.
        for record in list(self.subscribers.values()):
            record.owner = self.shard_of_point(record.location)
            self._rehome(record, now, notifications)
            self._prune_homes(record, now, notifications)
        # 5. Restore single-server notification order on every shard
        #    that gained members: re-homed subscribers were appended at
        #    the end of the shard's index, out of subscribe order.
        order = tuple(self.subscribers)
        gaining = [
            shard_id
            for shard_id in range(len(self.specs))
            if {
                sub_id
                for sub_id, record in self.subscribers.items()
                if shard_id in record.homes
            }
            - pre_members[shard_id]
        ]
        if gaining:
            self.executor.run(
                {
                    shard_id: self._call(
                        shard_id, "resequence_subscriptions", order
                    )
                    for shard_id in gaining
                }
            )
        self._settle(now, notifications)
        # 6. Age the load signal so the policy tracks a moving hotspot.
        decay = (
            self.rebalance_policy.decay
            if self.rebalance_policy is not None
            else RebalancePolicy().decay
        )
        self._column_load = [value * decay for value in self._column_load]
        self.rebalances += 1
        self._persist_bounds()

    def _persist_bounds(self) -> None:
        """Write the live boundaries next to the band journals.

        The workers journal the migration itself (EXTRACT on the donor,
        BOOTSTRAP on the receiver), but the *routing map* lives only in
        the coordinator — without it a recovered fleet would route new
        events by the original even split and break the homing
        invariant.  A tiny ``fleet.json`` under the journal root closes
        the gap; fleets without a journal skip it (nothing to recover).
        """
        if self.config.journal is None:
            return
        os.makedirs(self.config.journal.path, exist_ok=True)
        path = os.path.join(self.config.journal.path, "fleet.json")
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(
                {"bounds": self._bounds(), "rebalances": self.rebalances}, fh
            )
        os.replace(tmp, path)

    def _load_bounds(self) -> Optional[Dict[str, object]]:
        if self.config.journal is None:
            return None
        path = os.path.join(self.config.journal.path, "fleet.json")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None

    def system_stats(self, now: int) -> SystemStats:
        """Fleet-wide cost-model inputs: summed rate, summed corpus."""
        shard_stats = [worker.system_stats(now) for worker in self.shard_servers]
        return SystemStats(
            event_rate=sum(s.event_rate for s in shard_stats),
            total_events=sum(s.total_events for s in shard_stats),
        )

    # ------------------------------------------------------------------
    # Durability (DESIGN.md §13): per-band journals, fleet recovery
    # ------------------------------------------------------------------
    def snapshot(self) -> None:
        """Snapshot every worker (each rotates its own band journal)."""
        for worker in self.shard_servers:
            worker.snapshot()

    def recover(self) -> int:
        """Recover every worker from its band journal, then rebuild the
        coordinator's routing state from the recovered workers.

        The coordinator itself keeps no journal — everything it holds is
        derivable: homes are the shards holding a record, the owner is
        the shard of the last known location, the held region is the
        usual K-way intersection, and the global ``delivered`` set is the
        union of the workers' sets (exact, because each event lives in
        exactly one shard's corpus, so every client-visible delivery was
        recorded by precisely the worker that owns the event).  The
        coordinator-level sequence counter restarts at the delivered-set
        size — each historical stamp added one id, and a reconnecting
        client tracks ``max(seen, new)`` anyway, so a conservative
        restart cannot corrupt gap detection.  Returns the total number
        of tail records the workers applied.

        When the fleet rebalanced before the crash, the persisted
        ``fleet.json`` boundary map is restored *first*, so the routing
        the coordinator rebuilds (owners, homes) matches the column
        ownership the band journals replay into the workers.
        """
        fleet_meta = self._load_bounds()
        if fleet_meta is not None:
            self.specs = partition_columns(
                self.grid, [int(b) for b in fleet_meta["bounds"]]
            )
            self._shard_by_column = [0] * self.grid.n
            for spec in self.specs:
                for column in range(spec.col_lo, spec.col_hi):
                    self._shard_by_column[column] = spec.shard_id
            self.rebalances = int(fleet_meta.get("rebalances", 0))
        applied = 0
        for worker in self.shard_servers:
            applied += worker.recover()
        self.subscribers = {}
        with self._mutex:
            self._dirty = {}
        for shard_id, worker in enumerate(self.shard_servers):
            for sub_id, shard_record in worker.subscribers.items():
                record = self.subscribers.get(sub_id)
                if record is None:
                    record = ShardedSubscriberRecord(
                        subscription=shard_record.subscription,
                        location=shard_record.location,
                        velocity=shard_record.velocity,
                        owner=self.shard_of_point(shard_record.location),
                    )
                    self.subscribers[sub_id] = record
                record.homes.add(shard_id)
                record.delivered |= shard_record.delivered
                if shard_record.safe is not None:
                    record.shard_regions[shard_id] = shard_record.safe
        for record in self.subscribers.values():
            record.next_seq = len(record.delivered)
            self._recompute_held(record)
        return applied

    # ------------------------------------------------------------------
    # Aggregate views (shared surface with ElapsServer)
    # ------------------------------------------------------------------
    def merged_metrics(self) -> CommunicationStats:
        """Coordinator counters plus every worker's, field-wise."""
        merged = self.metrics
        for worker in self.shard_servers:
            merged = merged.merged_with(worker.metrics)
        return merged

    def merged_registry(self) -> MetricsRegistry:
        """Coordinator registry plus every worker's (histograms bucket-wise)."""
        merged = self.registry
        for worker in self.shard_servers:
            merged = merged.merged_with(worker.registry)
        return merged

    def corpus_matches(self, expression) -> Iterator[Event]:
        """Every live be-matching event, across all shards' corpora."""
        return itertools.chain.from_iterable(
            worker.corpus_matches(expression) for worker in self.shard_servers
        )

    def delivered_ids(self, sub_id: int) -> FrozenSet[int]:
        """The coordinator's global delivered set for ``sub_id``."""
        return frozenset(self.subscribers[sub_id].delivered)

    def close(self) -> None:
        """Shut the executor down and release the workers' journals."""
        self.executor.close()
        for worker in self.shard_servers:
            worker.close()

    def __enter__(self) -> "ShardedElapsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
