"""Spatially sharded Elaps: K workers behind one coordinator.

The grid is split into K contiguous **column bands** (rectangular shards
of ``grid.space``); each band is owned by a full, independent
:class:`~repro.system.server.ElapsServer` — its own BEQ-Tree, its own
subscription index, its own impact index — built from one shared
:class:`~repro.system.config.ServerConfig`.  The coordinator on top
implements the single-server public surface, so the TCP layer, the
simulation, the CLI and the benchmarks drive a fleet exactly like they
drive one server.

Routing rules (DESIGN.md §12):

* **Events** go to exactly one shard — the one whose band contains the
  event point.  Each shard therefore holds a disjoint slice of the event
  corpus, and the owning shard is the sole delivery authority for its
  events: corpus matching can never duplicate a notification across
  workers.
* **Subscribers** are *multi-homed*: a subscriber lives on every shard
  whose band its notification circle or dilated safe region overlaps
  (dilation by the notification radius — the impact reach).  Definition 1
  is a conjunction over events, so the region that is safe against *all*
  events is the **intersection** of the per-shard safe regions; the
  coordinator holds that intersection and ships it to the client.
  Per-shard Lemma 1 keeps each worker's impact region covering the
  notification circle whenever the subscriber sits inside the *held*
  (intersection) region, because the held region is a subset of every
  shard's own region.
* **Re-homing** happens whenever a reconstruction (or a location change)
  moves the dilated held region across a band boundary: the coordinator
  subscribes the subscriber on the newly-overlapped shards.  Homes are
  sticky — a shard once homed keeps its record until unsubscribe — so a
  shard's per-subscriber ``delivered`` set never forgets, and the
  coordinator keeps a global delivered set as the final dedup guard for
  the re-homing corpus-match path.

Execution is pluggable through :class:`ShardExecutor`:
:class:`SerialExecutor` runs shard tasks in ascending shard order on the
calling thread (deterministic — the golden-trace differential runs under
it), :class:`ThreadedExecutor` fans them out over a thread pool with one
lock per shard (workers share no state, so per-shard locking is the only
synchronisation the fleet needs).
"""

from __future__ import annotations

import dataclasses
import inspect
import itertools
import math
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field as dataclass_field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core import SafeRegion, SafeRegionStrategy, SystemStats
from ..expressions import Event, Subscription
from ..geometry import Cell, Grid, Point, Rect
from .config import ServerConfig, Transport
from .metrics import CommunicationStats
from .observability import MetricsRegistry
from .server import ElapsServer, Notification

__all__ = [
    "SerialExecutor",
    "ShardExecutor",
    "ShardSpec",
    "ShardedElapsServer",
    "ThreadedExecutor",
    "partition_columns",
]


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the space: a contiguous band of grid columns."""

    shard_id: int
    #: owned grid columns ``[col_lo, col_hi)``
    col_lo: int
    col_hi: int
    #: the rectangle of space the band covers
    rect: Rect


def partition_columns(grid: Grid, shards: int) -> List[ShardSpec]:
    """Split ``grid.space`` into ``shards`` near-equal column bands.

    Bands are maximally even (sizes differ by at most one column), cover
    every column exactly once, and are never empty — which caps the shard
    count at the grid resolution.
    """
    if shards < 1:
        raise ValueError(f"shard count must be positive, got {shards}")
    if shards > grid.n:
        raise ValueError(
            f"cannot split {grid.n} grid columns into {shards} shards"
        )
    bounds = [round(k * grid.n / shards) for k in range(shards + 1)]
    specs = []
    for shard_id in range(shards):
        lo, hi = bounds[shard_id], bounds[shard_id + 1]
        rect = Rect(
            grid.space.x_min + lo * grid.cell_width,
            grid.space.y_min,
            grid.space.x_min + hi * grid.cell_width,
            grid.space.y_max,
        )
        specs.append(ShardSpec(shard_id, lo, hi, rect))
    return specs


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class ShardExecutor:
    """How the coordinator runs work on its shards.

    ``run`` takes ``{shard_id: thunk}`` and returns ``{shard_id:
    result}``.  Implementations decide *where* the thunks run; the
    coordinator never assumes more than "every thunk ran to completion
    before ``run`` returns".
    """

    def run(self, tasks: Mapping[int, Callable[[], object]]) -> Dict[int, object]:
        """Run every thunk; return its result keyed by shard id."""
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (a no-op for serial execution)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(ShardExecutor):
    """Run shard tasks inline, in ascending shard order.

    Fully deterministic — the sharded-vs-single golden differential is
    pinned under this executor — and the right choice whenever the
    workload is driven from tests or a single-threaded simulation.
    """

    def run(self, tasks: Mapping[int, Callable[[], object]]) -> Dict[int, object]:
        """Run the thunks one after another, ascending shard order."""
        return {shard_id: tasks[shard_id]() for shard_id in sorted(tasks)}


class ThreadedExecutor(ShardExecutor):
    """Run shard tasks on a thread pool, one lock per shard.

    Shards share no mutable state (each worker owns its indexes
    outright), so the per-shard lock is the only synchronisation needed:
    it serialises tasks that target the *same* shard while tasks for
    different shards run concurrently.  The pool is created lazily on
    first use and sized to ``max_workers`` (default: the first call's
    fan-out width).
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._locks: Dict[int, threading.Lock] = {}
        self._admin = threading.Lock()

    def _lock_for(self, shard_id: int) -> threading.Lock:
        with self._admin:
            lock = self._locks.get(shard_id)
            if lock is None:
                lock = self._locks[shard_id] = threading.Lock()
            return lock

    def _ensure_pool(self, width: int) -> ThreadPoolExecutor:
        with self._admin:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers or max(width, 1),
                    thread_name_prefix="elaps-shard",
                )
            return self._pool

    def run(self, tasks: Mapping[int, Callable[[], object]]) -> Dict[int, object]:
        """Fan the thunks out over the pool, serialised per shard."""
        if len(tasks) == 1:
            # Single-shard work (the common publish) skips the pool
            # round-trip but still honours the shard lock.
            ((shard_id, thunk),) = tasks.items()
            with self._lock_for(shard_id):
                return {shard_id: thunk()}

        def _locked(shard_id: int, thunk: Callable[[], object]) -> object:
            with self._lock_for(shard_id):
                return thunk()

        pool = self._ensure_pool(len(tasks))
        futures = {
            shard_id: pool.submit(_locked, shard_id, tasks[shard_id])
            for shard_id in sorted(tasks)
        }
        return {shard_id: future.result() for shard_id, future in futures.items()}

    def close(self) -> None:
        """Shut the pool down and wait for in-flight shard work."""
        with self._admin:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


# ----------------------------------------------------------------------
# Coordinator-side state
# ----------------------------------------------------------------------
@dataclass
class ShardedSubscriberRecord:
    """The coordinator's view of one subscriber."""

    subscription: Subscription
    location: Point
    velocity: Point
    #: the shard containing the subscribe-time location
    owner: int
    #: every shard currently holding a full per-shard record (sticky)
    homes: Set[int] = dataclass_field(default_factory=set)
    #: global delivered-event ids — the final dedup guard
    delivered: Set[int] = dataclass_field(default_factory=set)
    #: the latest safe region shipped by each homed shard
    shard_regions: Dict[int, SafeRegion] = dataclass_field(default_factory=dict)
    #: the held region: the intersection of ``shard_regions`` over homes
    safe: Optional[SafeRegion] = None
    #: coordinator-level delivery sequence number; the coordinator
    #: re-stamps every fresh notification so the client sees one gapless
    #: stream regardless of which shard produced the delivery
    next_seq: int = 0


@dataclass
class _Dirty:
    """Pending region changes for one subscriber within one operation."""

    #: a shard shipped a *full* region — the held intersection must be
    #: recomputed and re-shipped in full
    full: bool = False
    #: cells repairs carved out (delta path; ignored once ``full`` is set)
    removed: Set[Cell] = dataclass_field(default_factory=set)


class _ShardTransport(Transport):
    """The transport each worker is built with: everything a shard ships
    lands at the coordinator, never directly at a client."""

    def __init__(self, coordinator: "ShardedElapsServer", shard_id: int) -> None:
        self._coordinator = coordinator
        self._shard_id = shard_id

    def ship_region(self, sub_id: int, region: SafeRegion) -> None:
        """Record this shard's freshly built region at the coordinator."""
        self._coordinator._on_shard_region(self._shard_id, sub_id, region)

    def ship_delta(
        self, sub_id: int, removed: FrozenSet[Cell], region: SafeRegion
    ) -> None:
        """Record this shard's repair delta at the coordinator."""
        self._coordinator._on_shard_delta(self._shard_id, sub_id, removed, region)

    def locate(self, sub_id: int) -> Optional[Tuple[Point, Point]]:
        """Ping through the coordinator's client-facing transport."""
        return self._coordinator._locate_subscriber(sub_id)


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------
class ShardedElapsServer:
    """K-shard Elaps fleet behind the single-server public surface.

    Construction mirrors ``ElapsServer(grid, strategy, config)``; every
    worker is built from the *same* :class:`ServerConfig`.  ``strategy``
    may be a :class:`~repro.core.SafeRegionStrategy` instance (shared by
    all workers — the bundled strategies are stateless per ``construct``
    call) or a factory producing one fresh strategy per shard.  The
    factory takes either no argument or the shard's :class:`ShardSpec` —
    the latter lets a fleet split a global region budget across bands
    (the client-held region is the K-way intersection of the per-shard
    regions, so each shard only needs ``max_cells / K`` of the budget;
    deliveries are unaffected either way).
    """

    def __init__(
        self,
        grid: Grid,
        strategy,
        config: Optional[ServerConfig] = None,
        *,
        shards: int = 4,
        executor: Optional[ShardExecutor] = None,
        transport: Optional[Transport] = None,
        event_index_factory: Optional[Callable[[], object]] = None,
        subscription_index_factory: Optional[Callable[[], object]] = None,
    ) -> None:
        self.grid = grid
        self.config = config or ServerConfig()
        self.specs = partition_columns(grid, shards)
        self.executor = executor or SerialExecutor()
        #: the client-facing seam, exactly as on a single server
        self.transport: Optional[Transport] = transport

        if isinstance(strategy, SafeRegionStrategy):
            factory: Callable[[ShardSpec], SafeRegionStrategy] = (
                lambda spec: strategy
            )
        elif callable(strategy):
            takes_spec = len(inspect.signature(strategy).parameters) >= 1
            factory = strategy if takes_spec else lambda spec: strategy()
        else:
            raise TypeError(
                "strategy must be a SafeRegionStrategy or a factory "
                f"(taking nothing or the ShardSpec), got {strategy!r}"
            )
        # Per-band durability: each worker journals autonomously under a
        # ``band-<k>/`` subdirectory of the configured journal path (the
        # one place workers deviate from the shared config).
        def worker_config(spec: ShardSpec) -> ServerConfig:
            """This band's config: shared knobs, band-local journal."""
            if self.config.journal is None:
                return self.config
            return self.config.with_(journal=self.config.journal.for_shard(spec.shard_id))

        self.shard_servers: List[ElapsServer] = [
            ElapsServer(
                grid,
                factory(spec),
                worker_config(spec),
                event_index=event_index_factory() if event_index_factory else None,
                subscription_index=(
                    subscription_index_factory() if subscription_index_factory else None
                ),
                transport=_ShardTransport(self, spec.shard_id),
            )
            for spec in self.specs
        ]
        #: column index → owning shard id
        self._shard_by_column: List[int] = [0] * grid.n
        for spec in self.specs:
            for column in range(spec.col_lo, spec.col_hi):
                self._shard_by_column[column] = spec.shard_id
        #: grid columns one notification radius can span (dilation reach)
        self._reach_cache: Dict[float, int] = {}

        self.subscribers: Dict[int, ShardedSubscriberRecord] = {}
        #: coordinator-level counters: client-facing region pushes; the
        #: per-worker activity lives in each shard's own metrics and is
        #: folded in by :meth:`merged_metrics`
        self.metrics = CommunicationStats()
        self.metrics.bytes_measured = self.config.measure_bytes
        self.registry = MetricsRegistry(self.metrics)
        self.tracer = self.registry.tracer
        self._dirty: Dict[int, _Dirty] = {}
        self._mutex = threading.Lock()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        """The shard count K."""
        return len(self.shard_servers)

    def shard_of_point(self, p: Point) -> int:
        """The shard whose band contains ``p``."""
        return self._shard_by_column[self.grid.cell_of(p)[0]]

    def _column_reach(self, radius: float) -> int:
        """Columns a dilation by ``radius`` can add on either side."""
        reach = self._reach_cache.get(radius)
        if reach is None:
            reach = int(math.ceil(radius / self.grid.cell_width)) + 1
            self._reach_cache[radius] = reach
        return reach

    def _shards_in_columns(self, lo: int, hi: int) -> Set[int]:
        lo = max(lo, 0)
        hi = min(hi, self.grid.n - 1)
        if lo > hi:
            return set()
        return set(self._shard_by_column[lo : hi + 1])

    def _desired_homes(self, record: ShardedSubscriberRecord) -> Set[int]:
        """Every shard the homing invariant requires right now.

        The invariant that makes sharding lossless: a subscriber is homed
        on (a) its owner shard, (b) every shard overlapping the columns
        of its notification circle at the last known location — while
        the held region is empty the client reports every tick, and this
        keeps the shard holding any within-radius event responsible for
        it — and (c) every shard overlapping the dilation of the held
        safe region, so an event that could invalidate the held region
        always lands on a shard that knows the subscriber (per-shard
        Definition 2).
        """
        radius = record.subscription.radius
        reach = self._column_reach(radius)
        column = self.grid.cell_of(record.location)[0]
        homes = {record.owner}
        homes |= self._shards_in_columns(column - reach, column + reach)
        held = record.safe
        if held is not None and not held.is_empty():
            if held.complement:
                return set(range(self.shards))
            columns = [i for (i, _) in held.cells]
            homes |= self._shards_in_columns(
                min(columns) - reach, max(columns) + reach
            )
        return homes

    # ------------------------------------------------------------------
    # Shard-to-coordinator callbacks (may arrive from worker threads)
    # ------------------------------------------------------------------
    def _on_shard_region(self, shard_id: int, sub_id: int, region: SafeRegion) -> None:
        with self._mutex:
            record = self.subscribers.get(sub_id)
            if record is None:
                return
            record.shard_regions[shard_id] = region
            self._dirty.setdefault(sub_id, _Dirty()).full = True

    def _on_shard_delta(
        self,
        shard_id: int,
        sub_id: int,
        removed: FrozenSet[Cell],
        region: SafeRegion,
    ) -> None:
        with self._mutex:
            record = self.subscribers.get(sub_id)
            if record is None:
                return
            record.shard_regions[shard_id] = region
            self._dirty.setdefault(sub_id, _Dirty()).removed.update(removed)

    def _locate_subscriber(self, sub_id: int) -> Optional[Tuple[Point, Point]]:
        transport = self.transport
        if transport is None:
            return None
        answer = transport.locate(sub_id)
        if answer is not None:
            record = self.subscribers.get(sub_id)
            if record is not None:
                record.location, record.velocity = answer
        return answer

    # ------------------------------------------------------------------
    # Held-region maintenance
    # ------------------------------------------------------------------
    def _recompute_held(self, record: ShardedSubscriberRecord) -> None:
        held: Optional[SafeRegion] = None
        for shard_id in sorted(record.homes):
            region = record.shard_regions.get(shard_id)
            if region is None:
                continue
            held = region if held is None else held.intersected_with(region)
        record.safe = held

    def _absorb(self, notifications: Sequence[Notification]) -> List[Notification]:
        """Dedup shard notifications against the global delivered sets.

        Fresh notifications are re-stamped with the coordinator-level
        sequence number: each worker numbers its own deliveries, but the
        client sees one stream, so the coordinator's counter is the one
        that must be gapless.
        """
        fresh: List[Notification] = []
        for notification in notifications:
            record = self.subscribers.get(notification.sub_id)
            if record is None or notification.event.event_id in record.delivered:
                continue
            record.delivered.add(notification.event.event_id)
            record.next_seq += 1
            fresh.append(dataclasses.replace(notification, seq=record.next_seq))
        return fresh

    def _rehome(
        self,
        record: ShardedSubscriberRecord,
        now: int,
        notifications: List[Notification],
    ) -> None:
        """Subscribe the record on every newly-required shard.

        A new home runs the full subscribe flow — its corpus matches
        within the radius come back as notifications (deduped by
        :meth:`_absorb`), and its freshly built region lands in
        ``shard_regions`` via the shard transport, shrinking the held
        intersection.  Growing the held region's column span can demand
        further homes, so this loops to the fixpoint (at most K rounds).
        """
        while True:
            new = self._desired_homes(record) - record.homes
            if not new:
                return
            record.homes |= new
            subscription = record.subscription
            results = self.executor.run(
                {
                    shard_id: (
                        lambda worker=self.shard_servers[shard_id]: worker.subscribe(
                            subscription, record.location, record.velocity, now
                        )
                    )
                    for shard_id in new
                }
            )
            for shard_id in sorted(results):
                shard_notifications, _ = results[shard_id]
                notifications.extend(self._absorb(shard_notifications))
            self._recompute_held(record)

    def _settle(self, now: int, notifications: List[Notification]) -> None:
        """Drain pending region changes: merge, re-home, ship once.

        Every public operation ends here.  Shard constructions recorded
        in ``_dirty`` are folded into the held intersections; re-homing
        may trigger further constructions (drained in the next round);
        when the fleet is quiet each touched subscriber gets exactly one
        client-facing ship — a delta when only repairs happened, a full
        region otherwise.
        """
        shipped: Dict[int, object] = {}
        while True:
            with self._mutex:
                dirty, self._dirty = self._dirty, {}
            if not dirty:
                break
            for sub_id, change in dirty.items():
                record = self.subscribers.get(sub_id)
                if record is None:
                    continue
                if change.full or record.safe is None:
                    self._recompute_held(record)
                    shipped[sub_id] = "full"
                else:
                    record.safe, actually_removed = record.safe.subtract(
                        change.removed
                    )
                    if shipped.get(sub_id) != "full":
                        accumulator = shipped.setdefault(sub_id, set())
                        accumulator.update(actually_removed)
                self._rehome(record, now, notifications)
        for sub_id, what in shipped.items():
            record = self.subscribers.get(sub_id)
            if record is None or record.safe is None:
                continue
            if what == "full":
                self._ship_held(record)
            elif what:
                if self.transport is not None:
                    self.transport.ship_delta(sub_id, frozenset(what), record.safe)

    def _ship_held(self, record: ShardedSubscriberRecord) -> None:
        if self.transport is not None and record.safe is not None:
            self.transport.ship_region(record.subscription.sub_id, record.safe)

    # ------------------------------------------------------------------
    # Public surface (mirrors ElapsServer)
    # ------------------------------------------------------------------
    def bootstrap(self, events) -> None:
        """Load the initial event database, routed to the owning shards."""
        groups: Dict[int, List[Event]] = {}
        for event in events:
            groups.setdefault(self.shard_of_point(event.location), []).append(event)
        for shard_id, shard_events in sorted(groups.items()):
            self.shard_servers[shard_id].bootstrap(shard_events)

    def subscribe(
        self,
        subscription: Subscription,
        location: Point,
        velocity: Point,
        now: int = 0,
    ) -> Tuple[List[Notification], SafeRegion]:
        """Register a subscriber on every shard the invariant requires."""
        existing = self.subscribers.get(subscription.sub_id)
        record = ShardedSubscriberRecord(
            subscription=subscription,
            location=location,
            velocity=velocity,
            owner=self.shard_of_point(location),
            delivered=existing.delivered if existing is not None else set(),
        )
        self.subscribers[subscription.sub_id] = record
        notifications: List[Notification] = []
        if existing is not None and existing.homes:
            # Resubscribe: refresh the record on every shard that already
            # holds one (their delivered sets survive, matching the
            # single server's reconnect semantics).
            record.homes = set(existing.homes)
            results = self.executor.run(
                {
                    shard_id: (
                        lambda worker=self.shard_servers[shard_id]: worker.subscribe(
                            subscription, location, velocity, now
                        )
                    )
                    for shard_id in record.homes
                }
            )
            for shard_id in sorted(results):
                shard_notifications, _ = results[shard_id]
                notifications.extend(self._absorb(shard_notifications))
            self._recompute_held(record)
        self._rehome(record, now, notifications)
        self._settle(now, notifications)
        return notifications, record.safe

    def unsubscribe(self, sub_id: int) -> None:
        """Drop the subscriber from the coordinator and every home."""
        record = self.subscribers.pop(sub_id, None)
        if record is None:
            raise KeyError(f"unknown subscriber {sub_id}")
        with self._mutex:
            self._dirty.pop(sub_id, None)
        if record.homes:
            self.executor.run(
                {
                    shard_id: (
                        lambda worker=self.shard_servers[
                            shard_id
                        ]: worker.unsubscribe(sub_id)
                    )
                    for shard_id in record.homes
                }
            )

    def publish(self, event: Event, now: int) -> List[Notification]:
        """Route one event to its owning shard; settle region changes."""
        shard_id = self.shard_of_point(event.location)
        worker = self.shard_servers[shard_id]
        results = self.executor.run({shard_id: lambda: worker.publish(event, now)})
        notifications = self._absorb(results[shard_id])
        self._settle(now, notifications)
        return notifications

    def publish_batch(self, events: List[Event], now: int) -> List[Notification]:
        """Split a burst by owning shard; merge notifications in order.

        Each event belongs to exactly one shard, so merging the per-shard
        notification lists by original event position (a stable sort)
        reproduces the single server's order: within one event the
        notified subscribers all came from that event's shard, already in
        subscription-index order.
        """
        events = list(events)
        if not events:
            return []
        groups: Dict[int, List[Event]] = {}
        for event in events:
            groups.setdefault(self.shard_of_point(event.location), []).append(event)
        results = self.executor.run(
            {
                shard_id: (
                    lambda worker=self.shard_servers[shard_id],
                    shard_events=shard_events: worker.publish_batch(
                        shard_events, now
                    )
                )
                for shard_id, shard_events in groups.items()
            }
        )
        position = {id(event): index for index, event in enumerate(events)}
        merged: List[Notification] = []
        for shard_id in sorted(results):
            merged.extend(results[shard_id])
        merged.sort(key=lambda n: position.get(id(n.event), len(events)))
        notifications = self._absorb(merged)
        self._settle(now, notifications)
        return notifications

    def report_location(
        self, sub_id: int, location: Point, velocity: Point, now: int
    ) -> Tuple[List[Notification], SafeRegion]:
        """Fan a client report out to every home; intersect the regions."""
        record = self.subscribers[sub_id]
        record.location = location
        record.velocity = velocity
        results = self.executor.run(
            {
                shard_id: (
                    lambda worker=self.shard_servers[
                        shard_id
                    ]: worker.report_location(sub_id, location, velocity, now)
                )
                for shard_id in record.homes
            }
        )
        notifications: List[Notification] = []
        for shard_id in sorted(results):
            shard_notifications, _ = results[shard_id]
            notifications.extend(self._absorb(shard_notifications))
        self._settle(now, notifications)
        return notifications, record.safe

    def resync(
        self,
        sub_id: int,
        location: Point,
        velocity: Point,
        received,
        now: int,
    ) -> Tuple[List[Notification], SafeRegion]:
        """Reconcile a reconnecting client against every home."""
        record = self.subscribers[sub_id]
        record.location = location
        record.velocity = velocity
        record.delivered = set(received)
        results = self.executor.run(
            {
                shard_id: (
                    lambda worker=self.shard_servers[shard_id]: worker.resync(
                        sub_id, location, velocity, received, now
                    )
                )
                for shard_id in record.homes
            }
        )
        notifications: List[Notification] = []
        for shard_id in sorted(results):
            shard_notifications, _ = results[shard_id]
            notifications.extend(self._absorb(shard_notifications))
        self._settle(now, notifications)
        return notifications, record.safe

    def expire_due_events(self, now: int) -> int:
        """Expire on every shard; Lemma 4 — still no client traffic."""
        results = self.executor.run(
            {
                spec.shard_id: (
                    lambda worker=self.shard_servers[
                        spec.shard_id
                    ]: worker.expire_due_events(now)
                )
                for spec in self.specs
            }
        )
        return sum(results.values())

    def rebuild_all(self, now: int) -> None:
        """Rebuild every record on every shard with fresh statistics."""
        self.executor.run(
            {
                spec.shard_id: (
                    lambda worker=self.shard_servers[
                        spec.shard_id
                    ]: worker.rebuild_all(now)
                )
                for spec in self.specs
            }
        )
        self._settle(now, [])

    def system_stats(self, now: int) -> SystemStats:
        """Fleet-wide cost-model inputs: summed rate, summed corpus."""
        shard_stats = [worker.system_stats(now) for worker in self.shard_servers]
        return SystemStats(
            event_rate=sum(s.event_rate for s in shard_stats),
            total_events=sum(s.total_events for s in shard_stats),
        )

    # ------------------------------------------------------------------
    # Durability (DESIGN.md §13): per-band journals, fleet recovery
    # ------------------------------------------------------------------
    def snapshot(self) -> None:
        """Snapshot every worker (each rotates its own band journal)."""
        for worker in self.shard_servers:
            worker.snapshot()

    def recover(self) -> int:
        """Recover every worker from its band journal, then rebuild the
        coordinator's routing state from the recovered workers.

        The coordinator itself keeps no journal — everything it holds is
        derivable: homes are the shards holding a record, the owner is
        the shard of the last known location, the held region is the
        usual K-way intersection, and the global ``delivered`` set is the
        union of the workers' sets (exact, because each event lives in
        exactly one shard's corpus, so every client-visible delivery was
        recorded by precisely the worker that owns the event).  The
        coordinator-level sequence counter restarts at the delivered-set
        size — each historical stamp added one id, and a reconnecting
        client tracks ``max(seen, new)`` anyway, so a conservative
        restart cannot corrupt gap detection.  Returns the total number
        of tail records the workers applied.
        """
        applied = 0
        for worker in self.shard_servers:
            applied += worker.recover()
        self.subscribers = {}
        with self._mutex:
            self._dirty = {}
        for shard_id, worker in enumerate(self.shard_servers):
            for sub_id, shard_record in worker.subscribers.items():
                record = self.subscribers.get(sub_id)
                if record is None:
                    record = ShardedSubscriberRecord(
                        subscription=shard_record.subscription,
                        location=shard_record.location,
                        velocity=shard_record.velocity,
                        owner=self.shard_of_point(shard_record.location),
                    )
                    self.subscribers[sub_id] = record
                record.homes.add(shard_id)
                record.delivered |= shard_record.delivered
                if shard_record.safe is not None:
                    record.shard_regions[shard_id] = shard_record.safe
        for record in self.subscribers.values():
            record.next_seq = len(record.delivered)
            self._recompute_held(record)
        return applied

    # ------------------------------------------------------------------
    # Aggregate views (shared surface with ElapsServer)
    # ------------------------------------------------------------------
    def merged_metrics(self) -> CommunicationStats:
        """Coordinator counters plus every worker's, field-wise."""
        merged = self.metrics
        for worker in self.shard_servers:
            merged = merged.merged_with(worker.metrics)
        return merged

    def merged_registry(self) -> MetricsRegistry:
        """Coordinator registry plus every worker's (histograms bucket-wise)."""
        merged = self.registry
        for worker in self.shard_servers:
            merged = merged.merged_with(worker.registry)
        return merged

    def corpus_matches(self, expression) -> Iterator[Event]:
        """Every live be-matching event, across all shards' corpora."""
        return itertools.chain.from_iterable(
            worker.corpus_matches(expression) for worker in self.shard_servers
        )

    def delivered_ids(self, sub_id: int) -> FrozenSet[int]:
        """The coordinator's global delivered set for ``sub_id``."""
        return frozenset(self.subscribers[sub_id].delivered)

    def close(self) -> None:
        """Shut the executor down and release the workers' journals."""
        self.executor.close()
        for worker in self.shard_servers:
            worker.close()

    def __enter__(self) -> "ShardedElapsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
