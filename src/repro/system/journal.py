"""Durable operation journal and snapshots for the Elaps server.

The paper's server (PAPER.md §6) is purely in-memory: one restart loses
the event corpus, every subscription, and every cached safe region.
This module adds the durability substrate:

* an **append-only journal** of the seven state-changing operations
  (subscribe, unsubscribe, location report, resync, publish,
  publish_batch, expiry sweep), one length-prefixed + CRC32-checksummed
  record per operation, each carrying a monotonically increasing journal
  sequence number;
* **snapshots** — a checksummed, atomically-renamed image of the full
  server state (corpus, subscription table, cached safe/impact regions,
  per-subscriber delivery state, :class:`CommunicationStats` counters)
  that lets recovery skip the log prefix and rotate the journal;
* the **record/snapshot codecs**, built on the same tagged-scalar and
  expression encoders as the wire protocol so a journal is readable by
  anything that can read the wire format.

Framing on disk (``journal.log``)::

    [4-byte BE length][4-byte BE CRC32 of payload][payload]
    payload = [8-byte BE seq][1-byte kind][kind-specific body]

Two failure modes are distinguished deliberately:

* a record whose bytes end prematurely at EOF is a **torn tail** — the
  process died mid-append; the file is silently truncated back to the
  last complete record (write-ahead logging makes the half-written
  operation as-if-never-attempted);
* a *complete* record whose CRC32 does not match is **corruption** —
  bit rot or a hostile edit; :class:`JournalCorruptionError` is raised
  because nothing after the damaged record can be trusted.

Idempotent replay falls out of the sequence numbers: the server tracks
the highest applied seq (snapshots persist it), and recovery applies
only records *beyond* it — replaying the same journal twice is a no-op
by construction.
"""

from __future__ import annotations

import dataclasses
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..expressions import Event, Subscription
from ..geometry import Point
from .protocol import (
    _decode_scalar,
    _decode_str,
    _encode_scalar,
    _encode_str,
    decode_expression,
    encode_expression,
)

__all__ = [
    "Journal",
    "JournalCorruptionError",
    "JournalError",
    "JournalRecord",
    "JournalSpec",
    "ServerSnapshot",
    "SubscriberSnapshot",
    "decode_snapshot",
    "encode_snapshot",
    "read_records",
]


class JournalError(Exception):
    """Base class for journal failures."""


class JournalCorruptionError(JournalError):
    """A complete record (or snapshot) failed its checksum."""


# Record kinds — one per state-changing public server operation.
SUBSCRIBE = 1
UNSUBSCRIBE = 2
LOCATION = 3
RESYNC = 4
PUBLISH = 5
PUBLISH_BATCH = 6
EXPIRE = 7
BOOTSTRAP = 8
#: band migration (DESIGN.md §15): events in the recorded column ranges
#: were extracted from this shard's corpus.  ``received`` carries the
#: ranges flattened as ``(lo0, hi0, lo1, hi1, ...)``; extraction is
#: deterministic given the corpus, so replay reproduces the removal.
EXTRACT = 9

_RECORD_HEADER = ">II"  # length, crc32
_RECORD_HEADER_SIZE = struct.calcsize(_RECORD_HEADER)
_SEQ_KIND = ">QB"
_SEQ_KIND_SIZE = struct.calcsize(_SEQ_KIND)

_SNAPSHOT_MAGIC = b"ELAPSNAP"
_SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class JournalSpec:
    """Immutable durability knobs, carried on ``ServerConfig.journal``.

    ``path`` is a *directory*: the journal file, the snapshot, and the
    per-band subdirectories of a sharded fleet all live under it.
    ``snapshot_every`` triggers an automatic snapshot (and journal
    rotation) after that many appended records; 0 means snapshots are
    taken only when :meth:`ElapsServer.snapshot` is called explicitly.
    """

    path: str
    snapshot_every: int = 0
    fsync: bool = False

    def __post_init__(self) -> None:
        if self.snapshot_every < 0:
            raise ValueError(
                f"snapshot_every must be non-negative: {self.snapshot_every}"
            )

    def for_shard(self, shard_id: int) -> "JournalSpec":
        """The derived spec for one band of a sharded fleet: same knobs,
        journal rooted in a ``band-<k>/`` subdirectory."""
        return dataclasses.replace(
            self, path=os.path.join(self.path, f"band-{shard_id}")
        )


@dataclass
class JournalRecord:
    """One decoded journal record.  ``kind`` selects which of the
    optional operation fields are meaningful."""

    kind: int
    seq: int
    now: int = 0
    sub_id: int = 0
    subscription: Optional[Subscription] = None
    location: Optional[Point] = None
    velocity: Optional[Point] = None
    received: Tuple[int, ...] = ()
    events: Tuple[Event, ...] = ()

    @property
    def event(self) -> Event:
        """The single event of a PUBLISH record."""
        return self.events[0]


# ----------------------------------------------------------------------
# Scalar/structure codecs (shared by records and snapshots)
# ----------------------------------------------------------------------
def _encode_point(point: Point) -> bytes:
    return struct.pack(">dd", point.x, point.y)


def _decode_point(payload: bytes, offset: int) -> Tuple[Point, int]:
    x, y = struct.unpack_from(">dd", payload, offset)
    return Point(x, y), offset + 16


def _encode_event(event: Event) -> bytes:
    """Events are stored with *absolute* arrival/expiry timestamps so a
    replayed corpus is bit-identical (EventPublishMessage's relative TTL
    would drift under replay)."""
    expires = -1 if event.expires_at is None else event.expires_at
    parts = [
        struct.pack(
            ">Qddqq",
            event.event_id,
            event.location.x,
            event.location.y,
            event.arrived_at,
            expires,
        ),
        struct.pack(">I", len(event.attributes)),
    ]
    # Attribute order is preserved, not canonicalised: subscription
    # matching iterates the mapping, so replay is only byte-identical if
    # a decoded event probes the index partitions in the original order.
    for name, value in event.attributes.items():
        parts.append(_encode_str(name))
        parts.append(_encode_scalar(value))
    return b"".join(parts)


def _decode_event(payload: bytes, offset: int) -> Tuple[Event, int]:
    event_id, x, y, arrived, expires = struct.unpack_from(">Qddqq", payload, offset)
    offset += struct.calcsize(">Qddqq")
    (count,) = struct.unpack_from(">I", payload, offset)
    offset += 4
    attributes: Dict[str, object] = {}
    for _ in range(count):
        name, offset = _decode_str(payload, offset)
        value, offset = _decode_scalar(payload, offset)
        attributes[name] = value
    event = Event(
        event_id,
        attributes,
        Point(x, y),
        arrived_at=arrived,
        expires_at=None if expires < 0 else expires,
    )
    return event, offset


def _encode_events(events: Sequence[Event]) -> bytes:
    parts = [struct.pack(">I", len(events))]
    parts.extend(_encode_event(event) for event in events)
    return b"".join(parts)


def _decode_events(payload: bytes, offset: int) -> Tuple[Tuple[Event, ...], int]:
    (count,) = struct.unpack_from(">I", payload, offset)
    offset += 4
    events: List[Event] = []
    for _ in range(count):
        event, offset = _decode_event(payload, offset)
        events.append(event)
    return tuple(events), offset


def _encode_record_body(record: JournalRecord) -> bytes:
    """The kind-specific body (everything after ``[seq][kind]``)."""
    kind = record.kind
    if kind == SUBSCRIBE:
        assert record.subscription is not None
        sub = record.subscription
        return b"".join(
            [
                struct.pack(">Qdq", sub.sub_id, sub.radius, record.now),
                _encode_point(record.location),
                _encode_point(record.velocity),
                encode_expression(sub.expression),
            ]
        )
    if kind == UNSUBSCRIBE:
        return struct.pack(">Qq", record.sub_id, record.now)
    if kind == LOCATION:
        return b"".join(
            [
                struct.pack(">Qq", record.sub_id, record.now),
                _encode_point(record.location),
                _encode_point(record.velocity),
            ]
        )
    if kind == RESYNC:
        return b"".join(
            [
                struct.pack(">Qq", record.sub_id, record.now),
                _encode_point(record.location),
                _encode_point(record.velocity),
                struct.pack(f">I{len(record.received)}Q", len(record.received),
                            *record.received),
            ]
        )
    if kind == PUBLISH:
        return struct.pack(">q", record.now) + _encode_event(record.events[0])
    if kind in (PUBLISH_BATCH, BOOTSTRAP):
        return struct.pack(">q", record.now) + _encode_events(record.events)
    if kind == EXPIRE:
        return struct.pack(">q", record.now)
    if kind == EXTRACT:
        return struct.pack(
            f">I{len(record.received)}Q", len(record.received), *record.received
        )
    raise JournalError(f"unknown journal record kind: {kind}")


def _decode_record(payload: bytes) -> JournalRecord:
    seq, kind = struct.unpack_from(_SEQ_KIND, payload, 0)
    offset = _SEQ_KIND_SIZE
    if kind == SUBSCRIBE:
        sub_id, radius, now = struct.unpack_from(">Qdq", payload, offset)
        offset += struct.calcsize(">Qdq")
        location, offset = _decode_point(payload, offset)
        velocity, offset = _decode_point(payload, offset)
        expression, offset = decode_expression(payload, offset)
        return JournalRecord(
            kind, seq, now=now, sub_id=sub_id,
            subscription=Subscription(sub_id, expression, radius),
            location=location, velocity=velocity,
        )
    if kind == UNSUBSCRIBE:
        sub_id, now = struct.unpack_from(">Qq", payload, offset)
        return JournalRecord(kind, seq, now=now, sub_id=sub_id)
    if kind == LOCATION:
        sub_id, now = struct.unpack_from(">Qq", payload, offset)
        offset += struct.calcsize(">Qq")
        location, offset = _decode_point(payload, offset)
        velocity, offset = _decode_point(payload, offset)
        return JournalRecord(
            kind, seq, now=now, sub_id=sub_id, location=location, velocity=velocity
        )
    if kind == RESYNC:
        sub_id, now = struct.unpack_from(">Qq", payload, offset)
        offset += struct.calcsize(">Qq")
        location, offset = _decode_point(payload, offset)
        velocity, offset = _decode_point(payload, offset)
        (count,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        received = struct.unpack_from(f">{count}Q", payload, offset)
        return JournalRecord(
            kind, seq, now=now, sub_id=sub_id, location=location,
            velocity=velocity, received=tuple(received),
        )
    if kind == PUBLISH:
        (now,) = struct.unpack_from(">q", payload, offset)
        event, _ = _decode_event(payload, offset + 8)
        return JournalRecord(kind, seq, now=now, events=(event,))
    if kind in (PUBLISH_BATCH, BOOTSTRAP):
        (now,) = struct.unpack_from(">q", payload, offset)
        events, _ = _decode_events(payload, offset + 8)
        return JournalRecord(kind, seq, now=now, events=events)
    if kind == EXPIRE:
        (now,) = struct.unpack_from(">q", payload, offset)
        return JournalRecord(kind, seq, now=now)
    if kind == EXTRACT:
        (count,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        flat = struct.unpack_from(f">{count}Q", payload, offset)
        return JournalRecord(kind, seq, received=tuple(flat))
    raise JournalCorruptionError(f"unknown journal record kind: {kind}")


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
@dataclass
class SubscriberSnapshot:
    """Per-subscriber durable state.  Cached safe/impact regions are
    stored as ``(complement, cells)`` pairs; derived artefacts (lazy
    matching fields, repair drift bookkeeping) are deliberately *not*
    snapshotted — see DESIGN.md §13's recovery invariants."""

    subscription: Subscription
    location: Point
    velocity: Point
    delivered: FrozenSet[int]
    next_seq: int = 0
    safe: Optional[Tuple[bool, FrozenSet[Tuple[int, int]]]] = None
    impact: Optional[Tuple[bool, FrozenSet[Tuple[int, int]]]] = None


@dataclass
class ServerSnapshot:
    """The full durable image of one :class:`ElapsServer`."""

    last_seq: int
    started_at: Optional[int]
    arrival_times: List[int] = field(default_factory=list)
    events: List[Event] = field(default_factory=list)
    subscribers: List[SubscriberSnapshot] = field(default_factory=list)
    counters: Dict[str, object] = field(default_factory=dict)


def _encode_region(region: Optional[Tuple[bool, FrozenSet[Tuple[int, int]]]]) -> bytes:
    if region is None:
        return struct.pack(">B", 0)
    complement, cells = region
    parts = [struct.pack(">BBI", 1, int(complement), len(cells))]
    for i, j in sorted(cells):
        parts.append(struct.pack(">II", i, j))
    return b"".join(parts)


def _decode_region(
    payload: bytes, offset: int
) -> Tuple[Optional[Tuple[bool, FrozenSet[Tuple[int, int]]]], int]:
    (present,) = struct.unpack_from(">B", payload, offset)
    offset += 1
    if not present:
        return None, offset
    complement, count = struct.unpack_from(">BI", payload, offset)
    offset += 5
    cells = []
    for _ in range(count):
        i, j = struct.unpack_from(">II", payload, offset)
        offset += 8
        cells.append((i, j))
    return (bool(complement), frozenset(cells)), offset


def encode_snapshot(snapshot: ServerSnapshot) -> bytes:
    """Serialise a snapshot body (checksummed framing added by the
    :class:`Journal` when it is written to disk)."""
    started = -1 if snapshot.started_at is None else snapshot.started_at
    parts = [
        struct.pack(
            ">QqI",
            snapshot.last_seq,
            started,
            len(snapshot.arrival_times),
        ),
        struct.pack(f">{len(snapshot.arrival_times)}q", *snapshot.arrival_times),
        _encode_events(snapshot.events),
        struct.pack(">I", len(snapshot.subscribers)),
    ]
    for sub in snapshot.subscribers:
        delivered = sorted(sub.delivered)
        parts.append(
            struct.pack(">QdQ", sub.subscription.sub_id, sub.subscription.radius,
                        sub.next_seq)
        )
        parts.append(_encode_point(sub.location))
        parts.append(_encode_point(sub.velocity))
        parts.append(encode_expression(sub.subscription.expression))
        parts.append(struct.pack(f">I{len(delivered)}Q", len(delivered), *delivered))
        parts.append(_encode_region(sub.safe))
        parts.append(_encode_region(sub.impact))
    counters = snapshot.counters
    parts.append(struct.pack(">I", len(counters)))
    for name in sorted(counters):
        parts.append(_encode_str(name))
        parts.append(_encode_scalar(_counter_scalar(counters[name])))
    return b"".join(parts)


def _counter_scalar(value: object) -> object:
    # CommunicationStats.bytes_measured is a bool; the tagged-scalar
    # codec only speaks int/float/str, so send it through as an int.
    if isinstance(value, bool):
        return int(value)
    return value


def decode_snapshot(payload: bytes) -> ServerSnapshot:
    """Inverse of :func:`encode_snapshot`."""
    last_seq, started, arrival_count = struct.unpack_from(">QqI", payload, 0)
    offset = struct.calcsize(">QqI")
    arrival_times = list(struct.unpack_from(f">{arrival_count}q", payload, offset))
    offset += 8 * arrival_count
    events, offset = _decode_events(payload, offset)
    (sub_count,) = struct.unpack_from(">I", payload, offset)
    offset += 4
    subscribers: List[SubscriberSnapshot] = []
    for _ in range(sub_count):
        sub_id, radius, next_seq = struct.unpack_from(">QdQ", payload, offset)
        offset += struct.calcsize(">QdQ")
        location, offset = _decode_point(payload, offset)
        velocity, offset = _decode_point(payload, offset)
        expression, offset = decode_expression(payload, offset)
        (delivered_count,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        delivered = struct.unpack_from(f">{delivered_count}Q", payload, offset)
        offset += 8 * delivered_count
        safe, offset = _decode_region(payload, offset)
        impact, offset = _decode_region(payload, offset)
        subscribers.append(
            SubscriberSnapshot(
                subscription=Subscription(sub_id, expression, radius),
                location=location,
                velocity=velocity,
                delivered=frozenset(delivered),
                next_seq=next_seq,
                safe=safe,
                impact=impact,
            )
        )
    (counter_count,) = struct.unpack_from(">I", payload, offset)
    offset += 4
    counters: Dict[str, object] = {}
    for _ in range(counter_count):
        name, offset = _decode_str(payload, offset)
        value, offset = _decode_scalar(payload, offset)
        counters[name] = value
    return ServerSnapshot(
        last_seq=last_seq,
        started_at=None if started < 0 else started,
        arrival_times=arrival_times,
        events=list(events),
        subscribers=subscribers,
        counters=counters,
    )


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------
def _scan_log(path: str) -> Tuple[List[Tuple[int, bytes]], int, bool]:
    """Scan ``journal.log``: return ``(records, good_length, torn)``
    where ``records`` is ``[(seq, payload), ...]`` for every complete,
    checksum-clean record and ``good_length`` is the byte offset after
    the last one.  A premature EOF sets ``torn``; a checksum mismatch on
    a *complete* record raises :class:`JournalCorruptionError`."""
    records: List[Tuple[int, bytes]] = []
    good = 0
    torn = False
    try:
        data = open(path, "rb").read()
    except FileNotFoundError:
        return records, good, torn
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _RECORD_HEADER_SIZE > total:
            torn = True
            break
        length, crc = struct.unpack_from(_RECORD_HEADER, data, offset)
        start = offset + _RECORD_HEADER_SIZE
        end = start + length
        if end > total:
            torn = True
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            raise JournalCorruptionError(
                f"journal record at offset {offset} failed its checksum"
            )
        if length < _SEQ_KIND_SIZE:
            raise JournalCorruptionError(
                f"journal record at offset {offset} is impossibly short"
            )
        (seq,) = struct.unpack_from(">Q", payload, 0)
        records.append((seq, payload))
        good = end
        offset = end
    return records, good, torn


def read_records(path: str, after_seq: int = 0) -> Iterator[JournalRecord]:
    """Decode every complete record in ``<path>/journal.log`` with a
    sequence number beyond ``after_seq``, without mutating the file
    (a torn tail is skipped, not healed)."""
    raw, _, _ = _scan_log(os.path.join(path, "journal.log"))
    for seq, payload in raw:
        if seq > after_seq:
            yield _decode_record(payload)


class Journal:
    """An append-only, checksummed operation log plus snapshot store.

    The journal lives in a directory::

        <path>/journal.log    the record log (rotated on snapshot)
        <path>/snapshot.bin   the latest snapshot (atomic rename)
        <path>/meta.json      optional free-form metadata sidecar

    Opening a journal scans the existing log: the last assigned sequence
    number is recovered (so appends continue the numbering), and a torn
    tail left by a mid-append crash is truncated away.
    """

    def __init__(self, spec: "JournalSpec | str") -> None:
        if isinstance(spec, str):
            spec = JournalSpec(spec)
        self.spec = spec
        self.path = spec.path
        os.makedirs(self.path, exist_ok=True)
        self._log_path = os.path.join(self.path, "journal.log")
        self._snapshot_path = os.path.join(self.path, "snapshot.bin")
        self.suspended = False
        #: True when opening found (and truncated) a torn tail
        self.torn_tail_truncated = False
        raw, good, torn = _scan_log(self._log_path)
        if torn:
            self.torn_tail_truncated = True
            with open(self._log_path, "r+b") as handle:
                handle.truncate(good)
        self.seq = raw[-1][0] if raw else self._snapshot_seq()
        self.record_count = len(raw)
        self.records_since_snapshot = len(raw)
        self._log = open(self._log_path, "ab")

    # -- appending ------------------------------------------------------
    def append(self, record: JournalRecord) -> int:
        """Assign the next sequence number to ``record``, append it, and
        return the number of bytes written."""
        if self.suspended:
            return 0
        self.seq += 1
        record.seq = self.seq
        payload = struct.pack(_SEQ_KIND, record.seq, record.kind)
        payload += _encode_record_body(record)
        frame = struct.pack(_RECORD_HEADER, len(payload), zlib.crc32(payload))
        self._log.write(frame + payload)
        self._log.flush()
        if self.spec.fsync:
            os.fsync(self._log.fileno())
        self.record_count += 1
        self.records_since_snapshot += 1
        return len(frame) + len(payload)

    def snapshot_due(self) -> bool:
        """True when ``snapshot_every`` records have accumulated."""
        return (
            self.spec.snapshot_every > 0
            and self.records_since_snapshot >= self.spec.snapshot_every
        )

    # -- reading --------------------------------------------------------
    def records(self, after_seq: int = 0) -> Iterator[JournalRecord]:
        """Decode every record beyond ``after_seq`` from disk."""
        self._log.flush()
        raw, _, _ = _scan_log(self._log_path)
        for seq, payload in raw:
            if seq > after_seq:
                yield _decode_record(payload)

    # -- snapshots ------------------------------------------------------
    def write_snapshot(self, body: bytes, seq: int) -> int:
        """Atomically persist a snapshot taken at journal ``seq`` and
        rotate the log (records ≤ seq are subsumed by the snapshot).
        Returns the number of bytes written."""
        blob = (
            _SNAPSHOT_MAGIC
            + struct.pack(">IQI", _SNAPSHOT_VERSION, seq, zlib.crc32(body))
            + body
        )
        tmp = self._snapshot_path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._snapshot_path)
        # Rotate: every journaled record is ≤ seq (snapshots are taken
        # at the end of a public operation), so the log restarts empty.
        self._log.close()
        self._log = open(self._log_path, "wb")
        if self.spec.fsync:
            os.fsync(self._log.fileno())
        self.record_count = 0
        self.records_since_snapshot = 0
        return len(blob)

    def read_snapshot(self) -> Optional[Tuple[int, bytes]]:
        """The latest snapshot as ``(seq, body)``; None when absent."""
        try:
            blob = open(self._snapshot_path, "rb").read()
        except FileNotFoundError:
            return None
        header_size = len(_SNAPSHOT_MAGIC) + struct.calcsize(">IQI")
        if len(blob) < header_size or blob[: len(_SNAPSHOT_MAGIC)] != _SNAPSHOT_MAGIC:
            raise JournalCorruptionError("snapshot header is malformed")
        version, seq, crc = struct.unpack_from(">IQI", blob, len(_SNAPSHOT_MAGIC))
        if version != _SNAPSHOT_VERSION:
            raise JournalCorruptionError(f"unknown snapshot version {version}")
        body = blob[header_size:]
        if zlib.crc32(body) != crc:
            raise JournalCorruptionError("snapshot body failed its checksum")
        return seq, body

    def _snapshot_seq(self) -> int:
        snapshot = self.read_snapshot()
        return snapshot[0] if snapshot is not None else 0

    # -- metadata sidecar ----------------------------------------------
    def write_meta(self, meta: Dict[str, object]) -> None:
        """Persist free-form trace metadata (space bounds, grid size…)."""
        with open(os.path.join(self.path, "meta.json"), "w") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)

    def read_meta(self) -> Dict[str, object]:
        """The metadata sidecar's contents ({} when absent)."""
        try:
            with open(os.path.join(self.path, "meta.json")) as handle:
                return json.load(handle)
        except FileNotFoundError:
            return {}

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Flush and release the log file handle."""
        if not self._log.closed:
            self._log.flush()
            self._log.close()

    def __enter__(self) -> "Journal":
        """Context-manager support: closing flushes the log."""
        return self

    def __exit__(self, *exc) -> None:
        """Close on context exit."""
        self.close()
