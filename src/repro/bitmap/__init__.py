"""Bitmap substrate: WAH run-length compression for safe-region transfer."""

from .wah import WAHBitmap

__all__ = ["WAHBitmap"]
