"""Word-Aligned Hybrid (WAH) bitmap compression.

Appendix B of the paper ships safe regions to clients as bitmaps over the
grid cells, compressed with run-length encoding (BBC/WAH) after assigning
z-order ids to the cells; the reported compressed size is 5-10% of the raw
bitmap.

This is a standard 32-bit WAH codec (Wu, Otoo, Shoshani, TODS 2006):

* a **literal word** has its MSB clear and carries 31 raw bits;
* a **fill word** has its MSB set, its second bit carrying the fill bit,
  and the remaining 30 bits counting how many consecutive 31-bit groups
  consist entirely of that bit.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

_GROUP_BITS = 31
_WORD_BYTES = 4
_FILL_FLAG = 1 << 31
_FILL_BIT = 1 << 30
_MAX_RUN = (1 << 30) - 1
_ALL_ONES = (1 << _GROUP_BITS) - 1


class WAHBitmap:
    """An immutable WAH-compressed bitmap of a fixed logical length."""

    __slots__ = ("length", "words")

    def __init__(self, length: int, words: Sequence[int]) -> None:
        if length < 0:
            raise ValueError(f"negative bitmap length: {length}")
        self.length = length
        self.words = tuple(words)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_positions(cls, positions: Iterable[int], length: int) -> "WAHBitmap":
        """Compress the bitmap with 1-bits at ``positions`` (0-based)."""
        sorted_positions = sorted(set(positions))
        if sorted_positions and (sorted_positions[0] < 0 or sorted_positions[-1] >= length):
            raise ValueError("bit position out of range")
        groups = (length + _GROUP_BITS - 1) // _GROUP_BITS
        words: List[int] = []
        run_bit = None
        run_length = 0
        cursor = 0  # index into sorted_positions

        def flush_run() -> None:
            nonlocal run_bit, run_length
            if run_length == 0:
                return
            fill = _FILL_FLAG | (_FILL_BIT if run_bit else 0) | run_length
            words.append(fill)
            run_bit, run_length = None, 0

        for group in range(groups):
            base = group * _GROUP_BITS
            limit = min(base + _GROUP_BITS, length)
            literal = 0
            while cursor < len(sorted_positions) and sorted_positions[cursor] < limit:
                literal |= 1 << (sorted_positions[cursor] - base)
                cursor += 1
            # The final partial group is padded with zeros; an all-ones fill
            # may only absorb *complete* groups.
            group_full = limit - base == _GROUP_BITS
            if literal == 0 or (literal == _ALL_ONES and group_full):
                bit = literal != 0
                if run_bit == bit and run_length < _MAX_RUN:
                    run_length += 1
                else:
                    flush_run()
                    run_bit, run_length = bit, 1
            else:
                flush_run()
                words.append(literal)
        flush_run()
        return cls(length, words)

    @classmethod
    def from_positions_array(cls, positions: "np.ndarray", length: int) -> "WAHBitmap":
        """Array kernel for :meth:`from_positions`: identical words.

        Group literals are materialised with one vectorized scatter-OR and
        then run-length encoded over the (few) value changes.  A literal can
        only equal the all-ones pattern when its group is complete — the
        final partial group never has bits at or past ``length`` — so the
        scalar encoder's ``group_full`` guard is implied and the two
        encoders emit word-for-word identical output on every input.
        """
        positions = np.unique(np.asarray(positions, dtype=np.int64))
        if positions.size and (positions[0] < 0 or positions[-1] >= length):
            raise ValueError("bit position out of range")
        groups = (length + _GROUP_BITS - 1) // _GROUP_BITS
        if groups == 0:
            return cls(length, [])
        literals = np.zeros(groups, dtype=np.int64)
        np.bitwise_or.at(
            literals,
            positions // _GROUP_BITS,
            np.int64(1) << (positions % _GROUP_BITS),
        )
        words: List[int] = []
        starts = np.flatnonzero(np.diff(literals)) + 1
        bounds = [0, *starts.tolist(), groups]
        for lo, hi in zip(bounds, bounds[1:]):
            value = int(literals[lo])
            count = hi - lo
            if value == 0 or value == _ALL_ONES:
                fill = _FILL_FLAG | (_FILL_BIT if value else 0)
                while count:
                    take = min(count, _MAX_RUN)
                    words.append(fill | take)
                    count -= take
            else:
                words.extend([value] * count)
        return cls(length, words)

    @classmethod
    def from_bits(cls, bits: Sequence[bool]) -> "WAHBitmap":
        """Compress a boolean sequence directly."""
        return cls.from_positions(
            (i for i, bit in enumerate(bits) if bit), len(bits)
        )

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def positions(self) -> List[int]:
        """The 0-based positions of all 1-bits."""
        result: List[int] = []
        base = 0
        for word in self.words:
            if word & _FILL_FLAG:
                count = word & _MAX_RUN
                if word & _FILL_BIT:
                    result.extend(range(base, base + count * _GROUP_BITS))
                base += count * _GROUP_BITS
            else:
                bits = word
                while bits:
                    low = bits & -bits
                    result.append(base + low.bit_length() - 1)
                    bits ^= low
                base += _GROUP_BITS
        return [p for p in result if p < self.length]

    def _group_runs(self) -> Iterable[tuple]:
        """The bitmap as ``(literal, repeat)`` runs of 31-bit groups.

        Fill words come out as one run (0 or the all-ones literal with
        their full repeat count); literal words come out with repeat 1.
        The compressed logical operations below consume these runs so a
        long fill never has to be expanded group by group.
        """
        for word in self.words:
            if word & _FILL_FLAG:
                yield (_ALL_ONES if word & _FILL_BIT else 0, word & _MAX_RUN)
            else:
                yield (word, 1)

    def _merge(self, other: "WAHBitmap", op) -> "WAHBitmap":
        """Group-aligned logical merge; ``op`` combines two 31-bit literals."""
        if self.length != other.length:
            raise ValueError(
                f"length mismatch: {self.length} vs {other.length}"
            )
        groups = (self.length + _GROUP_BITS - 1) // _GROUP_BITS
        words: List[int] = []
        run_bit = None
        run_length = 0

        def flush_run() -> None:
            nonlocal run_bit, run_length
            if run_length == 0:
                return
            words.append(_FILL_FLAG | (_FILL_BIT if run_bit else 0) | run_length)
            run_bit, run_length = None, 0

        left = self._group_runs()
        right = other._group_runs()
        left_literal, left_repeat = next(left, (0, 0))
        right_literal, right_repeat = next(right, (0, 0))
        emitted = 0
        # The final partial group is zero-padded in canonical encodings
        # (from_positions never lets an all-ones fill absorb it), so AND-NOT
        # and OR both preserve zero pads and runs merge uniformly.
        while emitted < groups:
            take = min(left_repeat, right_repeat)
            if take == 0:  # codec invariant: both sides cover all groups
                raise ValueError("bitmap words do not cover the logical length")
            literal = op(left_literal, right_literal) & _ALL_ONES
            if literal == 0 or literal == _ALL_ONES:
                bit = literal != 0
                remaining = take
                while remaining:
                    if run_bit == bit and run_length < _MAX_RUN:
                        absorbed = min(remaining, _MAX_RUN - run_length)
                        run_length += absorbed
                        remaining -= absorbed
                    else:
                        flush_run()
                        run_bit, run_length = bit, 0
            else:
                flush_run()
                words.extend([literal] * take)
            emitted += take
            left_repeat -= take
            right_repeat -= take
            if left_repeat == 0:
                left_literal, left_repeat = next(left, (0, 0))
            if right_repeat == 0:
                right_literal, right_repeat = next(right, (0, 0))
        flush_run()
        return WAHBitmap(self.length, words)

    def difference(self, other: "WAHBitmap") -> "WAHBitmap":
        """Bits set here and not in ``other`` (compressed AND-NOT).

        The delta-shipping identity: with ``removed = old.difference(new)``
        on the wire, a client holding ``old`` recovers the repaired region
        as ``old.difference(removed)`` without decompressing either side
        beyond run granularity.
        """
        return self._merge(other, lambda a, b: a & ~b)

    def union(self, other: "WAHBitmap") -> "WAHBitmap":
        """Bits set in either bitmap (compressed OR); inverse check of
        :meth:`difference`: ``new.union(removed) == old`` whenever the
        removed bits all came from ``old``."""
        return self._merge(other, lambda a, b: a | b)

    def __len__(self) -> int:
        return self.length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WAHBitmap):
            return NotImplemented
        return self.length == other.length and self.words == other.words

    def __hash__(self) -> int:
        return hash((self.length, self.words))

    # ------------------------------------------------------------------
    # Size accounting (the quantity Appendix B reports)
    # ------------------------------------------------------------------
    def compressed_bytes(self) -> int:
        """Wire size of the compressed bitmap."""
        return len(self.words) * _WORD_BYTES

    def raw_bytes(self) -> int:
        """Wire size of the uncompressed bitmap."""
        return (self.length + 7) // 8

    def compression_ratio(self) -> float:
        """compressed / raw; the paper reports 0.05-0.10 for safe regions."""
        raw = self.raw_bytes()
        return self.compressed_bytes() / raw if raw else 1.0
