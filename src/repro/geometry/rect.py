"""Axis-aligned rectangles with min/max distance queries.

Rectangles are the workhorse of both the iGM grid (a cell is a rectangle)
and the quadtree layers of the BEQ-Tree.  The min-distance primitives give
the conservative containment tests the safe-region guarantee relies on:
a grid cell is *safe* iff its min distance to every matching event exceeds
the notification radius, i.e. every point of the cell is safe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .point import Point


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]``."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_min > self.x_max or self.y_min > self.y_max:
            raise ValueError(f"degenerate rectangle: {self}")

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.y_max - self.y_min

    @property
    def center(self) -> Point:
        """The centre point."""
        return Point((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    def contains_point(self, p: Point) -> bool:
        """True if ``p`` lies inside or on the boundary."""
        return self.x_min <= p.x <= self.x_max and self.y_min <= p.y <= self.y_max

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely inside this rectangle."""
        return (
            self.x_min <= other.x_min
            and self.y_min <= other.y_min
            and other.x_max <= self.x_max
            and other.y_max <= self.y_max
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the two rectangles share at least a boundary point."""
        return not (
            other.x_min > self.x_max
            or other.x_max < self.x_min
            or other.y_min > self.y_max
            or other.y_max < self.y_min
        )

    def min_distance_to_point(self, p: Point) -> float:
        """Distance from ``p`` to the nearest point of the rectangle (0 inside).

        Spelled ``sqrt(dx*dx + dy*dy)`` rather than ``math.hypot`` so the
        vectorized grid kernels (numpy elementwise mul/add/sqrt, each
        correctly rounded) reproduce this value bit for bit; ``hypot`` uses a
        different internal algorithm and is not guaranteed to agree with the
        composed form in the last ulp.
        """
        dx = max(self.x_min - p.x, 0.0, p.x - self.x_max)
        dy = max(self.y_min - p.y, 0.0, p.y - self.y_max)
        return math.sqrt(dx * dx + dy * dy)

    def max_distance_to_point(self, p: Point) -> float:
        """Distance from ``p`` to the farthest point of the rectangle."""
        dx = max(p.x - self.x_min, self.x_max - p.x)
        dy = max(p.y - self.y_min, self.y_max - p.y)
        return math.hypot(dx, dy)

    def min_distance_to_rect(self, other: "Rect") -> float:
        """Smallest distance between any two points of the rectangles."""
        dx = max(other.x_min - self.x_max, self.x_min - other.x_max, 0.0)
        dy = max(other.y_min - self.y_max, self.y_min - other.y_max, 0.0)
        return math.hypot(dx, dy)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four corner points, counter-clockwise from (x_min, y_min)."""
        return (
            Point(self.x_min, self.y_min),
            Point(self.x_max, self.y_min),
            Point(self.x_max, self.y_max),
            Point(self.x_min, self.y_max),
        )

    def quadrants(self) -> tuple["Rect", "Rect", "Rect", "Rect"]:
        """Split into four equal quadrants: SW, SE, NW, NE."""
        cx, cy = (self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0
        return (
            Rect(self.x_min, self.y_min, cx, cy),
            Rect(cx, self.y_min, self.x_max, cy),
            Rect(self.x_min, cy, cx, self.y_max),
            Rect(cx, cy, self.x_max, self.y_max),
        )
