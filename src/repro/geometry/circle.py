"""Circles: the notification regions of Elaps subscriptions."""

from __future__ import annotations

from dataclasses import dataclass

from .point import Point
from .rect import Rect


@dataclass(frozen=True)
class Circle:
    """A closed disk with ``center`` and ``radius`` (metres)."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError(f"negative radius: {self.radius}")

    def contains(self, p: Point) -> bool:
        """True if ``p`` is inside or on the circle."""
        return self.center.distance_to(p) <= self.radius

    def intersects_rect(self, rect: Rect) -> bool:
        """True if the disk and the rectangle share at least one point."""
        return rect.min_distance_to_point(self.center) <= self.radius

    def contains_rect(self, rect: Rect) -> bool:
        """True if the rectangle lies entirely inside the disk."""
        return rect.max_distance_to_point(self.center) <= self.radius

    def contains_any_corner_of(self, rect: Rect) -> bool:
        """True if at least one corner of ``rect`` is inside the disk.

        Used by the BEQ-Tree spatial range match (Algorithm 2): when the
        notification region covers a corner of the cell, the upper bound of
        the iDistance interval is unbounded within that cell.
        """
        return any(self.contains(corner) for corner in rect.corners())
