"""The N x N uniform grid used by GM, iGM and idGM.

The paper partitions the whole space into ``N x N`` unit cells (Section 3.4)
and represents safe regions as sets of cells.  A cell is addressed by its
integer coordinates ``(i, j)`` with ``i`` indexing the x axis and ``j`` the
y axis, both in ``range(n)``.

Two distance notions matter:

* *point-to-cell* min distance — used for the safety test (a cell is safe
  iff its min distance to every matching event exceeds the notification
  radius) and for the heap ordering of iGM;
* *cell-to-cell* min distance — used to dilate a safe region into its
  impact region (Definition 2: every point within distance ``r`` of the
  safe region).

For uniform cells the cell-to-cell min distance only depends on the index
offset, so the dilation structuring element (the "disk of offsets") is
computed once per radius and cached.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterator, List, Tuple

import numpy as np

from .circle import Circle
from .point import Point
from .rect import Rect

Cell = Tuple[int, int]

# Cap on the size of (points x offsets) intermediates in the array kernels;
# larger inputs are processed in chunks of roughly this many elements.
_ARRAY_CHUNK = 1 << 18

# Below this many (cells x offsets) products the scalar dilation loop beats
# the numpy kernel's fixed overhead.
_DILATE_ARRAY_CUTOVER = 4096


class Grid:
    """A uniform ``n x n`` partition of a square space."""

    def __init__(self, n: int, space: Rect) -> None:
        if n <= 0:
            raise ValueError(f"grid resolution must be positive, got {n}")
        self.n = n
        self.space = space
        self.cell_width = space.width / n
        self.cell_height = space.height / n
        self._disk_offsets: Dict[Tuple[float, bool], FrozenSet[Cell]] = {}
        self._strips: Dict[float, Dict[Cell, FrozenSet[Cell]]] = {}
        self._offset_arrays: Dict[Tuple[float, bool], Tuple[np.ndarray, np.ndarray]] = {}
        self._strip_masks: Dict[float, Dict[Cell, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def cell_of(self, p: Point) -> Cell:
        """The cell containing ``p``; points outside the space are clamped."""
        i = int((p.x - self.space.x_min) / self.cell_width)
        j = int((p.y - self.space.y_min) / self.cell_height)
        return (min(max(i, 0), self.n - 1), min(max(j, 0), self.n - 1))

    def cells_of_array(self, xs: np.ndarray, ys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`cell_of` over coordinate arrays.

        ``int()`` truncation (scalar path) and ``np.floor`` round negatives
        differently, but clamping to ``[0, n-1]`` erases the difference: both
        land on 0 for points left of the space.
        """
        i = np.floor((xs - self.space.x_min) / self.cell_width).astype(np.int64)
        j = np.floor((ys - self.space.y_min) / self.cell_height).astype(np.int64)
        np.clip(i, 0, self.n - 1, out=i)
        np.clip(j, 0, self.n - 1, out=j)
        return i, j

    def in_bounds(self, cell: Cell) -> bool:
        """True when the cell index lies inside the grid."""
        return 0 <= cell[0] < self.n and 0 <= cell[1] < self.n

    def cell_rect(self, cell: Cell) -> Rect:
        """The rectangle a cell covers."""
        i, j = cell
        return Rect(
            self.space.x_min + i * self.cell_width,
            self.space.y_min + j * self.cell_height,
            self.space.x_min + (i + 1) * self.cell_width,
            self.space.y_min + (j + 1) * self.cell_height,
        )

    def cell_center(self, cell: Cell) -> Point:
        """The centre point of a cell."""
        i, j = cell
        return Point(
            self.space.x_min + (i + 0.5) * self.cell_width,
            self.space.y_min + (j + 0.5) * self.cell_height,
        )

    def cell_index(self, cell: Cell) -> int:
        """Row-major linear id of a cell; used for bitmap encoding."""
        i, j = cell
        return j * self.n + i

    def cell_from_index(self, index: int) -> Cell:
        """Inverse of :meth:`cell_index`."""
        return (index % self.n, index // self.n)

    def all_cells(self) -> Iterator[Cell]:
        """Every cell, row-major."""
        for j in range(self.n):
            for i in range(self.n):
                yield (i, j)

    # ------------------------------------------------------------------
    # Neighbourhood
    # ------------------------------------------------------------------
    def neighbors(self, cell: Cell) -> List[Cell]:
        """The 8-connected in-bounds neighbours of ``cell``.

        iGM expands the safe region over adjacent cells; 8-connectivity makes
        the circular expansion of Algorithm 1 reach diagonal cells directly.
        """
        i, j = cell
        result = []
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                if di == 0 and dj == 0:
                    continue
                neighbor = (i + di, j + dj)
                if self.in_bounds(neighbor):
                    result.append(neighbor)
        return result

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def min_distance_point_cell(self, p: Point, cell: Cell) -> float:
        """Min distance from ``p`` to any point of ``cell`` (0 when inside)."""
        return self.cell_rect(cell).min_distance_to_point(p)

    def min_distance_cell_cell(self, a: Cell, b: Cell) -> float:
        """Min distance between any two points of cells ``a`` and ``b``."""
        dx = max(abs(a[0] - b[0]) - 1, 0) * self.cell_width
        dy = max(abs(a[1] - b[1]) - 1, 0) * self.cell_height
        return math.hypot(dx, dy)

    # ------------------------------------------------------------------
    # Dilation (impact-region structuring element)
    # ------------------------------------------------------------------
    def disk_offsets(self, radius: float, inclusive: bool = False) -> FrozenSet[Cell]:
        """Index offsets ``(di, dj)`` whose cell-to-cell min distance < radius.

        Dilating a cell set by this structuring element yields exactly the
        set of cells containing at least one point within distance ``radius``
        of the set — the grid rendering of Definition 2's impact region.

        With ``inclusive=True`` offsets at distance exactly ``radius`` are
        kept too; the safety test needs that closed variant (a cell is unsafe
        already when a matching event sits at distance exactly ``r``).
        """
        key = (radius, inclusive)
        cached = self._disk_offsets.get(key)
        if cached is not None:
            return cached
        reach_x = int(radius / self.cell_width) + 2
        reach_y = int(radius / self.cell_height) + 2
        offsets = set()
        for di in range(-reach_x, reach_x + 1):
            for dj in range(-reach_y, reach_y + 1):
                dx = max(abs(di) - 1, 0) * self.cell_width
                dy = max(abs(dj) - 1, 0) * self.cell_height
                distance = math.hypot(dx, dy)
                if distance < radius or (inclusive and distance == radius):
                    offsets.add((di, dj))
        result = frozenset(offsets)
        self._disk_offsets[key] = result
        return result

    def dilation_strips(self, radius: float) -> Dict[Cell, FrozenSet[Cell]]:
        """Per-direction dilation deltas (the Example 2 optimisation).

        When a cell ``c`` joins a safe region that already contains its
        neighbour ``n = c + d``, the impact cells newly introduced by ``c``
        are contained in ``dilate({c}) - dilate({n})`` — a thin strip on the
        far side of ``c``.  The strip only depends on the direction ``d``,
        so the eight strips are precomputed per radius:
        ``strips[d] = {off in disk_offsets(radius) : off - d not in it}``.
        """
        cached = self._strips.get(radius)
        if cached is not None:
            return cached
        offsets = self.disk_offsets(radius)
        strips: Dict[Cell, FrozenSet[Cell]] = {}
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                if di == 0 and dj == 0:
                    continue
                strips[(di, dj)] = frozenset(
                    (oi, oj) for (oi, oj) in offsets if (oi - di, oj - dj) not in offsets
                )
        self._strips[radius] = strips
        return strips

    def disk_offset_arrays(
        self, radius: float, inclusive: bool = False
    ) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`disk_offsets` as a pair of int64 arrays ``(di, dj)``.

        The offsets are sorted lexicographically so every kernel built on the
        arrays sees a stable, reproducible order; cached per radius like the
        frozenset form.
        """
        key = (radius, inclusive)
        cached = self._offset_arrays.get(key)
        if cached is None:
            offsets = sorted(self.disk_offsets(radius, inclusive=inclusive))
            arr = np.array(offsets, dtype=np.int64).reshape(-1, 2)
            cached = (np.ascontiguousarray(arr[:, 0]), np.ascontiguousarray(arr[:, 1]))
            self._offset_arrays[key] = cached
        return cached

    def strip_offset_masks(self, radius: float) -> Dict[Cell, np.ndarray]:
        """:meth:`dilation_strips` as boolean masks over the offset arrays.

        ``masks[d][k]`` is True when the k-th offset of
        ``disk_offset_arrays(radius)`` belongs to the direction-``d`` strip,
        so strip intersections become elementwise ANDs.
        """
        cached = self._strip_masks.get(radius)
        if cached is None:
            off_i, off_j = self.disk_offset_arrays(radius)
            pairs = list(zip(off_i.tolist(), off_j.tolist()))
            cached = {
                direction: np.array([off in strip for off in pairs], dtype=bool)
                for direction, strip in self.dilation_strips(radius).items()
            }
            self._strip_masks[radius] = cached
        return cached

    def dilate_points_mask(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        radius: float,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Mark every cell within ``radius`` (closed) of any point into ``out``.

        Array kernel for :func:`repro.core.field.dilate_point`: the resulting
        ``(n, n)`` boolean mask (indexed ``[i, j]``) equals folding
        ``dilate_point`` over the points one at a time.  The exact per-cell
        distance test reproduces ``Rect.min_distance_to_point`` bit for bit:
        rectangle edges are formed as ``x_min + (i + 1) * cell_width`` exactly
        as :meth:`cell_rect` does, and the distance as ``sqrt(dx*dx + dy*dy)``.
        """
        n = self.n
        if out is None:
            out = np.zeros((n, n), dtype=bool)
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.size == 0:
            return out
        off_i, off_j = self.disk_offset_arrays(radius, inclusive=True)
        if off_i.size == 0:
            return out
        ci, cj = self.cells_of_array(xs, ys)
        cw, ch = self.cell_width, self.cell_height
        x0, y0 = self.space.x_min, self.space.y_min
        step = max(1, _ARRAY_CHUNK // off_i.size)
        for lo in range(0, xs.size, step):
            hi = lo + step
            I = ci[lo:hi, None] + off_i[None, :]
            J = cj[lo:hi, None] + off_j[None, :]
            inb = (I >= 0) & (I < n) & (J >= 0) & (J < n)
            px = xs[lo:hi, None]
            py = ys[lo:hi, None]
            dx = np.maximum(np.maximum(x0 + I * cw - px, 0.0), px - (x0 + (I + 1) * cw))
            dy = np.maximum(np.maximum(y0 + J * ch - py, 0.0), py - (y0 + (J + 1) * ch))
            keep = inb & (np.sqrt(dx * dx + dy * dy) <= radius)
            out[I[keep], J[keep]] = True
        return out

    def dilate(self, cells: FrozenSet[Cell] | set, radius: float) -> set:
        """All in-bounds cells within ``radius`` of the given cell set."""
        offsets = self.disk_offsets(radius)
        if len(cells) * len(offsets) >= _DILATE_ARRAY_CUTOVER:
            seeds = np.array(sorted(cells), dtype=np.int64).reshape(-1, 2)
            # The mask kernel cannot represent out-of-bounds seed cells, whose
            # dilation the scalar loop still clips into the grid.
            if seeds.size == 0 or (
                seeds.min() >= 0 and seeds.max() < self.n
            ):
                return self._dilate_array(seeds, radius)
        result = set()
        for (i, j) in cells:
            for (di, dj) in offsets:
                candidate = (i + di, j + dj)
                if self.in_bounds(candidate):
                    result.add(candidate)
        return result

    def _dilate_array(self, seeds: np.ndarray, radius: float) -> set:
        """Array form of :meth:`dilate` for in-bounds seed cells."""
        off_i, off_j = self.disk_offset_arrays(radius)
        mask = np.zeros((self.n, self.n), dtype=bool)
        if seeds.size == 0 or off_i.size == 0:
            return set()
        step = max(1, _ARRAY_CHUNK // off_i.size)
        for lo in range(0, len(seeds), step):
            I = (seeds[lo : lo + step, 0][:, None] + off_i[None, :]).ravel()
            J = (seeds[lo : lo + step, 1][:, None] + off_j[None, :]).ravel()
            keep = (I >= 0) & (I < self.n) & (J >= 0) & (J < self.n)
            mask[I[keep], J[keep]] = True
        ii, jj = np.nonzero(mask)
        return set(zip(ii.tolist(), jj.tolist()))

    def cells_within_radius(
        self, cell: Cell, radius: float, inclusive: bool = False
    ) -> Iterator[Cell]:
        """In-bounds cells whose min distance to ``cell`` is below ``radius``."""
        i, j = cell
        for (di, dj) in self.disk_offsets(radius, inclusive=inclusive):
            candidate = (i + di, j + dj)
            if self.in_bounds(candidate):
                yield candidate

    # ------------------------------------------------------------------
    # Circle coverage
    # ------------------------------------------------------------------
    def cells_intersecting_circle(self, circle: Circle) -> Iterator[Cell]:
        """All cells sharing at least one point with the disk."""
        lo = self.cell_of(Point(circle.center.x - circle.radius, circle.center.y - circle.radius))
        hi = self.cell_of(Point(circle.center.x + circle.radius, circle.center.y + circle.radius))
        for i in range(lo[0], hi[0] + 1):
            for j in range(lo[1], hi[1] + 1):
                cell = (i, j)
                if circle.intersects_rect(self.cell_rect(cell)):
                    yield cell
