"""The N x N uniform grid used by GM, iGM and idGM.

The paper partitions the whole space into ``N x N`` unit cells (Section 3.4)
and represents safe regions as sets of cells.  A cell is addressed by its
integer coordinates ``(i, j)`` with ``i`` indexing the x axis and ``j`` the
y axis, both in ``range(n)``.

Two distance notions matter:

* *point-to-cell* min distance — used for the safety test (a cell is safe
  iff its min distance to every matching event exceeds the notification
  radius) and for the heap ordering of iGM;
* *cell-to-cell* min distance — used to dilate a safe region into its
  impact region (Definition 2: every point within distance ``r`` of the
  safe region).

For uniform cells the cell-to-cell min distance only depends on the index
offset, so the dilation structuring element (the "disk of offsets") is
computed once per radius and cached.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterator, List, Tuple

from .circle import Circle
from .point import Point
from .rect import Rect

Cell = Tuple[int, int]


class Grid:
    """A uniform ``n x n`` partition of a square space."""

    def __init__(self, n: int, space: Rect) -> None:
        if n <= 0:
            raise ValueError(f"grid resolution must be positive, got {n}")
        self.n = n
        self.space = space
        self.cell_width = space.width / n
        self.cell_height = space.height / n
        self._disk_offsets: Dict[Tuple[float, bool], FrozenSet[Cell]] = {}
        self._strips: Dict[float, Dict[Cell, FrozenSet[Cell]]] = {}

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def cell_of(self, p: Point) -> Cell:
        """The cell containing ``p``; points outside the space are clamped."""
        i = int((p.x - self.space.x_min) / self.cell_width)
        j = int((p.y - self.space.y_min) / self.cell_height)
        return (min(max(i, 0), self.n - 1), min(max(j, 0), self.n - 1))

    def in_bounds(self, cell: Cell) -> bool:
        """True when the cell index lies inside the grid."""
        return 0 <= cell[0] < self.n and 0 <= cell[1] < self.n

    def cell_rect(self, cell: Cell) -> Rect:
        """The rectangle a cell covers."""
        i, j = cell
        return Rect(
            self.space.x_min + i * self.cell_width,
            self.space.y_min + j * self.cell_height,
            self.space.x_min + (i + 1) * self.cell_width,
            self.space.y_min + (j + 1) * self.cell_height,
        )

    def cell_center(self, cell: Cell) -> Point:
        """The centre point of a cell."""
        i, j = cell
        return Point(
            self.space.x_min + (i + 0.5) * self.cell_width,
            self.space.y_min + (j + 0.5) * self.cell_height,
        )

    def cell_index(self, cell: Cell) -> int:
        """Row-major linear id of a cell; used for bitmap encoding."""
        i, j = cell
        return j * self.n + i

    def cell_from_index(self, index: int) -> Cell:
        """Inverse of :meth:`cell_index`."""
        return (index % self.n, index // self.n)

    def all_cells(self) -> Iterator[Cell]:
        """Every cell, row-major."""
        for j in range(self.n):
            for i in range(self.n):
                yield (i, j)

    # ------------------------------------------------------------------
    # Neighbourhood
    # ------------------------------------------------------------------
    def neighbors(self, cell: Cell) -> List[Cell]:
        """The 8-connected in-bounds neighbours of ``cell``.

        iGM expands the safe region over adjacent cells; 8-connectivity makes
        the circular expansion of Algorithm 1 reach diagonal cells directly.
        """
        i, j = cell
        result = []
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                if di == 0 and dj == 0:
                    continue
                neighbor = (i + di, j + dj)
                if self.in_bounds(neighbor):
                    result.append(neighbor)
        return result

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def min_distance_point_cell(self, p: Point, cell: Cell) -> float:
        """Min distance from ``p`` to any point of ``cell`` (0 when inside)."""
        return self.cell_rect(cell).min_distance_to_point(p)

    def min_distance_cell_cell(self, a: Cell, b: Cell) -> float:
        """Min distance between any two points of cells ``a`` and ``b``."""
        dx = max(abs(a[0] - b[0]) - 1, 0) * self.cell_width
        dy = max(abs(a[1] - b[1]) - 1, 0) * self.cell_height
        return math.hypot(dx, dy)

    # ------------------------------------------------------------------
    # Dilation (impact-region structuring element)
    # ------------------------------------------------------------------
    def disk_offsets(self, radius: float, inclusive: bool = False) -> FrozenSet[Cell]:
        """Index offsets ``(di, dj)`` whose cell-to-cell min distance < radius.

        Dilating a cell set by this structuring element yields exactly the
        set of cells containing at least one point within distance ``radius``
        of the set — the grid rendering of Definition 2's impact region.

        With ``inclusive=True`` offsets at distance exactly ``radius`` are
        kept too; the safety test needs that closed variant (a cell is unsafe
        already when a matching event sits at distance exactly ``r``).
        """
        key = (radius, inclusive)
        cached = self._disk_offsets.get(key)
        if cached is not None:
            return cached
        reach_x = int(radius / self.cell_width) + 2
        reach_y = int(radius / self.cell_height) + 2
        offsets = set()
        for di in range(-reach_x, reach_x + 1):
            for dj in range(-reach_y, reach_y + 1):
                dx = max(abs(di) - 1, 0) * self.cell_width
                dy = max(abs(dj) - 1, 0) * self.cell_height
                distance = math.hypot(dx, dy)
                if distance < radius or (inclusive and distance == radius):
                    offsets.add((di, dj))
        result = frozenset(offsets)
        self._disk_offsets[key] = result
        return result

    def dilation_strips(self, radius: float) -> Dict[Cell, FrozenSet[Cell]]:
        """Per-direction dilation deltas (the Example 2 optimisation).

        When a cell ``c`` joins a safe region that already contains its
        neighbour ``n = c + d``, the impact cells newly introduced by ``c``
        are contained in ``dilate({c}) - dilate({n})`` — a thin strip on the
        far side of ``c``.  The strip only depends on the direction ``d``,
        so the eight strips are precomputed per radius:
        ``strips[d] = {off in disk_offsets(radius) : off - d not in it}``.
        """
        cached = self._strips.get(radius)
        if cached is not None:
            return cached
        offsets = self.disk_offsets(radius)
        strips: Dict[Cell, FrozenSet[Cell]] = {}
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                if di == 0 and dj == 0:
                    continue
                strips[(di, dj)] = frozenset(
                    (oi, oj) for (oi, oj) in offsets if (oi - di, oj - dj) not in offsets
                )
        self._strips[radius] = strips
        return strips

    def dilate(self, cells: FrozenSet[Cell] | set, radius: float) -> set:
        """All in-bounds cells within ``radius`` of the given cell set."""
        offsets = self.disk_offsets(radius)
        result = set()
        for (i, j) in cells:
            for (di, dj) in offsets:
                candidate = (i + di, j + dj)
                if self.in_bounds(candidate):
                    result.add(candidate)
        return result

    def cells_within_radius(
        self, cell: Cell, radius: float, inclusive: bool = False
    ) -> Iterator[Cell]:
        """In-bounds cells whose min distance to ``cell`` is below ``radius``."""
        i, j = cell
        for (di, dj) in self.disk_offsets(radius, inclusive=inclusive):
            candidate = (i + di, j + dj)
            if self.in_bounds(candidate):
                yield candidate

    # ------------------------------------------------------------------
    # Circle coverage
    # ------------------------------------------------------------------
    def cells_intersecting_circle(self, circle: Circle) -> Iterator[Cell]:
        """All cells sharing at least one point with the disk."""
        lo = self.cell_of(Point(circle.center.x - circle.radius, circle.center.y - circle.radius))
        hi = self.cell_of(Point(circle.center.x + circle.radius, circle.center.y + circle.radius))
        for i in range(lo[0], hi[0] + 1):
            for j in range(lo[1], hi[1] + 1):
                cell = (i, j)
                if circle.intersects_rect(self.cell_rect(cell)):
                    yield cell
