"""Planar points and elementary vector operations.

Elaps works in a planar Euclidean space (the paper's experiments cover a
metropolitan extent, where a local tangent-plane approximation is standard).
Points are plain immutable value objects so they can be dictionary keys and
heap payload without surprises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """A point (or free vector) in the plane, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def scaled(self, factor: float) -> "Point":
        """This point treated as a vector, scaled by ``factor``."""
        return Point(self.x * factor, self.y * factor)

    def dot(self, other: "Point") -> float:
        """Dot product with ``other`` treated as vectors."""
        return self.x * other.x + self.y * other.y

    def norm(self) -> float:
        """Euclidean length of this point treated as a vector."""
        return math.hypot(self.x, self.y)

    def normalized(self) -> "Point":
        """Unit vector in this direction; the zero vector is returned as is."""
        length = self.norm()
        if length == 0.0:
            return Point(0.0, 0.0)
        return Point(self.x / length, self.y / length)

    def angle_to(self, other: "Point") -> float:
        """Cosine of the angle between this vector and ``other``.

        Returns 0.0 when either vector is zero, which makes the direction
        preference of idGM neutral for a stationary subscriber.
        """
        denom = self.norm() * other.norm()
        if denom == 0.0:
            return 0.0
        return max(-1.0, min(1.0, self.dot(other) / denom))


ORIGIN = Point(0.0, 0.0)
