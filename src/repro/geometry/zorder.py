"""Z-order (Morton) encoding of grid cells.

Appendix B of the paper assigns each grid cell an id derived from the
z-ordering of the cells so that spatially adjacent cells receive similar
ids, which makes the run-length (WAH) compression of safe-region bitmaps
effective.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _part1by1(value: int) -> int:
    """Spread the low 32 bits of ``value`` so each lands in an even position."""
    value &= 0xFFFFFFFF
    value = (value | (value << 16)) & 0x0000FFFF0000FFFF
    value = (value | (value << 8)) & 0x00FF00FF00FF00FF
    value = (value | (value << 4)) & 0x0F0F0F0F0F0F0F0F
    value = (value | (value << 2)) & 0x3333333333333333
    value = (value | (value << 1)) & 0x5555555555555555
    return value


def _compact1by1(value: int) -> int:
    """Inverse of :func:`_part1by1`."""
    value &= 0x5555555555555555
    value = (value | (value >> 1)) & 0x3333333333333333
    value = (value | (value >> 2)) & 0x0F0F0F0F0F0F0F0F
    value = (value | (value >> 4)) & 0x00FF00FF00FF00FF
    value = (value | (value >> 8)) & 0x0000FFFF0000FFFF
    value = (value | (value >> 16)) & 0x00000000FFFFFFFF
    return value


def interleave(i: int, j: int) -> int:
    """Morton code of the cell ``(i, j)``: bits of i and j interleaved."""
    if i < 0 or j < 0:
        raise ValueError(f"cell coordinates must be non-negative: ({i}, {j})")
    return _part1by1(i) | (_part1by1(j) << 1)


def deinterleave(code: int) -> Tuple[int, int]:
    """The cell ``(i, j)`` whose Morton code is ``code``."""
    if code < 0:
        raise ValueError(f"Morton code must be non-negative: {code}")
    return _compact1by1(code), _compact1by1(code >> 1)


def _part1by1_array(value: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_part1by1` over a uint64 array."""
    value = value & np.uint64(0xFFFFFFFF)
    value = (value | (value << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    value = (value | (value << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    value = (value | (value << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    value = (value | (value << np.uint64(2))) & np.uint64(0x3333333333333333)
    value = (value | (value << np.uint64(1))) & np.uint64(0x5555555555555555)
    return value


def interleave_array(i: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Vectorized :func:`interleave`: Morton codes of ``(i[k], j[k])`` pairs.

    Inputs must be non-negative; returns a uint64 array.
    """
    i = np.asarray(i)
    j = np.asarray(j)
    if i.size and (i.min() < 0 or j.min() < 0):
        raise ValueError("cell coordinates must be non-negative")
    return _part1by1_array(i.astype(np.uint64)) | (
        _part1by1_array(j.astype(np.uint64)) << np.uint64(1)
    )
