"""Z-order (Morton) encoding of grid cells.

Appendix B of the paper assigns each grid cell an id derived from the
z-ordering of the cells so that spatially adjacent cells receive similar
ids, which makes the run-length (WAH) compression of safe-region bitmaps
effective.
"""

from __future__ import annotations

from typing import Tuple


def _part1by1(value: int) -> int:
    """Spread the low 32 bits of ``value`` so each lands in an even position."""
    value &= 0xFFFFFFFF
    value = (value | (value << 16)) & 0x0000FFFF0000FFFF
    value = (value | (value << 8)) & 0x00FF00FF00FF00FF
    value = (value | (value << 4)) & 0x0F0F0F0F0F0F0F0F
    value = (value | (value << 2)) & 0x3333333333333333
    value = (value | (value << 1)) & 0x5555555555555555
    return value


def _compact1by1(value: int) -> int:
    """Inverse of :func:`_part1by1`."""
    value &= 0x5555555555555555
    value = (value | (value >> 1)) & 0x3333333333333333
    value = (value | (value >> 2)) & 0x0F0F0F0F0F0F0F0F
    value = (value | (value >> 4)) & 0x00FF00FF00FF00FF
    value = (value | (value >> 8)) & 0x0000FFFF0000FFFF
    value = (value | (value >> 16)) & 0x00000000FFFFFFFF
    return value


def interleave(i: int, j: int) -> int:
    """Morton code of the cell ``(i, j)``: bits of i and j interleaved."""
    if i < 0 or j < 0:
        raise ValueError(f"cell coordinates must be non-negative: ({i}, {j})")
    return _part1by1(i) | (_part1by1(j) << 1)


def deinterleave(code: int) -> Tuple[int, int]:
    """The cell ``(i, j)`` whose Morton code is ``code``."""
    if code < 0:
        raise ValueError(f"Morton code must be non-negative: {code}")
    return _compact1by1(code), _compact1by1(code >> 1)
