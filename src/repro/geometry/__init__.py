"""Planar geometry substrate: points, rectangles, circles, grids, z-order."""

from .circle import Circle
from .grid import Cell, Grid
from .point import ORIGIN, Point
from .rect import Rect
from .zorder import deinterleave, interleave

__all__ = [
    "Cell",
    "Circle",
    "Grid",
    "ORIGIN",
    "Point",
    "Rect",
    "deinterleave",
    "interleave",
]
