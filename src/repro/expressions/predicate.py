"""Predicates: the atoms of Elaps boolean-expression subscriptions.

A predicate is a triple ``(attribute, operator, operand)`` (Section 4).
Elaps supports the relational operators ``<, <=, =, !=, >=, >`` plus the
interval operator ``[]`` and the set operators ``in`` / ``not in``.  A
predicate accepts a candidate value (the value an event carries for the
attribute) and answers whether the constraint holds.

Values within one attribute must be mutually comparable (all numeric or
all strings); the dataset generators guarantee this, and the sorted
inverted lists of the indexes rely on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, FrozenSet, Tuple, Union

Scalar = Union[int, float, str]
Operand = Union[Scalar, Tuple[Scalar, Scalar], FrozenSet[Scalar]]


class Operator(enum.Enum):
    """The predicate operators Elaps supports."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    BETWEEN = "[]"
    IN = "in"
    NOT_IN = "not in"


_RANGE_OPERATORS = frozenset({Operator.LT, Operator.LE, Operator.GT, Operator.GE})


def type_group(value: Any) -> str:
    """The comparison group a value belongs to under :func:`operand_key`.

    Booleans share the ``"num"`` group with ints and floats because
    Python compares them as numbers (``True == 1``) — the indexes must
    agree with :meth:`Predicate.matches` on that aliasing.  Values from
    different groups are never ``<``/``>`` comparable, and range
    predicates across groups are unsatisfiable.
    """
    if isinstance(value, bool) or isinstance(value, (int, float)):
        return "num"
    return type(value).__name__


def operand_key(value: Any) -> Tuple[str, Any]:
    """A total order over mixed operand/value types.

    Keys sort first by :func:`type_group`, then by value within the
    group, so a list of mixed-type values still has one well-defined
    sorted order (numbers before strings, alphabetical group names in
    between) while homogeneous data keeps its natural order — the
    property the golden traces rely on.
    """
    if isinstance(value, bool):
        # Alias to the integer so ("num", True) == ("num", 1) sorts and
        # compares exactly like the int, matching Predicate.matches.
        return ("num", int(value))
    if isinstance(value, (int, float)):
        return ("num", value)
    return (type(value).__name__, value)


@dataclass(frozen=True)
class Predicate:
    """A single constraint ``attribute operator operand``."""

    attribute: str
    operator: Operator
    operand: Operand

    def __post_init__(self) -> None:
        if self.operator is Operator.BETWEEN:
            if not (isinstance(self.operand, tuple) and len(self.operand) == 2):
                raise ValueError(
                    f"BETWEEN operand must be a (low, high) pair, got {self.operand!r}"
                )
            low, high = self.operand
            if low > high:
                raise ValueError(f"empty interval [{low}, {high}]")
        elif self.operator in (Operator.IN, Operator.NOT_IN):
            if not isinstance(self.operand, frozenset):
                # Accept any iterable but normalise to a frozenset so the
                # predicate stays hashable.
                object.__setattr__(self, "operand", frozenset(self.operand))
        elif isinstance(self.operand, (tuple, frozenset, set, list)):
            raise ValueError(
                f"operator {self.operator.value!r} takes a scalar operand, "
                f"got {self.operand!r}"
            )

    def matches(self, value: Any) -> bool:
        """True if ``value`` satisfies this predicate.

        Total over mixed types: a value from a different comparison
        group than a range/interval operand (``"x"`` vs ``3``) simply
        fails the predicate instead of raising — the contract the
        sorted-index probes implement with group-bounded range scans.
        """
        op = self.operator
        if op is Operator.EQ:
            return value == self.operand
        if op is Operator.NE:
            return value != self.operand
        try:
            if op is Operator.LT:
                return value < self.operand
            if op is Operator.LE:
                return value <= self.operand
            if op is Operator.GT:
                return value > self.operand
            if op is Operator.GE:
                return value >= self.operand
            if op is Operator.BETWEEN:
                low, high = self.operand
                return low <= value <= high
        except TypeError:
            return False
        if op is Operator.IN:
            return value in self.operand
        if op is Operator.NOT_IN:
            return value not in self.operand
        raise AssertionError(f"unhandled operator {op}")

    def is_equality(self) -> bool:
        """True for ``=`` predicates."""
        return self.operator is Operator.EQ

    def is_range(self) -> bool:
        """True for the operators whose satisfying set is an interval."""
        return self.operator in _RANGE_OPERATORS or self.operator is Operator.BETWEEN

    def __str__(self) -> str:
        if self.operator is Operator.BETWEEN:
            low, high = self.operand
            return f"{self.attribute} in [{low}, {high}]"
        if self.operator in (Operator.IN, Operator.NOT_IN):
            members = ", ".join(sorted(map(str, self.operand)))
            return f"{self.attribute} {self.operator.value} {{{members}}}"
        return f"{self.attribute} {self.operator.value} {self.operand}"
