"""DNF expressions: disjunctions of conjunctions.

The paper models a subscription as a single conjunction of predicates and
notes (via OpIndex) that the indexing schemes "can be extended to support
more expressive subscriptions".  This module provides that extension: a
:class:`DnfExpression` is an OR over conjunctive clauses, e.g.

    (brand = samsung AND size >= 50) OR (brand = lg AND price < 800)

Every component of the stack accepts a DNF wherever it accepts a plain
:class:`~repro.expressions.BooleanExpression`:

* the BEQ-Tree and the baseline event indexes match a DNF subscription by
  matching each clause and unioning the results;
* the subscription index registers one entry per clause and reports the
  subscriber once *any* clause is satisfied;
* safe-region construction treats the union of the clauses' matching
  events as the matching set — an event matching any clause can trigger a
  notification, so it must constrain the safe region.

A plain conjunction is the 1-clause special case, so the DNF type also
serves as the normal form for user-facing APIs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Tuple

from .boolean import BooleanExpression


@dataclass(frozen=True)
class DnfExpression:
    """An immutable disjunction of :class:`BooleanExpression` clauses."""

    clauses: Tuple[BooleanExpression, ...]

    def __init__(self, clauses: Iterable[BooleanExpression]) -> None:
        object.__setattr__(self, "clauses", tuple(clauses))
        if not self.clauses:
            raise ValueError("a DNF expression needs at least one clause")

    def __len__(self) -> int:
        """The total number of predicates across all clauses."""
        return sum(len(clause) for clause in self.clauses)

    def __iter__(self):
        """Iterates the predicates of every clause (for size accounting)."""
        for clause in self.clauses:
            yield from clause

    @property
    def predicates(self) -> tuple:
        """All predicates across clauses (clause structure flattened)."""
        return tuple(p for clause in self.clauses for p in clause)

    @property
    def attributes(self) -> frozenset:
        """Attributes constrained by *any* clause."""
        result = frozenset()
        for clause in self.clauses:
            result |= clause.attributes
        return result

    def matches(self, attributes: Mapping[str, object]) -> bool:
        """True if at least one clause is fully satisfied."""
        return any(clause.matches(attributes) for clause in self.clauses)

    def __str__(self) -> str:
        return " OR ".join(f"({clause})" for clause in self.clauses)


def clauses_of(expression) -> Tuple[BooleanExpression, ...]:
    """The conjunctive clauses of any supported expression type.

    A plain :class:`BooleanExpression` is one clause; a
    :class:`DnfExpression` contributes each of its clauses.  Index code
    uses this to stay polymorphic over the two expression kinds.
    """
    if isinstance(expression, DnfExpression):
        return expression.clauses
    if isinstance(expression, BooleanExpression):
        return (expression,)
    raise TypeError(f"not a boolean expression: {expression!r}")
