"""Boolean expressions: conjunctions of predicates.

The paper models a subscription's interest as a conjunction of predicates
(Section 4).  An event be-matches a subscription when *every* predicate of
the subscription is satisfied by the event tuple carrying that attribute
(Definition 3); events may carry extra attributes the subscription never
mentions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Tuple

from .predicate import Predicate


@dataclass(frozen=True)
class BooleanExpression:
    """An immutable conjunction of :class:`Predicate` objects."""

    predicates: Tuple[Predicate, ...]

    def __init__(self, predicates: Iterable[Predicate]) -> None:
        object.__setattr__(self, "predicates", tuple(predicates))
        if not self.predicates:
            raise ValueError("a boolean expression needs at least one predicate")

    def __len__(self) -> int:
        """The subscription size |s|: the number of predicates."""
        return len(self.predicates)

    def __iter__(self):
        return iter(self.predicates)

    @property
    def attributes(self) -> frozenset:
        """The distinct attributes constrained by this expression."""
        return frozenset(p.attribute for p in self.predicates)

    def matches(self, attributes: Mapping[str, object]) -> bool:
        """Definition 3: every predicate satisfied by the event's tuples."""
        for predicate in self.predicates:
            if predicate.attribute not in attributes:
                return False
            if not predicate.matches(attributes[predicate.attribute]):
                return False
        return True

    def __str__(self) -> str:
        return " AND ".join(str(p) for p in self.predicates)
