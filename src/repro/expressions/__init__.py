"""Boolean-expression substrate: predicates, expressions, events, subscriptions."""

from .boolean import BooleanExpression
from .dnf import DnfExpression, clauses_of
from .event import Event
from .predicate import Operator, Predicate, operand_key, type_group
from .subscription import Subscription

__all__ = [
    "BooleanExpression",
    "DnfExpression",
    "Event",
    "Operator",
    "Predicate",
    "Subscription",
    "clauses_of",
    "operand_key",
    "type_group",
]
