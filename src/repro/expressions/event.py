"""Spatial events: geo-tagged attribute-value tuples published to Elaps.

A spatial event (Section 4) is a conjunction of equality tuples
``A1 = o1 AND ... AND A|e| = o|e|`` plus a location.  Events carry an
arrival timestamp and an optional expiry timestamp; the event processor
removes expired events (Appendix C) — by Lemma 4 an expiry never triggers
client communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping, Optional

from ..geometry import Point


@dataclass(frozen=True)
class Event:
    """An immutable spatial event."""

    event_id: int
    attributes: Mapping[str, object]
    location: Point
    arrived_at: int = 0
    expires_at: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ValueError("an event needs at least one attribute tuple")
        # Freeze the attribute mapping so events stay hashable-by-identity safe.
        object.__setattr__(self, "attributes", MappingProxyType(dict(self.attributes)))
        if self.expires_at is not None and self.expires_at < self.arrived_at:
            raise ValueError(
                f"event {self.event_id} expires at {self.expires_at} "
                f"before arriving at {self.arrived_at}"
            )

    def __reduce__(self):
        """Pickle support for cross-process shipping (the frozen
        ``MappingProxyType`` cannot pickle itself).

        Rebuilding through the constructor re-freezes the mapping; the
        plain-dict copy preserves attribute *insertion order*, which is
        load-bearing — index probes iterate attributes in mapping order,
        so reordering would change notification order under replay.
        """
        return (
            Event,
            (
                self.event_id,
                dict(self.attributes),
                self.location,
                self.arrived_at,
                self.expires_at,
            ),
        )

    def __len__(self) -> int:
        """The event size |e|: the number of attribute tuples."""
        return len(self.attributes)

    def is_expired(self, now: int) -> bool:
        """True once the validity period has ended at time ``now``."""
        return self.expires_at is not None and now >= self.expires_at

    def __hash__(self) -> int:  # attributes mapping is not hashable
        return hash(self.event_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.event_id == other.event_id
