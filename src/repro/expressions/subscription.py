"""Spatial subscriptions: a boolean expression plus a notification region.

A spatial subscription (Section 4) extends a boolean expression with a
circular notification region of radius ``r`` centred at the subscriber's
*current* location.  Because the subscriber moves, the subscription object
itself stores only the radius; match tests take the current location as an
argument (or a prebuilt :class:`~repro.geometry.Circle`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry import Circle, Point
from .boolean import BooleanExpression
from .event import Event


@dataclass(frozen=True)
class Subscription:
    """An immutable spatial subscription."""

    sub_id: int
    expression: BooleanExpression
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError(f"notification radius must be positive: {self.radius}")

    def __len__(self) -> int:
        """The subscription size |s|."""
        return len(self.expression)

    def notification_region(self, at: Point) -> Circle:
        """The notification circle when the subscriber stands at ``at``."""
        return Circle(at, self.radius)

    def be_matches(self, event: Event) -> bool:
        """Definition 3: boolean-expression match, ignoring locations."""
        return self.expression.matches(event.attributes)

    def spatial_matches(self, event: Event, at: Point) -> bool:
        """Definition 4: the event lies inside the notification region."""
        return at.distance_to(event.location) <= self.radius

    def matches(self, event: Event, at: Point) -> bool:
        """Definition 5: both the boolean-expression and the spatial match."""
        return self.be_matches(event) and self.spatial_matches(event, at)
