"""k-index over subscriptions: the alternative subscription index.

Section 5 of the paper adopts "an existing subscription index such as
OpIndex [16] and BE-Tree [15]" for the event-arrival path.  The default
here is the OpIndex-style :class:`~repro.index.SubscriptionIndex`; this
module provides the k-index alternative (Whang et al., PVLDB 2009) with
the same interface, so the server can run either.

k-index's first layer partitions subscriptions by *subscription size*
(the predicate count of a clause); the second layer groups each
partition's predicates by attribute.  Matching an event runs the
counting algorithm within each partition and reports the clauses whose
satisfied-predicate counter reaches the partition's size.

The size prune: a clause constraining ``k`` *distinct attributes* needs
an event carrying all of them, so partitions keyed ``k > |e|`` cannot
contain matches and are skipped outright — the k-index analogue of
OpIndex's pivot prune.  (Partitioning by distinct-attribute count rather
than raw predicate count keeps the prune sound when a clause stacks
several predicates on one attribute, e.g. both bounds of a range plus an
exclusion.)
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from ..expressions import Event, Predicate, Subscription
from ..expressions.dnf import clauses_of


class KSubscriptionIndex:
    """Size-partitioned counting index over subscriptions."""

    def __init__(self) -> None:
        # distinct-attribute count -> attribute -> [(predicate, clause key)]
        self._partitions: Dict[int, Dict[str, List[Tuple[Predicate, Tuple[int, int]]]]] = {}
        self._subscriptions: Dict[int, Subscription] = {}
        # clause key -> (distinct attribute count, predicate count)
        self._clause_sizes: Dict[Tuple[int, int], Tuple[int, int]] = {}

    def __len__(self) -> int:
        return len(self._subscriptions)

    def __contains__(self, sub_id: int) -> bool:
        return sub_id in self._subscriptions

    def insert(self, subscription: Subscription) -> None:
        """Register a subscription; a DNF registers one entry per clause."""
        if subscription.sub_id in self._subscriptions:
            raise ValueError(f"duplicate subscription id {subscription.sub_id}")
        for clause_index, clause in enumerate(clauses_of(subscription.expression)):
            key = (subscription.sub_id, clause_index)
            attribute_count = len(clause.attributes)
            partition = self._partitions.setdefault(attribute_count, defaultdict(list))
            for predicate in clause:
                partition[predicate.attribute].append((predicate, key))
            self._clause_sizes[key] = (attribute_count, len(clause.predicates))
        self._subscriptions[subscription.sub_id] = subscription

    def delete(self, subscription: Subscription) -> None:
        """Remove a subscription's clauses; empty partitions are pruned."""
        stored = self._subscriptions.pop(subscription.sub_id, None)
        if stored is None:
            raise KeyError(f"subscription {subscription.sub_id} is not in the index")
        for clause_index, clause in enumerate(clauses_of(stored.expression)):
            key = (stored.sub_id, clause_index)
            attribute_count, _ = self._clause_sizes.pop(key)
            partition = self._partitions[attribute_count]
            for predicate in clause:
                partition[predicate.attribute].remove((predicate, key))
                if not partition[predicate.attribute]:
                    del partition[predicate.attribute]
            if not partition:
                del self._partitions[attribute_count]

    def match_event(self, event: Event) -> List[Subscription]:
        """All stored subscriptions whose expression ``event`` satisfies."""
        matched: List[Subscription] = []
        matched_ids: set = set()
        event_size = len(event)
        for attribute_count, partition in self._partitions.items():
            if attribute_count > event_size:
                continue  # the k-index size prune
            counters: Dict[Tuple[int, int], int] = defaultdict(int)
            for attribute, value in event.attributes.items():
                for predicate, key in partition.get(attribute, ()):
                    if predicate.matches(value):
                        counters[key] += 1
            for key, count in counters.items():
                sub_id = key[0]
                if sub_id in matched_ids:
                    continue
                if count == self._clause_sizes[key][1]:
                    matched_ids.add(sub_id)
                    matched.append(self._subscriptions[sub_id])
        return matched
