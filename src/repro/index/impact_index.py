"""The impact-region index (Section 5).

Safe regions travel to the clients; the matching *impact regions* stay on
the server, stored in an inverted index keyed by grid-cell id.  When a new
event arrives, the server looks up the event's cell and obtains exactly
the subscribers whose impact region covers that cell — the subscribers
whose safe region the event may invalidate (Definition 2).

GM produces impact regions covering almost the whole space, stored in
complement form.  Materialising those into the per-cell inverted index
would explode it, so complement regions live in a side table consulted on
every lookup — an honest rendering of GM's cost profile: with GM, *every*
arriving matching event hits (nearly) every subscriber.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..geometry import Cell

if TYPE_CHECKING:  # pragma: no cover
    from ..core.regions import ImpactRegion


class ImpactRegionIndex:
    """Inverted index: grid cell -> subscribers whose impact region covers it."""

    #: covering-cache entries beyond this are dropped wholesale (bounds
    #: the memory of a server fed events from a huge, sparse grid)
    CACHE_LIMIT = 1 << 16

    def __init__(self) -> None:
        self._by_cell: Dict[Cell, Set[int]] = defaultdict(set)
        self._by_subscriber: Dict[int, FrozenSet[Cell]] = {}
        self._complement: Dict[int, "ImpactRegion"] = {}
        # cell -> subscribers covering it, memoised for the batched event
        # path; any subscription churn (replace/remove) invalidates it
        # wholesale, since a complement region can change the answer for
        # every cell at once
        self._covering_cache: Dict[Cell, FrozenSet[int]] = {}
        #: batched lookups answered from the covering cache
        self.cache_hits = 0

    def __len__(self) -> int:
        return len(self._by_subscriber) + len(self._complement)

    def __contains__(self, sub_id: int) -> bool:
        return sub_id in self._by_subscriber or sub_id in self._complement

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def replace(self, sub_id: int, impact_cells: Iterable[Cell]) -> None:
        """Install (or overwrite) a subscriber's impact region as a cell set."""
        self.remove(sub_id)
        self._covering_cache.clear()
        cells = frozenset(impact_cells)
        self._by_subscriber[sub_id] = cells
        for cell in cells:
            self._by_cell[cell].add(sub_id)

    def replace_region(self, sub_id: int, region: "ImpactRegion") -> None:
        """Install an :class:`ImpactRegion`, honouring complement storage."""
        if region.complement:
            self.remove(sub_id)
            self._covering_cache.clear()
            self._complement[sub_id] = region
        else:
            self.replace(sub_id, region.cells)

    def remove(self, sub_id: int) -> None:
        """Drop a subscriber's impact region; no-op if absent."""
        self._covering_cache.clear()
        self._complement.pop(sub_id, None)
        cells = self._by_subscriber.pop(sub_id, None)
        if cells is None:
            return
        for cell in cells:
            bucket = self._by_cell[cell]
            bucket.discard(sub_id)
            if not bucket:
                del self._by_cell[cell]

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def region_of(self, sub_id: int) -> Optional[Tuple[bool, FrozenSet[Cell]]]:
        """The stored region as ``(complement, cells)``; None when the
        subscriber has no installed region.  Used by snapshots — the
        cells are the exact durable representation either storage form
        round-trips through."""
        region = self._complement.get(sub_id)
        if region is not None:
            return True, frozenset(region.cells)
        cells = self._by_subscriber.get(sub_id)
        if cells is None:
            return None
        return False, cells

    def covers(self, sub_id: int, cell: Cell) -> bool:
        """Does this subscriber's impact region cover ``cell``?"""
        region = self._complement.get(sub_id)
        if region is not None:
            return region.covers_cell(cell)
        return sub_id in self._by_cell.get(cell, ())

    def subscribers_covering(self, cell: Cell) -> FrozenSet[int]:
        """All subscribers whose impact region covers ``cell``."""
        direct = self._by_cell.get(cell, set())
        via_complement = {
            sub_id
            for sub_id, region in self._complement.items()
            if region.covers_cell(cell)
        }
        return frozenset(direct | via_complement)

    def match_batch(self, cells: Iterable[Cell]) -> Dict[Cell, FrozenSet[int]]:
        """Covering subscribers for every distinct cell of a batch.

        ``sub_id in result[cell]`` is equivalent to
        ``self.covers(sub_id, cell)``, but a burst of events landing in
        the same cells pays the complement-table scan once per distinct
        cell, and the memo persists across batches until the next
        subscription churn.
        """
        result: Dict[Cell, FrozenSet[int]] = {}
        for cell in cells:
            if cell in result:
                continue
            covering = self._covering_cache.get(cell)
            if covering is not None:
                self.cache_hits += 1
            else:
                covering = self.subscribers_covering(cell)
                if len(self._covering_cache) >= self.CACHE_LIMIT:
                    self._covering_cache.clear()
                self._covering_cache[cell] = covering
            result[cell] = covering
        return result

    def cells_of(self, sub_id: int) -> FrozenSet[Cell]:
        """The stored impact cells of a directly-stored subscriber."""
        return self._by_subscriber.get(sub_id, frozenset())
