"""Sorted inverted lists and the counting algorithm.

Every index in this package (k-index, OpIndex, BEQ-Tree) stores event
tuples in per-attribute lists *sorted by operand value* and answers
subscription matches with the classic counting algorithm (Yan &
Garcia-Molina; Fabret et al.): for each predicate, visit exactly the
entries of the attribute list whose value satisfies the predicate and
increment a per-event counter; an event be-matches when its counter
reaches the subscription size |s|.

The sort order makes each relational operator a contiguous range scan
(binary search for the endpoints); only ``!=`` and ``not in`` degenerate
to full scans with a skipped range, exactly as the paper describes.

Entries are ordered by :func:`repro.expressions.operand_key`, the same
total order the subscription index sorts its operator groups by: within
one type group it is the natural value order (so homogeneous data sorts
exactly as before), and across groups it is well-defined instead of a
``TypeError`` — an attribute carrying ``3`` and ``"x"`` no longer kills
the publish path.  Range scans are bounded to the probe value's group,
because values from different groups never satisfy a ``<``/``>``
constraint (see :meth:`Predicate.matches`).
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Tuple, TypeVar

from ..expressions import Operator, Predicate, operand_key

Payload = TypeVar("Payload")


def _group_of(key: Tuple[str, object]) -> Tuple[str]:
    """Projection of an operand key onto its type group, for bisect."""
    return (key[0],)


class SortedTupleList:
    """A list of ``(value, payload)`` entries kept sorted by value.

    Payloads are event identifiers (or local slots).  Duplicate values are
    allowed; delete removes one matching ``(value, payload)`` entry.
    """

    __slots__ = ("_values", "_payloads", "_keys")

    def __init__(self) -> None:
        self._values: List = []
        self._payloads: List = []
        # operand_key(value) per entry: the list the bisects run over,
        # so mixed-type values stay totally ordered.
        self._keys: List[Tuple[str, object]] = []

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Tuple[object, object]]:
        return zip(self._values, self._payloads)

    def insert(self, value, payload) -> None:
        """Insert keeping the key order (O(log n) search, O(n) shift)."""
        key = operand_key(value)
        index = bisect.bisect_right(self._keys, key)
        self._keys.insert(index, key)
        self._values.insert(index, value)
        self._payloads.insert(index, payload)

    def delete(self, value, payload) -> bool:
        """Remove one ``(value, payload)`` entry; False if absent."""
        key = operand_key(value)
        index = bisect.bisect_left(self._keys, key)
        while index < len(self._keys) and self._keys[index] == key:
            if self._values[index] == value and self._payloads[index] == payload:
                del self._keys[index]
                del self._values[index]
                del self._payloads[index]
                return True
            index += 1
        return False

    def _group_bounds(self, group: str) -> Tuple[int, int]:
        """The half-open index range holding the group's entries."""
        # (group,) sorts before every (group, value) and the projected
        # bisect finds the end of the group's run.
        lo = bisect.bisect_left(self._keys, (group,))
        hi = bisect.bisect_right(self._keys, (group,), key=_group_of)
        return lo, hi

    # ------------------------------------------------------------------
    # Range scans per operator
    # ------------------------------------------------------------------
    def range_for(self, predicate: Predicate) -> Tuple[int, int]:
        """The half-open index range selected by a contiguous predicate.

        Only valid for ``=, <, <=, >, >=, []`` — the operators whose
        satisfying values form one contiguous run in the sorted order.
        """
        op, operand = predicate.operator, predicate.operand
        if op is Operator.BETWEEN:
            low, high = operand
            return (
                bisect.bisect_left(self._keys, operand_key(low)),
                bisect.bisect_right(self._keys, operand_key(high)),
            )
        key = operand_key(operand)
        if op is Operator.EQ:
            return (
                bisect.bisect_left(self._keys, key),
                bisect.bisect_right(self._keys, key),
            )
        # <, <=, >, >= are bounded to the operand's type group: a value
        # from another group never satisfies a range constraint.
        if op in (Operator.LT, Operator.LE, Operator.GT, Operator.GE):
            group_lo, group_hi = self._group_bounds(key[0])
            if op is Operator.LT:
                return group_lo, bisect.bisect_left(self._keys, key)
            if op is Operator.LE:
                return group_lo, bisect.bisect_right(self._keys, key)
            if op is Operator.GT:
                return bisect.bisect_right(self._keys, key), group_hi
            return bisect.bisect_left(self._keys, key), group_hi
        raise ValueError(f"operator {op.value!r} does not select a contiguous range")

    def iter_matching(self, predicate: Predicate) -> Iterator:
        """Payloads of all entries whose value satisfies ``predicate``."""
        op = predicate.operator
        if op in (Operator.NE, Operator.NOT_IN):
            # Full scan minus the excluded values; the paper notes these
            # operators visit all entries except the operand's.
            for value, payload in zip(self._values, self._payloads):
                if predicate.matches(value):
                    yield payload
            return
        if op is Operator.IN:
            # Each entry must be yielded at most once per predicate —
            # duplicate members (a raw ``(3, 3)`` operand) or key-equal
            # members with overlapping runs would double-increment the
            # counting algorithm and fake a full |s| count.  Deduplicate
            # and clamp each run past the previous one.
            last_hi = 0
            for member in sorted(set(predicate.operand), key=operand_key):
                member_key = operand_key(member)
                lo = bisect.bisect_left(self._keys, member_key)
                hi = bisect.bisect_right(self._keys, member_key)
                if hi <= last_hi:
                    continue
                yield from self._payloads[max(lo, last_hi) : hi]
                last_hi = hi
            return
        lo, hi = self.range_for(predicate)
        yield from self._payloads[lo:hi]

    def iter_value_range(self, low, high) -> Iterator[Tuple[object, object]]:
        """``(value, payload)`` entries with ``low <= value <= high``."""
        lo = bisect.bisect_left(self._keys, operand_key(low))
        hi = bisect.bisect_right(self._keys, operand_key(high))
        return iter(list(zip(self._values[lo:hi], self._payloads[lo:hi])))

    def iter_value_from(self, low) -> Iterator[Tuple[object, object]]:
        """``(value, payload)`` entries with ``value >= low``."""
        lo = bisect.bisect_left(self._keys, operand_key(low))
        return iter(list(zip(self._values[lo:], self._payloads[lo:])))

    def values(self) -> List:
        """The sorted values (a copy)."""
        return list(self._values)


class AttributeLists:
    """A bundle of per-attribute :class:`SortedTupleList` objects."""

    __slots__ = ("lists",)

    def __init__(self) -> None:
        self.lists: Dict[str, SortedTupleList] = {}

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.lists

    def __len__(self) -> int:
        return len(self.lists)

    def list_for(self, attribute: str) -> SortedTupleList:
        """The attribute's list, created on first use."""
        existing = self.lists.get(attribute)
        if existing is None:
            existing = SortedTupleList()
            self.lists[attribute] = existing
        return existing

    def insert_tuples(self, attributes: Iterable[Tuple[str, object]], payload) -> None:
        """Index one item's attribute-value tuples under ``payload``."""
        for attribute, value in attributes:
            self.list_for(attribute).insert(value, payload)

    def delete_tuples(self, attributes: Iterable[Tuple[str, object]], payload) -> None:
        """Remove one item's tuples; empty lists are pruned."""
        for attribute, value in attributes:
            lst = self.lists.get(attribute)
            if lst is not None:
                lst.delete(value, payload)
                if not lst:
                    del self.lists[attribute]

    def count_matches(self, predicates: Iterable[Predicate]) -> Dict:
        """The counting algorithm: payload -> number of satisfied predicates.

        Returns an empty dict as soon as one predicate's attribute is
        missing — no event here can reach the full count then.
        """
        counters: Dict = defaultdict(int)
        predicates = list(predicates)
        for predicate in predicates:
            if predicate.attribute not in self.lists:
                return {}
        for predicate in predicates:
            lst = self.lists[predicate.attribute]
            for payload in lst.iter_matching(predicate):
                counters[payload] += 1
        return counters

    def matching_payloads(self, predicates: Iterable[Predicate]) -> List:
        """Payloads satisfying *all* predicates (full counter value)."""
        predicates = list(predicates)
        counters = self.count_matches(predicates)
        needed = len(predicates)
        return [payload for payload, count in counters.items() if count == needed]
