"""BE-Tree-style subscription index (Sadoghi & Jacobsen, SIGMOD 2011).

Section 5 of the paper names BE-Tree, alongside OpIndex, as an adoptable
subscription index for the event-arrival path.  This module implements
the BE-Tree's signature *two-phase* scheme over conjunctive clauses:

* **space partitioning** — an overflowing node picks its most
  discriminating attribute (the one most of its clauses constrain and
  that was not used higher up) and moves the clauses constraining it
  into a child directory for that attribute;
* **space clustering** — within an attribute directory, each clause's
  predicate is summarised by its satisfying *interval* of the operand
  space and placed into one of a fixed number of value buckets (plus an
  "open" bucket for predicates whose satisfying set is not an interval,
  e.g. ``!=`` or ``not in``); each bucket is a node again, so
  partitioning and clustering alternate down the tree.

Matching an event walks only the buckets whose interval contains the
event's value for the directory attribute (plus the open bucket), and
evaluates the surviving clauses with early exit.  Like the other two
subscription indexes, a DNF registers one entry per clause and a
subscription is reported once.

This is a faithful miniature, not a re-implementation of every BE-Tree
engineering device (no bitmap leaves, no cost-based bucket adaptation).
Its role here is the one the paper assigns it: a drop-in alternative
behind :class:`~repro.system.ElapsServer`'s subscription-index slot,
equivalence-tested against the OpIndex-style default.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..expressions import Event, Operator, Predicate, Subscription
from ..expressions.dnf import clauses_of

ClauseKey = Tuple[int, int]  # (sub_id, clause index)


def predicate_interval(predicate: Predicate) -> Optional[Tuple[float, float]]:
    """The satisfying interval of a numeric predicate, or None.

    ``None`` means the satisfying set is not a closed numeric interval
    (``!=``, set operators, or string operands) and the predicate must go
    to the open bucket, which every probe visits.
    """
    operand = predicate.operand
    op = predicate.operator
    if op is Operator.BETWEEN:
        low, high = operand
        if isinstance(low, (int, float)) and isinstance(high, (int, float)):
            return (float(low), float(high))
        return None
    if not isinstance(operand, (int, float)) or isinstance(operand, bool):
        return None
    value = float(operand)
    if op is Operator.EQ:
        return (value, value)
    if op in (Operator.LT, Operator.LE):
        return (-math.inf, value)
    if op in (Operator.GT, Operator.GE):
        return (value, math.inf)
    return None


class _Entry:
    """One conjunctive clause stored in the tree."""

    __slots__ = ("key", "clause", "attributes")

    def __init__(self, key: ClauseKey, clause) -> None:
        self.key = key
        self.clause = clause
        self.attributes: FrozenSet[str] = clause.attributes

    def matches(self, event: Event) -> bool:
        """Evaluate the whole clause against the event."""
        return self.clause.matches(event.attributes)


class _Node:
    """A BE-Tree node: a bucket of clauses plus attribute directories."""

    __slots__ = ("bucket", "directories", "used_attributes")

    def __init__(self, used_attributes: FrozenSet[str]) -> None:
        self.bucket: List[_Entry] = []
        self.directories: Dict[str, "_Directory"] = {}
        self.used_attributes = used_attributes


class _Directory:
    """The clustering phase: value buckets over one attribute's operands."""

    __slots__ = ("attribute", "low", "high", "buckets", "open_bucket")

    FANOUT = 8

    def __init__(self, attribute: str, low: float, high: float,
                 used_attributes: FrozenSet[str]) -> None:
        self.attribute = attribute
        if not math.isfinite(low) or not math.isfinite(high) or low >= high:
            low, high = 0.0, 1.0
        self.low = low
        self.high = high
        self.buckets: List[_Node] = [
            _Node(used_attributes) for _ in range(self.FANOUT)
        ]
        self.open_bucket = _Node(used_attributes)

    def _bucket_range(self, interval: Tuple[float, float]) -> Optional[Tuple[int, int]]:
        """Bucket indexes [first, last] fully covering the interval."""
        low, high = interval
        if math.isinf(low) or math.isinf(high):
            return None
        if low < self.low or high > self.high:
            return None  # outside the clustering range (late insert)
        span = self.high - self.low
        first = int((low - self.low) / span * self.FANOUT)
        last = int((high - self.low) / span * self.FANOUT)
        if first != last:
            return None  # straddles buckets: keep it in the open bucket
        if not 0 <= first < self.FANOUT:
            return None
        return (first, last)

    def place(self, entry: _Entry, predicate: Predicate) -> "_Node":
        """The bucket this entry's predicate interval selects."""
        interval = predicate_interval(predicate)
        if interval is None:
            return self.open_bucket
        bucket_range = self._bucket_range(interval)
        if bucket_range is None:
            return self.open_bucket
        return self.buckets[bucket_range[0]]

    def probe(self, value) -> List["_Node"]:
        """The buckets that may hold predicates satisfied by ``value``."""
        nodes = [self.open_bucket]
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            v = float(value)
            if self.low <= v <= self.high:
                index = min(
                    int((v - self.low) / (self.high - self.low) * self.FANOUT),
                    self.FANOUT - 1,
                )
                nodes.append(self.buckets[index])
        return nodes

    def all_nodes(self) -> List["_Node"]:
        """Every bucket of this directory, open bucket included."""
        return [*self.buckets, self.open_bucket]


class BETreeIndex:
    """The BE-Tree-style subscription index."""

    def __init__(self, max_bucket: int = 16) -> None:
        if max_bucket <= 0:
            raise ValueError(f"max_bucket must be positive: {max_bucket}")
        self.max_bucket = max_bucket
        self._root = _Node(frozenset())
        self._subscriptions: Dict[int, Subscription] = {}

    def __len__(self) -> int:
        return len(self._subscriptions)

    def __contains__(self, sub_id: int) -> bool:
        return sub_id in self._subscriptions

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, subscription: Subscription) -> None:
        """Register a subscription; a DNF registers one entry per clause."""
        if subscription.sub_id in self._subscriptions:
            raise ValueError(f"duplicate subscription id {subscription.sub_id}")
        self._subscriptions[subscription.sub_id] = subscription
        for clause_index, clause in enumerate(clauses_of(subscription.expression)):
            entry = _Entry((subscription.sub_id, clause_index), clause)
            self._insert_entry(self._root, entry)

    def _insert_entry(self, node: _Node, entry: _Entry) -> None:
        while True:
            # Partitioning phase: descend into an existing directory for
            # one of the entry's attributes, if any.
            directory = next(
                (node.directories[a] for a in entry.attributes if a in node.directories),
                None,
            )
            if directory is None:
                break
            predicate = next(
                p for p in entry.clause.predicates
                if p.attribute == directory.attribute
            )
            node = directory.place(entry, predicate)
        node.bucket.append(entry)
        if len(node.bucket) > self.max_bucket:
            self._split(node)

    def _split(self, node: _Node) -> None:
        """Partition an overflowing bucket on its best unused attribute."""
        frequencies: Counter = Counter()
        for entry in node.bucket:
            for attribute in entry.attributes:
                if attribute not in node.used_attributes and attribute not in node.directories:
                    frequencies[attribute] += 1
        if not frequencies:
            return  # nothing left to partition on; the bucket stays fat
        attribute, gain = frequencies.most_common(1)[0]
        if gain < 2:
            return  # splitting would not spread anything out
        movers = [e for e in node.bucket if attribute in e.attributes]
        node.bucket = [e for e in node.bucket if attribute not in e.attributes]
        # clustering bounds from the movers' finite interval endpoints
        endpoints: List[float] = []
        for entry in movers:
            predicate = next(
                p for p in entry.clause.predicates if p.attribute == attribute
            )
            interval = predicate_interval(predicate)
            if interval is not None:
                endpoints.extend(v for v in interval if math.isfinite(v))
        low = min(endpoints) if endpoints else 0.0
        high = max(endpoints) if endpoints else 1.0
        used = node.used_attributes | {attribute}
        directory = _Directory(attribute, low, high, used)
        node.directories[attribute] = directory
        for entry in movers:
            predicate = next(
                p for p in entry.clause.predicates if p.attribute == attribute
            )
            target = directory.place(entry, predicate)
            target.bucket.append(entry)
            if len(target.bucket) > self.max_bucket:
                self._split(target)

    def delete(self, subscription: Subscription) -> None:
        """Remove a subscription's clauses from every bucket."""
        stored = self._subscriptions.pop(subscription.sub_id, None)
        if stored is None:
            raise KeyError(f"subscription {subscription.sub_id} is not in the index")
        keys = {
            (stored.sub_id, clause_index)
            for clause_index in range(len(clauses_of(stored.expression)))
        }
        removed = self._remove_keys(self._root, keys)
        assert removed == len(keys), "index out of sync with the subscription set"

    def _remove_keys(self, node: _Node, keys: set) -> int:
        removed = len([e for e in node.bucket if e.key in keys])
        if removed:
            node.bucket = [e for e in node.bucket if e.key not in keys]
        for directory in node.directories.values():
            for child in directory.all_nodes():
                removed += self._remove_keys(child, keys)
        return removed

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match_event(self, event: Event) -> List[Subscription]:
        """All stored subscriptions whose expression the event satisfies."""
        matched_ids: set = set()
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.bucket:
                if entry.key[0] in matched_ids:
                    continue
                if entry.matches(event):
                    matched_ids.add(entry.key[0])
            for attribute, directory in node.directories.items():
                if attribute in event.attributes:
                    stack.extend(directory.probe(event.attributes[attribute]))
                # clauses constraining an attribute the event lacks can
                # never match: the whole directory is pruned
        return [self._subscriptions[sub_id] for sub_id in sorted(matched_ids)]

    # ------------------------------------------------------------------
    # Introspection (for tests and tuning)
    # ------------------------------------------------------------------
    def node_count(self) -> int:
        """Total node count (tree-shape introspection for tests)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            for directory in node.directories.values():
                stack.extend(directory.all_nodes())
        return count
