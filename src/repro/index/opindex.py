"""OpIndex (Zhang, Chan, Tan, PVLDB 2014) extended to event indexing.

OpIndex partitions by a *pivot attribute*: each indexed item is assigned
its least-frequent attribute under a global attribute-frequency order, and
the second layer keeps per-attribute sorted inverted lists inside each
pivot partition.

Extended to events (Section 2.2 of the Elaps paper): an event's pivot is
its rarest attribute.  For subscription matching the pivot gives a
partition-level prune — a matching event contains every attribute of the
subscription, so its pivot can be at most as frequent as the rarest
subscription attribute; partitions pivoted on more frequent attributes
are skipped.  All remaining partitions must still be scanned, and the
spatial constraint is verified last, event by event — the inefficiency
the paper reports for this extension.

The global order is *fixed*: it is taken from an optional frequency hint
(e.g. the dataset vocabulary), or computed from the first bulk load, and
never changes afterwards.  A fixed order keeps the pivot prune sound —
every stored event's pivot was assigned under the same order the query
prune consults.  Attributes unknown to the order count as frequency 0
(rarest), which disables the prune for them but never loses a match.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..expressions import Event, Subscription
from ..expressions.dnf import clauses_of
from ..geometry import Point
from .base import EventIndex
from .inverted import AttributeLists


class OpIndex(EventIndex):
    """Pivot-partitioned inverted-list index over events."""

    def __init__(self, frequency_hint: Optional[Mapping[str, int]] = None) -> None:
        self._partitions: Dict[str, AttributeLists] = {}
        self._events: Dict[int, Tuple[Event, str]] = {}
        self._order: Dict[str, int] = dict(frequency_hint or {})

    def __len__(self) -> int:
        return len(self._events)

    def _pivot_of(self, event: Event) -> str:
        """The event's rarest attribute; ties broken lexicographically."""
        return min(event.attributes, key=lambda a: (self._order.get(a, 0), a))

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_all(self, events: Iterable[Event]) -> None:
        """Bulk load; derives the frequency order from the batch if unset."""
        events = list(events)
        if not self._order and events:
            frequencies: Counter = Counter()
            for event in events:
                frequencies.update(event.attributes.keys())
            self._order = dict(frequencies)
        for event in events:
            self.insert(event)

    def insert(self, event: Event) -> None:
        """Index an event into its pivot partition."""
        if event.event_id in self._events:
            raise ValueError(f"duplicate event id {event.event_id}")
        pivot = self._pivot_of(event)
        partition = self._partitions.get(pivot)
        if partition is None:
            partition = AttributeLists()
            self._partitions[pivot] = partition
        partition.insert_tuples(event.attributes.items(), event.event_id)
        self._events[event.event_id] = (event, pivot)

    def delete(self, event: Event) -> None:
        """Remove an event; empty partitions are pruned."""
        stored = self._events.pop(event.event_id, None)
        if stored is None:
            raise KeyError(f"event {event.event_id} is not in the index")
        stored_event, pivot = stored
        partition = self._partitions[pivot]
        partition.delete_tuples(stored_event.attributes.items(), stored_event.event_id)
        if not len(partition):
            del self._partitions[pivot]

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def be_candidates(self, subscription: Subscription, at: Point) -> List[Event]:
        """Events passing OpIndex's native (boolean-first) filtering."""
        return self.be_match(subscription)

    def be_match(self, subscription: Subscription) -> List[Event]:
        """All stored events be-matching ``subscription`` (no spatial test).

        DNF subscriptions union the clauses' results; the pivot prune
        applies per clause.
        """
        matched_ids: set = set()
        matched: List[Event] = []
        for clause in clauses_of(subscription.expression):
            predicates = list(clause)
            rarest = min(
                (self._order.get(a, 0) for a in clause.attributes),
                default=0,
            )
            for pivot, partition in self._partitions.items():
                # A matching event's pivot is its rarest attribute and the
                # event contains all clause attributes, so the pivot
                # frequency is bounded by the clause's rarest attribute.
                if self._order.get(pivot, 0) > rarest:
                    continue
                for event_id in partition.matching_payloads(predicates):
                    if event_id not in matched_ids:
                        matched_ids.add(event_id)
                        matched.append(self._events[event_id][0])
        return matched

    def match(self, subscription: Subscription, at: Point) -> List[Event]:
        """Definition 5 match: be-match then spatial verification."""
        return [
            event
            for event in self.be_match(subscription)
            if subscription.spatial_matches(event, at)
        ]
