"""k-index (Whang et al., PVLDB 2009) extended to event indexing.

k-index was designed to index *subscriptions* partitioned by subscription
size.  Following Section 2.2 of the Elaps paper we extend it to index
*events*: the first layer partitions events by event size |e| and the
second layer keeps per-attribute sorted inverted lists inside each
partition.

The size partitioning gives only a weak prune for subscription matching:
a matching event must carry a tuple for every distinct attribute of the
subscription, so partitions with |e| < #attributes(s) can be skipped —
but every larger partition must still be scanned, and the spatial
constraint is verified only afterwards, event by event.  That is exactly
the inefficiency the paper attributes to this extension.
"""

from __future__ import annotations

from typing import Dict, List

from ..expressions import Event, Subscription
from ..expressions.dnf import clauses_of
from ..geometry import Point
from .base import EventIndex
from .inverted import AttributeLists


class KIndex(EventIndex):
    """Size-partitioned inverted-list index over events."""

    def __init__(self) -> None:
        self._partitions: Dict[int, AttributeLists] = {}
        self._events: Dict[int, Event] = {}

    def __len__(self) -> int:
        return len(self._events)

    def insert(self, event: Event) -> None:
        """Index an event into its size partition."""
        if event.event_id in self._events:
            raise ValueError(f"duplicate event id {event.event_id}")
        partition = self._partitions.get(len(event))
        if partition is None:
            partition = AttributeLists()
            self._partitions[len(event)] = partition
        partition.insert_tuples(event.attributes.items(), event.event_id)
        self._events[event.event_id] = event

    def delete(self, event: Event) -> None:
        """Remove an event; empty partitions are pruned."""
        stored = self._events.pop(event.event_id, None)
        if stored is None:
            raise KeyError(f"event {event.event_id} is not in the index")
        partition = self._partitions[len(stored)]
        partition.delete_tuples(stored.attributes.items(), stored.event_id)
        if not len(partition):
            del self._partitions[len(stored)]

    def be_candidates(self, subscription: Subscription, at: Point) -> List[Event]:
        """Events be-matching the subscription, across eligible partitions."""
        return self.be_match(subscription)

    def be_match(self, subscription: Subscription) -> List[Event]:
        """All stored events be-matching ``subscription`` (no spatial test).

        DNF subscriptions union the clauses' results; the size prune
        applies per clause.
        """
        matched_ids: set = set()
        matched: List[Event] = []
        for clause in clauses_of(subscription.expression):
            predicates = list(clause)
            min_size = len(clause.attributes)
            for size, partition in self._partitions.items():
                if size < min_size:
                    continue
                for event_id in partition.matching_payloads(predicates):
                    if event_id not in matched_ids:
                        matched_ids.add(event_id)
                        matched.append(self._events[event_id])
        return matched

    def match(self, subscription: Subscription, at: Point) -> List[Event]:
        """Definition 5 match: be-match then spatial verification."""
        return [
            event
            for event in self.be_match(subscription)
            if subscription.spatial_matches(event, at)
        ]
