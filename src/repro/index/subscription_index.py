"""The subscription index: OpIndex over boolean-expression subscriptions.

Section 5 of the paper adopts an existing subscription index (OpIndex) for
the event-arrival path: given a freshly published event, find every stored
subscription whose boolean expression the event satisfies.  This module
implements that index natively:

* **First layer** — subscriptions are partitioned by their *pivot
  attribute*, the least frequent of their own attributes under a fixed
  global frequency order.  A subscription's pivot is one of its own
  attributes, and a matching event must carry every subscription
  attribute, so only the partitions pivoted on one of the *event's*
  attributes can contain matches — the signature OpIndex prune.
* **Second layer** — inside a partition, predicates are grouped by
  attribute and by operator class so that each event value probes the
  relevant predicates with binary search where the operator allows it
  (equality buckets; operand-sorted lists for the inequalities).

The counting algorithm then reports every subscription whose satisfied-
predicate counter reaches its size |s|.

Two accelerations sit on top (DESIGN.md §16):

* an **attribute-bitmap prefilter** — every partition keeps the
  intersection of its clauses' required-attribute bitmasks; an event
  whose own attribute bitmask is not a superset cannot complete any
  clause there, so the partition is skipped without a single probe;
* a **batched matcher** (:meth:`SubscriptionIndex.match_batch`) — one
  pass over the pivot partitions for a whole ``publish_batch``, probing
  each operator group once per distinct (attribute, value) across the
  batch and counting with flat per-slot arrays instead of per-event
  dicts.  Its output is byte-identical, per event, to
  :meth:`SubscriptionIndex.match_event`.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..expressions import Event, Operator, Predicate, Subscription, operand_key
from ..expressions.dnf import clauses_of

#: (sub_id, clause index): one counting unit of the algorithm.
_ClauseKey = Tuple[int, int]


class _AttributePredicates:
    """All predicates on one attribute within one pivot partition."""

    __slots__ = ("equals", "less", "less_keys", "greater", "greater_keys", "linear")

    def __init__(self) -> None:
        # operand -> clause keys (EQ probes are hash lookups; dict
        # hashing already aliases True == 1 exactly like Predicate.matches)
        self.equals: Dict[object, List[_ClauseKey]] = defaultdict(list)
        # (operand, strict, clause key) for < / <= : satisfied when value
        # < operand (or <=); kept sorted by operand so a probe is a
        # suffix scan.  ``less_keys`` mirrors the list with each entry's
        # operand_key so scans and pointer advances never recompute it.
        self.less: List[Tuple[object, bool, _ClauseKey]] = []
        self.less_keys: List[Tuple[str, object]] = []
        # (operand, strict, clause key) for > / >= : prefix scan.
        self.greater: List[Tuple[object, bool, _ClauseKey]] = []
        self.greater_keys: List[Tuple[str, object]] = []
        # everything else (BETWEEN, NE, IN, NOT_IN): linear probe.
        self.linear: List[Tuple[Predicate, _ClauseKey]] = []

    def add(self, predicate: Predicate, key: _ClauseKey) -> None:
        """Register one predicate under its operator group."""
        op = predicate.operator
        if op is Operator.EQ:
            self.equals[predicate.operand].append(key)
        elif op in (Operator.LT, Operator.LE):
            self._insort(self.less, self.less_keys,
                         (predicate.operand, op is Operator.LT, key))
        elif op in (Operator.GT, Operator.GE):
            self._insort(self.greater, self.greater_keys,
                         (predicate.operand, op is Operator.GT, key))
        else:
            self.linear.append((predicate, key))

    @staticmethod
    def _insort(entries, keys, entry) -> None:
        entry_key = operand_key(entry[0])
        position = bisect.bisect_right(keys, entry_key)
        entries.insert(position, entry)
        keys.insert(position, entry_key)

    def remove(self, predicate: Predicate, key: _ClauseKey) -> None:
        """Remove one registered predicate."""
        op = predicate.operator
        if op is Operator.EQ:
            bucket = self.equals[predicate.operand]
            bucket.remove(key)
            if not bucket:
                del self.equals[predicate.operand]
        elif op in (Operator.LT, Operator.LE):
            position = self.less.index((predicate.operand, op is Operator.LT, key))
            del self.less[position]
            del self.less_keys[position]
        elif op in (Operator.GT, Operator.GE):
            position = self.greater.index((predicate.operand, op is Operator.GT, key))
            del self.greater[position]
            del self.greater_keys[position]
        else:
            self.linear.remove((predicate, key))

    def __len__(self) -> int:
        return (
            sum(len(bucket) for bucket in self.equals.values())
            + len(self.less)
            + len(self.greater)
            + len(self.linear)
        )

    def hits_for(self, value) -> List[_ClauseKey]:
        """Clause keys of every predicate ``value`` satisfies, in the
        canonical probe order: equality bucket, ``<``/``<=`` suffix,
        ``>``/``>=`` prefix, then the linear group.

        The inequality scans are bounded to the value's type group —
        operands from another group are never ``<``/``>`` comparable, so
        a range predicate across groups fails, exactly as
        :meth:`Predicate.matches` answers.
        """
        value_key = operand_key(value)
        group = value_key[0]
        out: List[_ClauseKey] = list(self.equals.get(value, ()))
        # A < o is satisfied iff o > value: the suffix of the operand-
        # sorted list starting at value (minus the strict o == value run).
        less, less_keys = self.less, self.less_keys
        index = bisect.bisect_left(less_keys, value_key)
        while index < len(less) and less_keys[index][0] == group:
            operand, strict, key = less[index]
            # operand >= value here; a strict < with operand == value fails.
            if not strict or operand != value:
                out.append(key)
            index += 1
        # A > o is satisfied iff o < value: the in-group prefix below
        # value (plus the o == value run for >=).
        group_lo = bisect.bisect_left(self.greater_keys, (group,))
        stop = bisect.bisect_right(self.greater_keys, value_key)
        for operand, strict, key in self.greater[group_lo:stop]:
            if not strict or operand != value:
                out.append(key)
        for predicate, key in self.linear:
            if predicate.matches(value):
                out.append(key)
        return out

    def probe(self, value, counters: Dict[_ClauseKey, int]) -> None:
        """Count every predicate on this attribute that ``value`` satisfies."""
        for key in self.hits_for(value):
            counters[key] += 1

    def batch_hits(self, ordered_column) -> Dict[Tuple[str, object], List[_ClauseKey]]:
        """One probe per distinct value of a batch's sorted value column.

        ``ordered_column`` holds ``(value_key, value)`` pairs, one
        representative per distinct :func:`operand_key`, sorted by that
        key.  Because the column is sorted, the suffix/prefix endpoints
        of the inequality scans only move forward — monotone pointers
        over the cached key arrays replace the per-value bisects.  Each
        returned hit list is exactly ``hits_for(value)``.
        """
        hits: Dict[Tuple[str, object], List[_ClauseKey]] = {}
        less, less_keys = self.less, self.less_keys
        greater, greater_keys = self.greater, self.greater_keys
        linear = self.linear
        n_less, n_greater = len(less), len(greater)
        li = 0  # first less-entry with operand key >= the current value
        glo = 0  # first greater-entry inside the current type group
        ghi = 0  # first greater-entry with operand key > the current value
        for value_key, value in ordered_column:
            group = value_key[0]
            group_key = (group,)
            out: List[_ClauseKey] = list(self.equals.get(value, ()))
            while li < n_less and less_keys[li] < value_key:
                li += 1
            index = li
            while index < n_less and less_keys[index][0] == group:
                operand, strict, key = less[index]
                if not strict or operand != value:
                    out.append(key)
                index += 1
            while glo < n_greater and greater_keys[glo] < group_key:
                glo += 1
            while ghi < n_greater and greater_keys[ghi] <= value_key:
                ghi += 1
            for operand, strict, key in greater[glo:ghi]:
                if not strict or operand != value:
                    out.append(key)
            for predicate, key in linear:
                if predicate.matches(value):
                    out.append(key)
            hits[value_key] = out
        return hits


class _Partition:
    """One pivot partition: per-attribute operator groups plus the
    attribute-bitmap prefilter state."""

    __slots__ = ("layers", "clause_masks", "common_mask")

    def __init__(self) -> None:
        self.layers: Dict[str, _AttributePredicates] = {}
        # clause key -> bitmask of the attributes the clause requires
        self.clause_masks: Dict[_ClauseKey, int] = {}
        # intersection of all clause masks: attributes *every* clause
        # here requires.  An event not carrying all of them cannot
        # complete any clause in this partition (each attribute layer
        # contributes at most the clause's predicate count on that
        # attribute, so a missing required attribute keeps every counter
        # short of |s|) — the partition is skippable without probing.
        self.common_mask: int = 0

    def recompute_common(self) -> None:
        """Rebuild the required-attribute intersection after a delete."""
        common = -1  # all-ones: identity of the intersection
        for mask in self.clause_masks.values():
            common &= mask
        self.common_mask = common if common != -1 else 0


class _BatchPlan:
    """Per-partition probe results for one ``match_batch`` call.

    Clause keys are interned into dense slots so per-event counting runs
    over flat integer arrays.  ``event_cells`` maps each member event to
    its row of probe cells, one per (attribute, value) the event carries
    into this partition, in the event's attribute order; each cell is
    the shared slot list its distinct-value probe produced (filled in
    place after the column probe), so replaying an event is pure list
    iteration — no dict lookups."""

    __slots__ = ("slot_of", "keys", "sizes", "counts", "event_cells")

    def __init__(self) -> None:
        self.slot_of: Dict[_ClauseKey, int] = {}
        self.keys: List[_ClauseKey] = []
        self.sizes: List[int] = []
        self.counts: List[int] = []
        self.event_cells: Dict[int, List[List[int]]] = {}


class SubscriptionIndex:
    """OpIndex over subscriptions: event -> be-matching subscription ids."""

    def __init__(self, frequency_hint: Optional[Mapping[str, int]] = None) -> None:
        self._order: Dict[str, int] = dict(frequency_hint or {})
        self._partitions: Dict[str, _Partition] = {}
        # sub_id -> (subscription, per-clause pivots in clause order)
        self._subscriptions: Dict[int, Tuple[Subscription, Tuple[str, ...]]] = {}
        # (sub_id, clause index) -> number of predicates in the clause
        self._clause_sizes: Dict[_ClauseKey, int] = {}
        # attribute name -> bit in the prefilter masks, assigned on first use
        self._attr_bits: Dict[str, int] = {}
        #: distinct (operator group, value) probes the batched matcher ran
        self.match_batch_probes: int = 0
        #: (event, partition) pairs the bitmap prefilter skipped entirely
        self.partitions_pruned: int = 0

    def __len__(self) -> int:
        return len(self._subscriptions)

    def __contains__(self, sub_id: int) -> bool:
        return sub_id in self._subscriptions

    def _pivot_of(self, clause) -> str:
        return min(
            clause.attributes,
            key=lambda a: (self._order.get(a, 0), a),
        )

    def _bit_of(self, attribute: str) -> int:
        bit = self._attr_bits.get(attribute)
        if bit is None:
            bit = 1 << len(self._attr_bits)
            self._attr_bits[attribute] = bit
        return bit

    def _event_mask(self, attributes: Mapping[str, object]) -> int:
        """Bitmask of the event's attributes the index has bits for.

        Attributes no subscription ever mentioned have no bit — they
        cannot appear in any clause mask either, so omitting them keeps
        the subset test exact."""
        bits = self._attr_bits
        mask = 0
        for attribute in attributes:
            bit = bits.get(attribute)
            if bit is not None:
                mask |= bit
        return mask

    def insert(self, subscription: Subscription) -> None:
        """Register a subscription; a DNF registers one entry per clause."""
        if subscription.sub_id in self._subscriptions:
            raise ValueError(f"duplicate subscription id {subscription.sub_id}")
        pivots = []
        for clause_index, clause in enumerate(clauses_of(subscription.expression)):
            key = (subscription.sub_id, clause_index)
            pivot = self._pivot_of(clause)
            pivots.append(pivot)
            partition = self._partitions.get(pivot)
            if partition is None:
                partition = _Partition()
                self._partitions[pivot] = partition
            clause_mask = 0
            for predicate in clause:
                attribute = predicate.attribute
                layer = partition.layers.get(attribute)
                if layer is None:
                    layer = _AttributePredicates()
                    partition.layers[attribute] = layer
                layer.add(predicate, key)
                clause_mask |= self._bit_of(attribute)
            partition.clause_masks[key] = clause_mask
            if len(partition.clause_masks) == 1:
                partition.common_mask = clause_mask
            else:
                partition.common_mask &= clause_mask
            self._clause_sizes[key] = len(clause.predicates)
        self._subscriptions[subscription.sub_id] = (subscription, tuple(pivots))

    def delete(self, subscription: Subscription) -> None:
        """Remove a subscription's clauses; empty layers are pruned."""
        stored = self._subscriptions.pop(subscription.sub_id, None)
        if stored is None:
            raise KeyError(f"subscription {subscription.sub_id} is not in the index")
        stored_sub, pivots = stored
        for clause_index, (clause, pivot) in enumerate(
            zip(clauses_of(stored_sub.expression), pivots)
        ):
            key = (stored_sub.sub_id, clause_index)
            partition = self._partitions[pivot]
            for predicate in clause:
                layer = partition.layers[predicate.attribute]
                layer.remove(predicate, key)
                if not len(layer):
                    del partition.layers[predicate.attribute]
            del partition.clause_masks[key]
            if not partition.layers:
                del self._partitions[pivot]
            else:
                partition.recompute_common()
            del self._clause_sizes[key]

    def match_event(self, event: Event) -> List[Subscription]:
        """All stored subscriptions whose expression ``event`` satisfies.

        A subscription matches when any of its clauses is fully counted;
        each subscription is reported once.
        """
        matched: List[Subscription] = []
        matched_ids: Set[int] = set()
        event_mask = self._event_mask(event.attributes)
        for attribute in event.attributes:
            partition = self._partitions.get(attribute)
            if partition is None:
                continue
            if partition.common_mask & ~event_mask:
                # Some attribute every clause here requires is missing.
                self.partitions_pruned += 1
                continue
            counters: Dict[_ClauseKey, int] = defaultdict(int)
            for event_attribute, value in event.attributes.items():
                layer = partition.layers.get(event_attribute)
                if layer is not None:
                    layer.probe(value, counters)
            for key, count in counters.items():
                sub_id = key[0]
                if sub_id in matched_ids:
                    continue
                if count == self._clause_sizes[key]:
                    matched_ids.add(sub_id)
                    matched.append(self._subscriptions[sub_id][0])
        return matched

    def match_batch(self, events: List[Event]) -> List[List[Subscription]]:
        """Per-event be-matches for a whole batch, in one partition pass.

        Byte-identical to ``[self.match_event(e) for e in events]`` —
        same subscriptions, same order — but amortised three ways:

        * the bitmap prefilter drops (event, partition) pairs up front;
        * each surviving partition's operator groups are probed once per
          *distinct* (attribute, value) across the batch, over the
          column sorted by :func:`operand_key` with monotone scan
          pointers (:meth:`_AttributePredicates.batch_hits`), instead of
          once per event;
        * counters live in flat per-slot arrays reused across the
          batch's events, not per-event dicts.

        The per-event reporting order is reproduced exactly: slots are
        replayed in first-increment order, which is the per-attribute
        probe order ``match_event`` counts in.
        """
        events = list(events)
        if not events:
            return []
        masks = [self._event_mask(event.attributes) for event in events]
        # Value keys computed once per (event, attribute) — every touched
        # partition below reuses them (insertion order == attribute order,
        # so iterating a row replays the event's probe order exactly).
        key_rows: List[Dict[str, Tuple[str, object]]] = [
            {
                attribute: operand_key(value)
                for attribute, value in event.attributes.items()
            }
            for event in events
        ]
        # Phase 1 — prefilter: which events probe which partitions.
        touched: Dict[str, List[int]] = {}
        for index, event in enumerate(events):
            mask = masks[index]
            for attribute in event.attributes:
                partition = self._partitions.get(attribute)
                if partition is None:
                    continue
                if partition.common_mask & ~mask:
                    self.partitions_pruned += 1
                    continue
                touched.setdefault(attribute, []).append(index)
        # Phase 2 — one pass over the touched partitions: probe each
        # layer's operator groups once per distinct value carried by the
        # partition's member events.  Restricting the column to members
        # matters: a layer whose attribute only appears in non-member
        # events would otherwise be probed for values no event here
        # counts.
        plans: Dict[str, _BatchPlan] = {}
        for pivot, indices in touched.items():
            partition = self._partitions[pivot]
            layers = partition.layers
            plan = _BatchPlan()
            event_cells = plan.event_cells
            # Each column entry is (shared slot-list cell, representative
            # value); member rows reference the cells, so filling a cell
            # after the probe fills every row that carries the value.
            columns: Dict[str, Dict[Tuple[str, object], tuple]] = {}
            for index in indices:
                key_row = key_rows[index]
                row: List[List[int]] = []
                for attribute, value in events[index].attributes.items():
                    if attribute in layers:
                        column = columns.get(attribute)
                        if column is None:
                            column = columns[attribute] = {}
                        value_key = key_row[attribute]
                        entry = column.get(value_key)
                        if entry is None:
                            entry = column[value_key] = ([], value)
                        row.append(entry[0])
                event_cells[index] = row
            slot_of, keys, sizes = plan.slot_of, plan.keys, plan.sizes
            for attribute, column in columns.items():
                ordered = sorted(column.items())
                layer_hits = layers[attribute].batch_hits(
                    [(value_key, entry[1]) for value_key, entry in ordered]
                )
                self.match_batch_probes += len(ordered)
                for value_key, (cell, _) in ordered:
                    for key in layer_hits[value_key]:
                        slot = slot_of.get(key)
                        if slot is None:
                            slot = len(keys)
                            slot_of[key] = slot
                            keys.append(key)
                            sizes.append(self._clause_sizes[key])
                        cell.append(slot)
            plan.counts = [0] * len(keys)
            plans[pivot] = plan
        # Phase 3 — per-event counting over the flat slot arrays,
        # replaying match_event's partition and probe order exactly:
        # each row's cells sit in the event's attribute order, each
        # cell's slots in the canonical per-layer probe order.
        subscriptions = self._subscriptions
        results: List[List[Subscription]] = []
        for index, event in enumerate(events):
            matched: List[Subscription] = []
            matched_ids: Set[int] = set()
            for attribute in event.attributes:
                plan = plans.get(attribute)
                if plan is None:
                    continue
                row = plan.event_cells.get(index)
                if row is None:
                    continue
                counts = plan.counts
                order: List[int] = []
                for cell in row:
                    for slot in cell:
                        count = counts[slot]
                        if not count:
                            order.append(slot)
                        counts[slot] = count + 1
                sizes, keys = plan.sizes, plan.keys
                for slot in order:
                    if counts[slot] == sizes[slot]:
                        sub_id = keys[slot][0]
                        if sub_id not in matched_ids:
                            matched_ids.add(sub_id)
                            matched.append(subscriptions[sub_id][0])
                    counts[slot] = 0
            results.append(matched)
        return results
