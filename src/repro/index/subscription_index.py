"""The subscription index: OpIndex over boolean-expression subscriptions.

Section 5 of the paper adopts an existing subscription index (OpIndex) for
the event-arrival path: given a freshly published event, find every stored
subscription whose boolean expression the event satisfies.  This module
implements that index natively:

* **First layer** — subscriptions are partitioned by their *pivot
  attribute*, the least frequent of their own attributes under a fixed
  global frequency order.  A subscription's pivot is one of its own
  attributes, and a matching event must carry every subscription
  attribute, so only the partitions pivoted on one of the *event's*
  attributes can contain matches — the signature OpIndex prune.
* **Second layer** — inside a partition, predicates are grouped by
  attribute and by operator class so that each event value probes the
  relevant predicates with binary search where the operator allows it
  (equality buckets; operand-sorted lists for the inequalities).

The counting algorithm then reports every subscription whose satisfied-
predicate counter reaches its size |s|.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Dict, List, Mapping, Optional, Tuple

from ..expressions import Event, Operator, Predicate, Subscription
from ..expressions.dnf import clauses_of


class _AttributePredicates:
    """All predicates on one attribute within one pivot partition."""

    __slots__ = ("equals", "less", "greater", "linear")

    def __init__(self) -> None:
        # operand -> subscription ids (EQ probes are hash lookups)
        self.equals: Dict[object, List[int]] = defaultdict(list)
        # (operand, strict, sub_id) for < / <= : satisfied when value < operand
        # (or <=); kept sorted by operand so a probe is a suffix scan.
        self.less: List[Tuple[object, bool, int]] = []
        # (operand, strict, sub_id) for > / >= : prefix scan.
        self.greater: List[Tuple[object, bool, int]] = []
        # everything else (BETWEEN, NE, IN, NOT_IN): linear probe.
        self.linear: List[Tuple[Predicate, int]] = []

    def add(self, predicate: Predicate, sub_id: int) -> None:
        """Register one predicate under its operator group."""
        op = predicate.operator
        if op is Operator.EQ:
            self.equals[predicate.operand].append(sub_id)
        elif op in (Operator.LT, Operator.LE):
            entry = (predicate.operand, op is Operator.LT, sub_id)
            bisect.insort(self.less, entry, key=lambda e: _operand_key(e[0]))
        elif op in (Operator.GT, Operator.GE):
            entry = (predicate.operand, op is Operator.GT, sub_id)
            bisect.insort(self.greater, entry, key=lambda e: _operand_key(e[0]))
        else:
            self.linear.append((predicate, sub_id))

    def remove(self, predicate: Predicate, sub_id: int) -> None:
        """Remove one registered predicate."""
        op = predicate.operator
        if op is Operator.EQ:
            bucket = self.equals[predicate.operand]
            bucket.remove(sub_id)
            if not bucket:
                del self.equals[predicate.operand]
        elif op in (Operator.LT, Operator.LE):
            self.less.remove((predicate.operand, op is Operator.LT, sub_id))
        elif op in (Operator.GT, Operator.GE):
            self.greater.remove((predicate.operand, op is Operator.GT, sub_id))
        else:
            self.linear.remove((predicate, sub_id))

    def __len__(self) -> int:
        return (
            sum(len(bucket) for bucket in self.equals.values())
            + len(self.less)
            + len(self.greater)
            + len(self.linear)
        )

    def probe(self, value, counters: Dict[int, int]) -> None:
        """Count every predicate on this attribute that ``value`` satisfies."""
        for sub_id in self.equals.get(value, ()):
            counters[sub_id] += 1
        # A < o is satisfied iff o > value: the suffix of the operand-sorted
        # list starting just above value (plus the o == value run for <=).
        key = _operand_key(value)
        start = bisect.bisect_left(self.less, key, key=lambda e: _operand_key(e[0]))
        for operand, strict, sub_id in self.less[start:]:
            # operand >= value here; a strict < with operand == value fails.
            if not strict or operand != value:
                counters[sub_id] += 1
        # A > o is satisfied iff o < value: the prefix strictly below value
        # (plus the o == value run for >=).
        stop = bisect.bisect_right(self.greater, key, key=lambda e: _operand_key(e[0]))
        for operand, strict, sub_id in self.greater[:stop]:
            if not strict or operand != value:
                counters[sub_id] += 1
        for predicate, sub_id in self.linear:
            if predicate.matches(value):
                counters[sub_id] += 1


def _operand_key(value) -> Tuple[str, object]:
    """A total order across mixed operand types (numbers vs strings)."""
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, float)):
        return ("num", value)
    return (type(value).__name__, value)


class SubscriptionIndex:
    """OpIndex over subscriptions: event -> be-matching subscription ids."""

    def __init__(self, frequency_hint: Optional[Mapping[str, int]] = None) -> None:
        self._order: Dict[str, int] = dict(frequency_hint or {})
        self._partitions: Dict[str, Dict[str, _AttributePredicates]] = {}
        # sub_id -> (subscription, per-clause pivots in clause order)
        self._subscriptions: Dict[int, Tuple[Subscription, Tuple[str, ...]]] = {}
        # (sub_id, clause index) -> number of predicates in the clause
        self._clause_sizes: Dict[Tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self._subscriptions)

    def __contains__(self, sub_id: int) -> bool:
        return sub_id in self._subscriptions

    def _pivot_of(self, clause) -> str:
        return min(
            clause.attributes,
            key=lambda a: (self._order.get(a, 0), a),
        )

    def insert(self, subscription: Subscription) -> None:
        """Register a subscription; a DNF registers one entry per clause."""
        if subscription.sub_id in self._subscriptions:
            raise ValueError(f"duplicate subscription id {subscription.sub_id}")
        pivots = []
        for clause_index, clause in enumerate(clauses_of(subscription.expression)):
            key = (subscription.sub_id, clause_index)
            pivot = self._pivot_of(clause)
            pivots.append(pivot)
            partition = self._partitions.setdefault(pivot, {})
            for predicate in clause:
                layer = partition.get(predicate.attribute)
                if layer is None:
                    layer = _AttributePredicates()
                    partition[predicate.attribute] = layer
                layer.add(predicate, key)
            self._clause_sizes[key] = len(clause.predicates)
        self._subscriptions[subscription.sub_id] = (subscription, tuple(pivots))

    def delete(self, subscription: Subscription) -> None:
        """Remove a subscription's clauses; empty layers are pruned."""
        stored = self._subscriptions.pop(subscription.sub_id, None)
        if stored is None:
            raise KeyError(f"subscription {subscription.sub_id} is not in the index")
        stored_sub, pivots = stored
        for clause_index, (clause, pivot) in enumerate(
            zip(clauses_of(stored_sub.expression), pivots)
        ):
            key = (stored_sub.sub_id, clause_index)
            partition = self._partitions[pivot]
            for predicate in clause:
                layer = partition[predicate.attribute]
                layer.remove(predicate, key)
                if not len(layer):
                    del partition[predicate.attribute]
            if not partition:
                del self._partitions[pivot]
            del self._clause_sizes[key]

    def match_event(self, event: Event) -> List[Subscription]:
        """All stored subscriptions whose expression ``event`` satisfies.

        A subscription matches when any of its clauses is fully counted;
        each subscription is reported once.
        """
        matched: List[Subscription] = []
        matched_ids: set = set()
        for attribute in event.attributes:
            partition = self._partitions.get(attribute)
            if partition is None:
                continue
            counters: Dict[Tuple[int, int], int] = defaultdict(int)
            for event_attribute, value in event.attributes.items():
                layer = partition.get(event_attribute)
                if layer is not None:
                    layer.probe(value, counters)
            for key, count in counters.items():
                sub_id = key[0]
                if sub_id in matched_ids:
                    continue
                if count == self._clause_sizes[key]:
                    matched_ids.add(sub_id)
                    matched.append(self._subscriptions[sub_id][0])
        return matched
