"""The common interface of the four event indexes the paper compares.

Each index supports insertion/deletion of spatial events and answers a
*subscription match*: given a spatial subscription and the subscriber's
current location, return every stored event that both be-matches the
subscription (Definition 3) and lies inside its notification region
(Definition 4).

The evaluation (Figure 8) reports the boolean-expression phase and the
spatial phase separately, so the interface exposes the two stages:
``be_candidates`` runs the index's native filtering order and returns the
candidates it would hand to the remaining verification, and ``match``
completes the job.  For Quadtree the "BE phase" is the residual
expression verification and the "spatial phase" the range query, mirroring
the paper's per-method accounting.
"""

from __future__ import annotations

import abc
from typing import Iterable, List

from ..expressions import Event, Subscription
from ..geometry import Point


class EventIndex(abc.ABC):
    """Abstract base of Quadtree, k-index, OpIndex and BEQ-Tree."""

    @abc.abstractmethod
    def insert(self, event: Event) -> None:
        """Add ``event`` to the index."""

    @abc.abstractmethod
    def delete(self, event: Event) -> None:
        """Remove ``event``; unknown events raise :class:`KeyError`."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """The number of stored events."""

    @abc.abstractmethod
    def match(self, subscription: Subscription, at: Point) -> List[Event]:
        """All stored events matching ``subscription`` at location ``at``."""

    def insert_all(self, events: Iterable[Event]) -> None:
        """Insert a batch of events."""
        for event in events:
            self.insert(event)
