"""A point-region quadtree over spatial events.

This is the "Quadtree" baseline of Figure 8: a purely spatial index that
first collects every event inside the notification circle and only then
verifies the boolean expression event by event.  It is also the spatial
skeleton the BEQ-Tree builds on (the BEQ-Tree keeps its own node type
because its leaves carry inverted lists).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from ..expressions import Event, Subscription
from ..geometry import Circle, Point, Rect
from .base import EventIndex


class _Node:
    """One quadtree node; a leaf holds events, an inner node four children."""

    __slots__ = ("boundary", "events", "children")

    def __init__(self, boundary: Rect) -> None:
        self.boundary = boundary
        self.events: Optional[List[Event]] = []
        self.children: Optional[List["_Node"]] = None

    @property
    def is_leaf(self) -> bool:
        """True when this node holds events directly."""
        return self.children is None


class QuadTree(EventIndex):
    """PR-quadtree: leaves split at ``max_per_leaf`` events.

    ``max_depth`` guards against unbounded splitting when many events share
    a location (real check-in data has heavy co-location).
    """

    def __init__(self, boundary: Rect, max_per_leaf: int = 64, max_depth: int = 16) -> None:
        if max_per_leaf <= 0:
            raise ValueError(f"max_per_leaf must be positive: {max_per_leaf}")
        self.boundary = boundary
        self.max_per_leaf = max_per_leaf
        self.max_depth = max_depth
        self._root = _Node(boundary)
        self._size = 0
        #: node visits a batched match avoided versus one-at-a-time walks
        self.probes_saved = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, event: Event) -> None:
        """Insert an event; splits the leaf past ``max_per_leaf``."""
        if not self.boundary.contains_point(event.location):
            raise ValueError(
                f"event {event.event_id} at {event.location} is outside {self.boundary}"
            )
        self._insert(self._root, event, depth=0)
        self._size += 1

    def _insert(self, node: _Node, event: Event, depth: int) -> None:
        while not node.is_leaf:
            node = self._child_for(node, event.location)
            depth += 1
        node.events.append(event)
        if len(node.events) > self.max_per_leaf and depth < self.max_depth:
            self._split(node, depth)

    def _split(self, node: _Node, depth: int) -> None:
        node.children = [_Node(quad) for quad in node.boundary.quadrants()]
        events, node.events = node.events, None
        for event in events:
            leaf = self._child_for(node, event.location)
            leaf.events.append(event)
        # A pathological split can push everything into one child; recurse
        # so the invariant is restored (bounded by max_depth).
        for child in node.children:
            if len(child.events) > self.max_per_leaf and depth + 1 < self.max_depth:
                self._split(child, depth + 1)

    @staticmethod
    def _child_for(node: _Node, location: Point) -> _Node:
        cx = (node.boundary.x_min + node.boundary.x_max) / 2.0
        cy = (node.boundary.y_min + node.boundary.y_max) / 2.0
        index = (1 if location.x >= cx else 0) + (2 if location.y >= cy else 0)
        return node.children[index]

    def delete(self, event: Event) -> None:
        """Delete an event; collapses empty subtrees."""
        path: List[_Node] = []
        node = self._root
        while not node.is_leaf:
            path.append(node)
            node = self._child_for(node, event.location)
        try:
            node.events.remove(event)
        except ValueError:
            raise KeyError(f"event {event.event_id} is not in the index") from None
        self._size -= 1
        # Collapse parents whose children are all empty leaves (Appendix C).
        for parent in reversed(path):
            children = parent.children
            if all(child.is_leaf and not child.events for child in children):
                parent.children = None
                parent.events = []
            else:
                break

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def events_in_circle(self, circle: Circle) -> List[Event]:
        """All stored events inside the disk (the spatial phase)."""
        result: List[Event] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not circle.intersects_rect(node.boundary):
                continue
            if node.is_leaf:
                result.extend(e for e in node.events if circle.contains(e.location))
            else:
                stack.extend(node.children)
        return result

    def events_in_rect(self, rect: Rect) -> List[Event]:
        """All stored events inside the rectangle."""
        result: List[Event] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not rect.intersects(node.boundary):
                continue
            if node.is_leaf:
                result.extend(e for e in node.events if rect.contains_point(e.location))
            else:
                stack.extend(node.children)
        return result

    def be_candidates(self, subscription: Subscription, at: Point) -> List[Event]:
        """Quadtree filters spatially first; candidates await BE verification."""
        return self.events_in_circle(subscription.notification_region(at))

    def match(self, subscription: Subscription, at: Point) -> List[Event]:
        """Definition 5 match: range query then boolean verification."""
        candidates = self.be_candidates(subscription, at)
        return [event for event in candidates if subscription.be_matches(event)]

    def match_batch(
        self, queries: Sequence[Tuple[Subscription, Point]]
    ) -> List[List[Event]]:
        """Match many (subscription, location) pairs in one tree walk.

        The baseline counterpart of :meth:`BEQTree.match_batch`:
        equivalent to mapping :meth:`match` over the queries (same events,
        same per-query order), with node descents shared by carrying the
        group of still-intersecting queries down the tree.
        """
        results: List[List[Event]] = [[] for _ in queries]
        if not queries:
            return results
        circles = [sub.notification_region(at) for sub, at in queries]
        stack: List[Tuple[_Node, List[int]]] = [(self._root, list(range(len(queries))))]
        while stack:
            node, group = stack.pop()
            group = [qi for qi in group if circles[qi].intersects_rect(node.boundary)]
            if not group:
                continue
            if node.is_leaf:
                self.probes_saved += len(group) - 1
                for qi in group:
                    subscription = queries[qi][0]
                    results[qi].extend(
                        event
                        for event in node.events
                        if circles[qi].contains(event.location)
                        and subscription.be_matches(event)
                    )
            else:
                stack.extend((child, group) for child in node.children)
        return results

    def leaves(self) -> Iterator[_Node]:
        """Every leaf node of the tree."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                stack.extend(node.children)

    def depth(self) -> int:
        """The maximum leaf depth (1 for a single-leaf tree)."""
        best = 0
        stack = [(self._root, 1)]
        while stack:
            node, level = stack.pop()
            if node.is_leaf:
                best = max(best, level)
            else:
                stack.extend((child, level + 1) for child in node.children)
        return best
