"""BEQ-Tree: Boolean Expression Quad-Tree (Section 4 of the paper).

The BEQ-Tree is a two-layer index over spatial events:

* **First layer** — a quadtree partitions the space; each leaf cell holds
  at most ``emax`` events.
* **Second layer** — inside each leaf cell ``G``:

  - one sorted inverted list ``L<G, A>`` per attribute ``A`` holding the
    ``(value, event)`` tuples of the cell's events;
  - one *spatial list* ``L<G, y>`` holding, for each event, its iDistance
    value ``y = dist(event, sigma)`` to the cell's reference point
    ``sigma`` (the cell centre), sorted ascending;
  - a counter array used by the counting algorithm.

Subscription matching (Algorithm 2) visits only the leaf cells whose
boundary intersects the notification circle, prunes cells missing any
subscription attribute, runs the counting algorithm over the per-attribute
lists (the BE phase), and then scans only the ``[dmin, dmax]`` interval of
the spatial list (the spatial phase), verifying the exact distance for
events whose counter reached |s|.

The tree also serves iGM/idGM safe-region construction *on demand*: the
constructor asks for be-matching events only in the leaf cells its grid
expansion actually touches, so the rest of the space is never scanned
(Section 4.2, "BEQ-Tree used in iGM and idGM").
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..expressions import BooleanExpression, Event, Subscription
from ..expressions.dnf import clauses_of
from ..geometry import Circle, Point, Rect
from ..geometry.zorder import interleave
from .base import EventIndex
from .inverted import AttributeLists, SortedTupleList

#: per-leaf clause-cache entries beyond this are assumed pathological
#: (an adversarial vocabulary) and the cache is dropped wholesale
_CLAUSE_CACHE_LIMIT = 128


class CacheCounters:
    """Shared work counters for the batched fast path.

    One instance is threaded through every leaf of a tree so the server
    can account amortisation globally:

    * ``hits`` / ``misses`` — per-leaf clause-cache outcomes (a hit skips
      the counting algorithm's inverted-list probes entirely);
    * ``probes_saved`` — tree descents and leaf visits a batched call
      avoided compared to the equivalent one-at-a-time calls.
    """

    __slots__ = ("hits", "misses", "probes_saved")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.probes_saved = 0

    def snapshot(self) -> Tuple[int, int, int]:
        """The counter triple, for delta accounting."""
        return (self.hits, self.misses, self.probes_saved)


def circle_rect_boundary_intersections(circle: Circle, rect: Rect) -> List[Point]:
    """Intersection points of the circle's boundary with the rectangle's edges.

    Used to tighten the ``dmax`` bound of the spatial range match when the
    subscriber stands outside the cell and the notification circle does not
    swallow any cell corner (Figure 5).
    """
    cx, cy, r = circle.center.x, circle.center.y, circle.radius
    points: List[Point] = []

    def add_vertical(x: float, y_low: float, y_high: float) -> None:
        dx = x - cx
        discriminant = r * r - dx * dx
        if discriminant < 0:
            return
        root = math.sqrt(discriminant)
        for y in (cy - root, cy + root):
            if y_low <= y <= y_high:
                points.append(Point(x, y))

    def add_horizontal(y: float, x_low: float, x_high: float) -> None:
        dy = y - cy
        discriminant = r * r - dy * dy
        if discriminant < 0:
            return
        root = math.sqrt(discriminant)
        for x in (cx - root, cx + root):
            if x_low <= x <= x_high:
                points.append(Point(x, y))

    add_vertical(rect.x_min, rect.y_min, rect.y_max)
    add_vertical(rect.x_max, rect.y_min, rect.y_max)
    add_horizontal(rect.y_min, rect.x_min, rect.x_max)
    add_horizontal(rect.y_max, rect.x_min, rect.x_max)
    return points


class LeafCell:
    """One leaf partition ``G`` with its second-layer structures."""

    __slots__ = (
        "cell_id", "boundary", "reference", "lists", "spatial", "events",
        "counters", "_clause_cache",
    )

    def __init__(
        self, cell_id: int, boundary: Rect, counters: Optional[CacheCounters] = None
    ) -> None:
        self.cell_id = cell_id
        self.boundary = boundary
        self.reference = boundary.center  # the reference point sigma
        self.lists = AttributeLists()
        self.spatial = SortedTupleList()
        self.events: Dict[int, Event] = {}
        self.counters = counters if counters is not None else CacheCounters()
        # clause -> event ids be-matching it in this cell; any event churn
        # invalidates the whole cache (the counting result of every clause
        # may have changed)
        self._clause_cache: Dict[BooleanExpression, FrozenSet[int]] = {}

    def __len__(self) -> int:
        return len(self.events)

    def add(self, event: Event) -> None:
        """Index one event into the cell's three structures."""
        self._clause_cache.clear()
        self.events[event.event_id] = event
        self.lists.insert_tuples(event.attributes.items(), event.event_id)
        self.spatial.insert(self.reference.distance_to(event.location), event.event_id)

    def remove(self, event: Event) -> None:
        """Remove one event from the cell's three structures."""
        self._clause_cache.clear()
        del self.events[event.event_id]
        self.lists.delete_tuples(event.attributes.items(), event.event_id)
        self.spatial.delete(self.reference.distance_to(event.location), event.event_id)

    def clause_match_ids(self, clause: BooleanExpression) -> FrozenSet[int]:
        """Ids of this cell's events be-matching one conjunctive clause.

        The result is memoised per clause: a burst of constructions (or a
        batched match) probing the same vocabulary pays the counting
        algorithm once per (leaf, clause) instead of once per call.
        """
        cached = self._clause_cache.get(clause)
        if cached is not None:
            self.counters.hits += 1
            return cached
        self.counters.misses += 1
        ids = frozenset(self.lists.matching_payloads(clause.predicates))
        if len(self._clause_cache) >= _CLAUSE_CACHE_LIMIT:
            self._clause_cache.clear()
        self._clause_cache[clause] = ids
        return ids

    def be_match(self, expression) -> List[Event]:
        """Events of this cell be-matching the expression (counting only).

        Accepts a plain conjunction or a DNF; a DNF unions the clauses'
        counting results.
        """
        matched_ids: set = set()
        for clause in clauses_of(expression):
            matched_ids.update(self.clause_match_ids(clause))
        return [self.events[event_id] for event_id in matched_ids]


class _Node:
    """A BEQ-Tree node: a leaf wraps a :class:`LeafCell`."""

    __slots__ = ("boundary", "cell", "children")

    def __init__(self, boundary: Rect, cell: Optional[LeafCell]) -> None:
        self.boundary = boundary
        self.cell = cell
        self.children: Optional[List["_Node"]] = None

    @property
    def is_leaf(self) -> bool:
        """True when this node holds a leaf cell."""
        return self.children is None


class BEQTree(EventIndex):
    """The Boolean Expression Quad-Tree."""

    def __init__(self, boundary: Rect, emax: int = 64, max_depth: int = 16) -> None:
        if emax <= 0:
            raise ValueError(f"emax must be positive: {emax}")
        self.boundary = boundary
        self.emax = emax
        self.max_depth = max_depth
        #: shared work counters for the batched fast path (all leaves)
        self.counters = CacheCounters()
        self._cell_ids = itertools.count()
        self._root = _Node(boundary, self._new_leaf(boundary))
        self._size = 0
        self._event_ids: set = set()

    def _new_leaf(self, boundary: Rect) -> LeafCell:
        return LeafCell(next(self._cell_ids), boundary, self.counters)

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Updates (Appendix C)
    # ------------------------------------------------------------------
    def insert(self, event: Event) -> None:
        """Insert an event; splits the leaf past ``emax`` (Appendix C)."""
        if not self.boundary.contains_point(event.location):
            raise ValueError(
                f"event {event.event_id} at {event.location} is outside {self.boundary}"
            )
        if event.event_id in self._event_ids:
            raise ValueError(f"duplicate event id {event.event_id}")
        self._event_ids.add(event.event_id)
        node, depth = self._descend(event.location)
        node.cell.add(event)
        self._size += 1
        if len(node.cell) > self.emax and depth < self.max_depth:
            self._split(node, depth)

    def insert_batch(self, events: Iterable[Event]) -> int:
        """Insert a batch, z-ordered so consecutive events share a leaf.

        The batch is validated upfront (bounds and duplicate ids, within
        the batch included), then inserted in Morton order of the event
        locations: spatially adjacent events land consecutively, so the
        quadtree descent from the root is skipped whenever an event falls
        into the leaf the previous event just used.  Returns the number
        of descents saved (also accumulated in ``counters.probes_saved``).
        """
        batch = list(events)
        fresh_ids: set = set()
        for event in batch:
            if not self.boundary.contains_point(event.location):
                raise ValueError(
                    f"event {event.event_id} at {event.location} is outside {self.boundary}"
                )
            if event.event_id in self._event_ids or event.event_id in fresh_ids:
                raise ValueError(f"duplicate event id {event.event_id}")
            fresh_ids.add(event.event_id)
        last: Optional[_Node] = None
        last_depth = 0
        saved = 0
        for event in sorted(batch, key=lambda e: self._zcode(e.location)):
            if (
                last is not None
                and last.is_leaf
                and last.boundary.contains_point(event.location)
            ):
                node, depth = last, last_depth
                saved += 1
            else:
                node, depth = self._descend(event.location)
            self._event_ids.add(event.event_id)
            node.cell.add(event)
            self._size += 1
            if len(node.cell) > self.emax and depth < self.max_depth:
                self._split(node, depth)
                last = None
            else:
                last, last_depth = node, depth
        self.counters.probes_saved += saved
        return saved

    def _zcode(self, location: Point) -> int:
        """Morton code of a location quantised to 16 bits per axis."""
        b = self.boundary
        width = b.x_max - b.x_min
        height = b.y_max - b.y_min
        qx = int((location.x - b.x_min) / width * 65535) if width > 0 else 0
        qy = int((location.y - b.y_min) / height * 65535) if height > 0 else 0
        return interleave(min(max(qx, 0), 65535), min(max(qy, 0), 65535))

    def _descend(self, location: Point):
        node, depth = self._root, 1
        while not node.is_leaf:
            node = self._child_for(node, location)
            depth += 1
        return node, depth

    @staticmethod
    def _child_for(node: _Node, location: Point) -> _Node:
        cx = (node.boundary.x_min + node.boundary.x_max) / 2.0
        cy = (node.boundary.y_min + node.boundary.y_max) / 2.0
        index = (1 if location.x >= cx else 0) + (2 if location.y >= cy else 0)
        return node.children[index]

    def _split(self, node: _Node, depth: int) -> None:
        """Partition a full leaf into four child cells (Appendix C)."""
        events = list(node.cell.events.values())
        node.cell = None
        node.children = [
            _Node(quad, self._new_leaf(quad)) for quad in node.boundary.quadrants()
        ]
        for event in events:
            self._child_for(node, event.location).cell.add(event)
        for child in node.children:
            if len(child.cell) > self.emax and depth + 1 < self.max_depth:
                self._split(child, depth + 1)

    def delete(self, event: Event) -> None:
        """Delete an event; merges empty sibling leaves (Appendix C)."""
        path: List[_Node] = []
        node = self._root
        while not node.is_leaf:
            path.append(node)
            node = self._child_for(node, event.location)
        if event.event_id not in node.cell.events:
            raise KeyError(f"event {event.event_id} is not in the index")
        node.cell.remove(event)
        self._event_ids.discard(event.event_id)
        self._size -= 1
        # Merge empty sibling leaves back into the parent (Appendix C).
        for parent in reversed(path):
            children = parent.children
            if all(child.is_leaf and len(child.cell) == 0 for child in children):
                parent.children = None
                parent.cell = self._new_leaf(parent.boundary)
            else:
                break

    # ------------------------------------------------------------------
    # Leaf traversal
    # ------------------------------------------------------------------
    def leaves(self) -> Iterator[LeafCell]:
        """Every leaf cell of the tree."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node.cell
            else:
                stack.extend(node.children)

    def leaves_intersecting_circle(self, circle: Circle) -> Iterator[LeafCell]:
        """Leaf cells whose boundary intersects the disk."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not circle.intersects_rect(node.boundary):
                continue
            if node.is_leaf:
                yield node.cell
            else:
                stack.extend(node.children)

    def leaves_intersecting_rect(self, rect: Rect) -> Iterator[LeafCell]:
        """Leaf cells whose boundary intersects the rectangle."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not rect.intersects(node.boundary):
                continue
            if node.is_leaf:
                yield node.cell
            else:
                stack.extend(node.children)

    def depth(self) -> int:
        """The maximum leaf depth (1 for a single-leaf tree)."""
        best = 0
        stack = [(self._root, 1)]
        while stack:
            node, level = stack.pop()
            if node.is_leaf:
                best = max(best, level)
            else:
                stack.extend((child, level + 1) for child in node.children)
        return best

    def memory_stats(self) -> dict:
        """Structure counts backing Appendix C's memory-cost analysis.

        ``tuple_entries`` is |T| (one entry per event tuple in the
        second-layer lists) and ``spatial_entries`` equals the event count
        (one iDistance entry each); the total space is O(|T|), linear in
        the stored tuples.
        """
        leaves = 0
        tuple_entries = 0
        spatial_entries = 0
        attribute_lists = 0
        for leaf in self.leaves():
            leaves += 1
            spatial_entries += len(leaf.spatial)
            attribute_lists += len(leaf.lists)
            tuple_entries += sum(len(lst) for lst in leaf.lists.lists.values())
        return {
            "events": self._size,
            "leaves": leaves,
            "depth": self.depth(),
            "attribute_lists": attribute_lists,
            "tuple_entries": tuple_entries,
            "spatial_entries": spatial_entries,
        }

    # ------------------------------------------------------------------
    # Matching (Algorithm 2)
    # ------------------------------------------------------------------
    def match(self, subscription: Subscription, at: Point) -> List[Event]:
        """All stored events matching ``subscription`` at location ``at``."""
        circle = subscription.notification_region(at)
        matched: List[Event] = []
        for leaf in self.leaves_intersecting_circle(circle):
            matched.extend(self._match_in_leaf(leaf, subscription, circle))
        return matched

    def match_batch(
        self, queries: Sequence[Tuple[Subscription, Point]]
    ) -> List[List[Event]]:
        """Match many (subscription, location) pairs in one tree walk.

        Equivalent to ``[self.match(s, at) for s, at in queries]`` —
        same events, same order per query (the leaf visiting order of the
        single-query walk is preserved) — but the tree is descended once:
        every node carries the group of queries whose notification circle
        intersects it, so node descents and circle/rectangle tests are
        shared across the batch, and the per-leaf clause cache amortises
        the counting algorithm across queries with shared vocabulary.
        ``counters.probes_saved`` accumulates the leaf visits saved
        versus the one-at-a-time walks.
        """
        results: List[List[Event]] = [[] for _ in queries]
        if not queries:
            return results
        circles = [sub.notification_region(at) for sub, at in queries]
        stack: List[Tuple[_Node, List[int]]] = [(self._root, list(range(len(queries))))]
        while stack:
            node, group = stack.pop()
            group = [qi for qi in group if circles[qi].intersects_rect(node.boundary)]
            if not group:
                continue
            if node.is_leaf:
                self.counters.probes_saved += len(group) - 1
                for qi in group:
                    results[qi].extend(
                        self._match_in_leaf(node.cell, queries[qi][0], circles[qi])
                    )
            else:
                stack.extend((child, group) for child in node.children)
        return results

    def be_candidates(self, subscription: Subscription, at: Point) -> List[Event]:
        """Events passing the BE phase in the circle-intersecting leaves."""
        circle = subscription.notification_region(at)
        candidates: List[Event] = []
        for leaf in self.leaves_intersecting_circle(circle):
            candidates.extend(leaf.be_match(subscription.expression))
        return candidates

    def _match_in_leaf(
        self, leaf: LeafCell, subscription: Subscription, circle: Circle
    ) -> List[Event]:
        """Algorithm 2: BESpatialMatch within one cell partition ``G``."""
        # Lines 2-10, per conjunctive clause: a clause whose attribute is
        # missing from the cell prunes only itself; the counting algorithm
        # collects the cell's be-matching events across clauses.
        matched_ids: set = set()
        for clause in clauses_of(subscription.expression):
            if any(p.attribute not in leaf.lists for p in clause.predicates):
                continue
            matched_ids.update(leaf.clause_match_ids(clause))
        if not matched_ids:
            return []
        # Lines 11-16: the iDistance interval of the spatial list.
        y = circle.center.distance_to(leaf.reference)
        r = circle.radius
        d_min = max(y - r, 0.0)
        if leaf.boundary.contains_point(circle.center):
            d_max = y + r
        elif circle.contains_any_corner_of(leaf.boundary):
            d_max = math.inf
        else:
            crossings = circle_rect_boundary_intersections(circle, leaf.boundary)
            if crossings:
                d_max = max(leaf.reference.distance_to(p) for p in crossings)
            else:
                d_max = y + r  # tangent / degenerate overlap: safe fallback
        # Lines 17-20: scan the interval and verify the exact distance.
        matched: List[Event] = []
        if math.isinf(d_max):
            entries = leaf.spatial.iter_value_from(d_min)
        else:
            entries = leaf.spatial.iter_value_range(d_min, d_max)
        for _, event_id in entries:
            if event_id not in matched_ids:
                continue
            event = leaf.events[event_id]
            if circle.contains(event.location):
                matched.append(event)
        return matched

    # ------------------------------------------------------------------
    # On-demand BE matching for safe-region construction (Section 4.2)
    # ------------------------------------------------------------------
    def be_match_in_rect(self, expression: BooleanExpression, rect: Rect) -> List[Event]:
        """be-matching events in all leaf cells intersecting ``rect``."""
        matched: List[Event] = []
        for leaf in self.leaves_intersecting_rect(rect):
            matched.extend(leaf.be_match(expression))
        return matched

    def be_match(self, expression: BooleanExpression) -> List[Event]:
        """be-matching events over the whole space."""
        matched: List[Event] = []
        for leaf in self.leaves():
            matched.extend(leaf.be_match(expression))
        return matched
