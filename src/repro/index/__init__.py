"""Index substrate: BEQ-Tree, the three Figure-8 baselines, and the
server-side impact-region and subscription indexes."""

from .base import EventIndex
from .betree import BETreeIndex
from .beq_tree import BEQTree, CacheCounters, LeafCell, circle_rect_boundary_intersections
from .impact_index import ImpactRegionIndex
from .inverted import AttributeLists, SortedTupleList
from .kindex import KIndex
from .ksub_index import KSubscriptionIndex
from .opindex import OpIndex
from .quadtree import QuadTree
from .subscription_index import SubscriptionIndex

__all__ = [
    "AttributeLists",
    "BETreeIndex",
    "BEQTree",
    "CacheCounters",
    "EventIndex",
    "ImpactRegionIndex",
    "KIndex",
    "KSubscriptionIndex",
    "LeafCell",
    "OpIndex",
    "QuadTree",
    "SortedTupleList",
    "SubscriptionIndex",
    "circle_rect_boundary_intersections",
]
