"""The Twitter-like workload.

The paper turns each geo-tweet into a spatial event whose attributes are
the tweet's keywords and whose values are the keyword frequencies inside
the tweet, and converts AOL keyword queries into boolean expressions over
the same attribute space (equality or interval predicates over keyword
frequencies).  Neither corpus ships with the paper, so this module
generates the closest seeded synthetic equivalent:

* **events** — ``keywords_per_event`` distinct Zipf-sampled keywords, each
  with a small integer frequency value (term frequencies in a tweet are
  tiny and skewed towards 1); locations follow a hotspot mixture;
* **subscriptions** — ``size`` distinct keywords drawn from the popular
  end of the same vocabulary (AOL queries are dominated by head terms),
  with a mix of greater-equal, interval and equality predicates over the
  frequency values, mirroring the two conversion styles quoted in
  Section 6.1.

What matters for the reproduction is preserved: the attribute-frequency
skew shared between the two sides (it drives boolean selectivity and thus
``ne``), the small per-event attribute count, and the spatial clustering.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from ..geometry import Rect
from .locations import LocationSampler
from .vocabulary import Vocabulary

#: Distribution of within-tweet term frequencies: overwhelmingly 1.
_FREQ_VALUES = (1, 1, 1, 1, 1, 2, 2, 3, 4, 5)


@dataclass(frozen=True)
class TwitterLikeConfig:
    """Tunable knobs of the Twitter-like generator."""

    vocabulary_size: int = 400
    zipf_skew: float = 1.1
    min_keywords: int = 4
    max_keywords: int = 9
    subscription_pool: int = 30  # subscriptions draw from the head words
    hotspots: int = 8
    uniform_fraction: float = 0.2

    def __post_init__(self) -> None:
        if not 1 <= self.min_keywords <= self.max_keywords:
            raise ValueError("need 1 <= min_keywords <= max_keywords")
        if self.subscription_pool > self.vocabulary_size:
            raise ValueError("subscription pool exceeds the vocabulary")


class TwitterLikeGenerator:
    """Seeded generator of Twitter-like events and subscriptions."""

    def __init__(
        self,
        space: Rect,
        config: Optional[TwitterLikeConfig] = None,
        seed: int = 0,
        locations: Optional[LocationSampler] = None,
    ) -> None:
        self.space = space
        self.config = config or TwitterLikeConfig()
        self.seed = seed
        self.vocabulary = Vocabulary(self.config.vocabulary_size, self.config.zipf_skew)
        self._subscription_vocabulary = self.vocabulary.top(self.config.subscription_pool)
        # ``locations`` swaps the spatial mixture — e.g. a
        # SkewedLocationSampler for hotspot-concentrated streams — while
        # keeping the attribute workload identical.
        self._locations = locations if locations is not None else LocationSampler(
            space,
            hotspots=self.config.hotspots,
            uniform_fraction=self.config.uniform_fraction,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def events(
        self,
        count: int,
        start_id: int = 0,
        arrived_at: int = 0,
        ttl: Optional[int] = None,
        seed_offset: int = 0,
    ) -> List[Event]:
        """A batch of ``count`` events with consecutive ids."""
        return list(
            itertools.islice(
                self.event_stream(start_id, arrived_at, ttl, seed_offset), count
            )
        )

    def event_stream(
        self,
        start_id: int = 0,
        arrived_at: int = 0,
        ttl: Optional[int] = None,
        seed_offset: int = 0,
    ) -> Iterator[Event]:
        """An endless stream of events; ``ttl`` sets the validity period."""
        rng = random.Random(f"{self.seed}-events-{seed_offset}")
        for event_id in itertools.count(start_id):
            keyword_count = rng.randint(self.config.min_keywords, self.config.max_keywords)
            keywords = self.vocabulary.sample_distinct(rng, keyword_count)
            attributes: Dict[str, int] = {
                keyword: rng.choice(_FREQ_VALUES) for keyword in keywords
            }
            expires = None if ttl is None else arrived_at + ttl
            yield Event(
                event_id=event_id,
                attributes=attributes,
                location=self._locations.sample(rng),
                arrived_at=arrived_at,
                expires_at=expires,
            )

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def subscriptions(
        self,
        count: int,
        size: int = 3,
        radius: float = 3000.0,
        start_id: int = 0,
        seed_offset: int = 0,
    ) -> List[Subscription]:
        """``count`` boolean-expression subscriptions of ``size`` predicates."""
        rng = random.Random(f"{self.seed}-subs-{seed_offset}")
        result: List[Subscription] = []
        for sub_id in range(start_id, start_id + count):
            keywords = self._subscription_vocabulary.sample_distinct(rng, size)
            predicates = [self._predicate(rng, keyword) for keyword in keywords]
            result.append(
                Subscription(sub_id, BooleanExpression(predicates), radius=radius)
            )
        return result

    @staticmethod
    def _predicate(rng: random.Random, keyword: str) -> Predicate:
        """The AOL-conversion mix: mostly presence-style, some intervals."""
        roll = rng.random()
        if roll < 0.60:
            # "keyword appears at all" — the equality-conversion analogue
            # of (SIGMOD = 1) generalised to any frequency.
            return Predicate(keyword, Operator.GE, 1)
        if roll < 0.85:
            low = rng.randint(1, 2)
            high = low + rng.randint(1, 4)
            return Predicate(keyword, Operator.BETWEEN, (low, high))
        return Predicate(keyword, Operator.EQ, rng.choice((1, 1, 1, 2)))

    def frequency_hint(self) -> Dict[str, int]:
        """Attribute frequencies for pivot-ordered indexes."""
        return self.vocabulary.frequency_hint()
