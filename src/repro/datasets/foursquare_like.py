"""The Foursquare-like workload (Appendix D.2).

Foursquare venues are schema-rich events: the paper extracts attribute-
value pairs from venues carrying ~50 attributes each, and generates
subscriptions that follow the same attribute distribution, with operators
and operands attached synthetically.

The synthetic equivalent keeps those properties:

* every venue carries a set of **core attributes** (category, rating,
  price tier, opening hours, review count, ...) plus a random subset of
  **amenity flags**, for roughly ``attributes_per_event`` attributes;
* attribute popularity is skewed (core attributes appear everywhere,
  amenities by Zipf weight), and **subscriptions sample attributes by that
  same popularity**, as Appendix D.2 prescribes;
* operators are attached synthetically: equality on categoricals, ranges
  on numerics.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from ..geometry import Rect
from .locations import LocationSampler
from .vocabulary import Vocabulary

_CATEGORIES = (
    "food", "coffee", "nightlife", "shop", "arts", "outdoors",
    "gym", "hotel", "transport", "education", "office", "medical",
)


@dataclass(frozen=True)
class FoursquareLikeConfig:
    """Tunable knobs of the Foursquare-like generator."""

    amenity_count: int = 40
    amenity_skew: float = 0.8
    min_amenities: int = 2
    max_amenities: int = 8
    hotspots: int = 10
    uniform_fraction: float = 0.15


class FoursquareLikeGenerator:
    """Seeded generator of venue-style events and matching subscriptions."""

    #: numeric core attributes: name -> (low, high, integer?)
    _NUMERIC_CORE: Dict[str, Tuple[float, float, bool]] = {
        "rating": (0.0, 10.0, False),
        "price_tier": (1, 4, True),
        "review_count": (0, 500, True),
        "open_hour": (5, 12, True),
        "close_hour": (14, 27, True),  # 27 = 3am next day
        "capacity": (10, 400, True),
    }

    def __init__(
        self,
        space: Rect,
        config: Optional[FoursquareLikeConfig] = None,
        seed: int = 0,
    ) -> None:
        self.space = space
        self.config = config or FoursquareLikeConfig()
        self.seed = seed
        self._amenities = Vocabulary(
            self.config.amenity_count, self.config.amenity_skew, prefix="amenity_"
        )
        self._locations = LocationSampler(
            space,
            hotspots=self.config.hotspots,
            uniform_fraction=self.config.uniform_fraction,
            seed=seed + 1,
        )

    # ------------------------------------------------------------------
    # Events (venues)
    # ------------------------------------------------------------------
    def events(
        self,
        count: int,
        start_id: int = 0,
        arrived_at: int = 0,
        ttl: Optional[int] = None,
        seed_offset: int = 0,
    ) -> List[Event]:
        """A batch of ``count`` venues with consecutive ids."""
        return list(
            itertools.islice(
                self.event_stream(start_id, arrived_at, ttl, seed_offset), count
            )
        )

    def event_stream(
        self,
        start_id: int = 0,
        arrived_at: int = 0,
        ttl: Optional[int] = None,
        seed_offset: int = 0,
    ) -> Iterator[Event]:
        """An endless stream of venues; ``ttl`` sets the validity period."""
        rng = random.Random(f"{self.seed}-venues-{seed_offset}")
        for event_id in itertools.count(start_id):
            attributes: Dict[str, object] = {"category": rng.choice(_CATEGORIES)}
            for name, (low, high, integer) in self._NUMERIC_CORE.items():
                if integer:
                    attributes[name] = rng.randint(int(low), int(high))
                else:
                    attributes[name] = round(rng.uniform(low, high), 1)
            amenity_count = rng.randint(self.config.min_amenities, self.config.max_amenities)
            for amenity in self._amenities.sample_distinct(rng, amenity_count):
                attributes[amenity] = 1
            expires = None if ttl is None else arrived_at + ttl
            yield Event(
                event_id=event_id,
                attributes=attributes,
                location=self._locations.sample(rng),
                arrived_at=arrived_at,
                expires_at=expires,
            )

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def subscriptions(
        self,
        count: int,
        size: int = 3,
        radius: float = 3000.0,
        start_id: int = 0,
        seed_offset: int = 0,
    ) -> List[Subscription]:
        """Subscriptions following the venue attribute distribution."""
        rng = random.Random(f"{self.seed}-venue-subs-{seed_offset}")
        result: List[Subscription] = []
        numeric_names = list(self._NUMERIC_CORE)
        for sub_id in range(start_id, start_id + count):
            predicates: List[Predicate] = []
            used = set()
            while len(predicates) < size:
                predicate = self._predicate(rng, numeric_names)
                if predicate.attribute in used:
                    continue
                used.add(predicate.attribute)
                predicates.append(predicate)
            result.append(
                Subscription(sub_id, BooleanExpression(predicates), radius=radius)
            )
        return result

    def _predicate(self, rng: random.Random, numeric_names: List[str]) -> Predicate:
        roll = rng.random()
        if roll < 0.25:
            # category equality, e.g. category = coffee
            return Predicate("category", Operator.EQ, rng.choice(_CATEGORIES))
        if roll < 0.75:
            # a loose numeric range on a core attribute
            name = rng.choice(numeric_names)
            low, high, integer = self._NUMERIC_CORE[name]
            span = high - low
            if rng.random() < 0.5:
                # one-sided: rating >= 6, price_tier <= 2, ...
                cut = low + span * rng.uniform(0.2, 0.6)
                operand = int(cut) if integer else round(cut, 1)
                op = Operator.GE if rng.random() < 0.5 else Operator.LE
                return Predicate(name, op, operand)
            mid = low + span * rng.uniform(0.2, 0.8)
            width = span * rng.uniform(0.3, 0.6)
            lo = max(low, mid - width / 2)
            hi = min(high, mid + width / 2)
            if integer:
                lo, hi = int(lo), max(int(lo), int(hi))
            else:
                lo, hi = round(lo, 1), round(max(lo, hi), 1)
            return Predicate(name, Operator.BETWEEN, (lo, hi))
        # an amenity flag must be present: wifi = 1
        return Predicate(self._amenities.sample(rng), Operator.EQ, 1)

    def frequency_hint(self) -> Dict[str, int]:
        """Attribute frequencies for pivot-ordered indexes."""
        hint = self._amenities.frequency_hint()
        for name in ("category", *self._NUMERIC_CORE):
            hint[name] = 10_000_000  # core attributes appear in every venue
        return hint
