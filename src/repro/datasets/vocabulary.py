"""Zipf-distributed keyword vocabularies.

The paper's Twitter workload turns each geo-tweet into attribute-value
pairs whose attributes are the tweet's keywords.  Natural-language keyword
frequencies are Zipfian, and the AOL-derived subscriptions follow the same
skew, which is what correlates subscriptions with events.  This module
provides a seeded Zipf vocabulary both generators share.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Dict, List


class Vocabulary:
    """``size`` words with Zipf(``skew``) sampling weights."""

    def __init__(self, size: int, skew: float = 1.0, prefix: str = "kw") -> None:
        if size <= 0:
            raise ValueError(f"vocabulary size must be positive: {size}")
        if skew < 0:
            raise ValueError(f"zipf skew must be non-negative: {skew}")
        self.words: List[str] = [f"{prefix}{i}" for i in range(size)]
        weights = [1.0 / (rank + 1) ** skew for rank in range(size)]
        total = sum(weights)
        self.weights: List[float] = [w / total for w in weights]
        self._cumulative = list(itertools.accumulate(self.weights))

    def __len__(self) -> int:
        return len(self.words)

    def sample(self, rng: random.Random) -> str:
        """One word drawn by Zipf weight."""
        return self.words[bisect.bisect_left(self._cumulative, rng.random())]

    def sample_distinct(self, rng: random.Random, count: int) -> List[str]:
        """``count`` distinct words, each drawn by Zipf weight."""
        if count > len(self.words):
            raise ValueError(
                f"cannot draw {count} distinct words from {len(self.words)}"
            )
        chosen: List[str] = []
        seen = set()
        while len(chosen) < count:
            word = self.sample(rng)
            if word not in seen:
                seen.add(word)
                chosen.append(word)
        return chosen

    def top(self, count: int) -> "Vocabulary":
        """A sub-vocabulary restricted to the ``count`` most frequent words.

        Subscription generators bias towards popular keywords (people
        search for common things), which is also what keeps boolean
        selectivity realistic.
        """
        sub = Vocabulary.__new__(Vocabulary)
        sub.words = self.words[:count]
        weights = self.weights[:count]
        total = sum(weights)
        sub.weights = [w / total for w in weights]
        sub._cumulative = list(itertools.accumulate(sub.weights))
        return sub

    def frequency_hint(self, scale: int = 1_000_000) -> Dict[str, int]:
        """Integer frequencies for OpIndex-style pivot ordering."""
        return {word: max(int(weight * scale), 1) for word, weight in zip(self.words, self.weights)}
