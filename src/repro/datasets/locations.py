"""Spatial placement of events: hotspot mixtures.

Geo-tweets and venues cluster around urban centres.  Locations are drawn
from a mixture of Gaussian hotspots plus a uniform background, clipped to
the space; the hotspot layout is itself seeded so a generator is fully
reproducible.

:class:`LocationSampler` picks hotspots uniformly — mild, spread-out
clustering.  :class:`SkewedLocationSampler` picks them Zipf-weighted, so
one cluster dominates the stream: the workload shape that stalls a
statically column-partitioned fleet and that load-adaptive
repartitioning (DESIGN.md §15) is built for.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..geometry import Point, Rect


@dataclass(frozen=True)
class Hotspot:
    """One Gaussian cluster centre with its spread."""
    center: Point
    std: float


class LocationSampler:
    """Mixture of Gaussian hotspots with a uniform background."""

    def __init__(
        self,
        space: Rect,
        hotspots: int = 8,
        hotspot_std_fraction: float = 0.03,
        uniform_fraction: float = 0.2,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= uniform_fraction <= 1.0:
            raise ValueError(f"uniform fraction must be in [0, 1]: {uniform_fraction}")
        self.space = space
        self.uniform_fraction = uniform_fraction
        layout_rng = random.Random(seed)
        std = hotspot_std_fraction * min(space.width, space.height)
        self.hotspots: List[Hotspot] = [
            Hotspot(
                Point(
                    layout_rng.uniform(space.x_min + std, space.x_max - std),
                    layout_rng.uniform(space.y_min + std, space.y_max - std),
                ),
                std * layout_rng.uniform(0.5, 1.5),
            )
            for _ in range(hotspots)
        ]

    def sample(self, rng: random.Random) -> Point:
        """One location: a hotspot draw or the uniform background."""
        if not self.hotspots or rng.random() < self.uniform_fraction:
            return Point(
                rng.uniform(self.space.x_min, self.space.x_max),
                rng.uniform(self.space.y_min, self.space.y_max),
            )
        hotspot = rng.choice(self.hotspots)
        x = min(max(rng.gauss(hotspot.center.x, hotspot.std), self.space.x_min), self.space.x_max)
        y = min(max(rng.gauss(hotspot.center.y, hotspot.std), self.space.y_min), self.space.y_max)
        return Point(x, y)


class SkewedLocationSampler(LocationSampler):
    """Zipf-weighted Gaussian hotspot clusters: a dominant urban core.

    Hotspot ``k`` (0-based, in layout order) is chosen with probability
    proportional to ``1 / (k + 1) ** zipf_s`` — at the default exponent
    the first cluster draws roughly as much traffic as all the others
    combined, concentrating the stream on a small patch of space.  The
    cluster layout, spreads, and draw sequence are all seeded, so two
    samplers with the same parameters replay the same skew.

    ``centers`` optionally pins the cluster centres (rank order =
    sequence order) instead of scattering them from the seed — how the
    scaling benchmark plants its dominant hotspot in the middle of one
    static band.
    """

    def __init__(
        self,
        space: Rect,
        hotspots: int = 8,
        hotspot_std_fraction: float = 0.03,
        uniform_fraction: float = 0.05,
        zipf_s: float = 1.5,
        seed: int = 0,
        centers: Optional[Sequence[Point]] = None,
    ) -> None:
        if zipf_s < 0.0:
            raise ValueError(f"zipf exponent must be non-negative: {zipf_s}")
        super().__init__(
            space,
            hotspots=hotspots,
            hotspot_std_fraction=hotspot_std_fraction,
            uniform_fraction=uniform_fraction,
            seed=seed,
        )
        if centers is not None:
            if len(centers) > len(self.hotspots):
                raise ValueError(
                    f"{len(centers)} centers for {len(self.hotspots)} hotspots"
                )
            self.hotspots = [
                Hotspot(center, hotspot.std)
                for center, hotspot in zip(centers, self.hotspots)
            ] + self.hotspots[len(centers):]
        weights = [1.0 / (k + 1) ** zipf_s for k in range(len(self.hotspots))]
        total = sum(weights)
        #: cumulative Zipf mass per rank, for inverse-CDF cluster choice
        self._cumulative: List[float] = list(
            itertools.accumulate(w / total for w in weights)
        )

    def sample(self, rng: random.Random) -> Point:
        """One location: Zipf-ranked hotspot draw or uniform background."""
        if not self.hotspots or rng.random() < self.uniform_fraction:
            return Point(
                rng.uniform(self.space.x_min, self.space.x_max),
                rng.uniform(self.space.y_min, self.space.y_max),
            )
        u = rng.random()
        rank = next(
            (k for k, mass in enumerate(self._cumulative) if u <= mass),
            len(self.hotspots) - 1,
        )
        hotspot = self.hotspots[rank]
        x = min(max(rng.gauss(hotspot.center.x, hotspot.std), self.space.x_min), self.space.x_max)
        y = min(max(rng.gauss(hotspot.center.y, hotspot.std), self.space.y_min), self.space.y_max)
        return Point(x, y)
