"""Spatial placement of events: hotspot mixtures.

Geo-tweets and venues cluster around urban centres.  Locations are drawn
from a mixture of Gaussian hotspots plus a uniform background, clipped to
the space; the hotspot layout is itself seeded so a generator is fully
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..geometry import Point, Rect


@dataclass(frozen=True)
class Hotspot:
    """One Gaussian cluster centre with its spread."""
    center: Point
    std: float


class LocationSampler:
    """Mixture of Gaussian hotspots with a uniform background."""

    def __init__(
        self,
        space: Rect,
        hotspots: int = 8,
        hotspot_std_fraction: float = 0.03,
        uniform_fraction: float = 0.2,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= uniform_fraction <= 1.0:
            raise ValueError(f"uniform fraction must be in [0, 1]: {uniform_fraction}")
        self.space = space
        self.uniform_fraction = uniform_fraction
        layout_rng = random.Random(seed)
        std = hotspot_std_fraction * min(space.width, space.height)
        self.hotspots: List[Hotspot] = [
            Hotspot(
                Point(
                    layout_rng.uniform(space.x_min + std, space.x_max - std),
                    layout_rng.uniform(space.y_min + std, space.y_max - std),
                ),
                std * layout_rng.uniform(0.5, 1.5),
            )
            for _ in range(hotspots)
        ]

    def sample(self, rng: random.Random) -> Point:
        """One location: a hotspot draw or the uniform background."""
        if not self.hotspots or rng.random() < self.uniform_fraction:
            return Point(
                rng.uniform(self.space.x_min, self.space.x_max),
                rng.uniform(self.space.y_min, self.space.y_max),
            )
        hotspot = rng.choice(self.hotspots)
        x = min(max(rng.gauss(hotspot.center.x, hotspot.std), self.space.x_min), self.space.x_max)
        y = min(max(rng.gauss(hotspot.center.y, hotspot.std), self.space.y_min), self.space.y_max)
        return Point(x, y)
