"""Workload substrate: seeded synthetic stand-ins for the paper's
Twitter/AOL and Foursquare corpora (see DESIGN.md for the substitution
rationale)."""

from .foursquare_like import FoursquareLikeConfig, FoursquareLikeGenerator
from .locations import LocationSampler, SkewedLocationSampler
from .twitter_like import TwitterLikeConfig, TwitterLikeGenerator
from .vocabulary import Vocabulary

__all__ = [
    "FoursquareLikeConfig",
    "FoursquareLikeGenerator",
    "LocationSampler",
    "SkewedLocationSampler",
    "TwitterLikeConfig",
    "TwitterLikeGenerator",
    "Vocabulary",
]
