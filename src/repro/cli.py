"""Command-line interface: ``python -m repro <command>``.

Six commands cover the common workflows:

* ``simulate`` — run one pub/sub simulation (a strategy, a workload, a
  movement model) and print the per-subscriber communication figures;
* ``compare``  — run the same world against VM, GM, iGM and idGM and
  print the comparison table (the Figure 7 experiment at one point);
* ``match``    — load a corpus into the four event indexes and time a
  batch of subscription matches (the Figure 8 experiment at one point);
* ``record``   — run a simulation while journaling every operation to a
  trace directory (DESIGN.md §13);
* ``replay``   — re-run a recorded trace through a fresh server (any
  configuration: repair on/off, shards, batch size) and print/diff the
  delivered-notification log;
* ``serve``    — serve an Elaps core on a real TCP port behind the
  backpressure-aware front-end, every
  :class:`~repro.system.config.NetworkConfig` knob exposed.

Every run is deterministic under ``--seed``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import List, Optional, Sequence

from .datasets import TwitterLikeGenerator
from .geometry import Rect
from .index import BEQTree, KIndex, OpIndex, QuadTree
from .system import ExperimentConfig, run_experiment
from .system.experiment import STRATEGIES

#: every selectable strategy, including the vectorized ``-vec`` twins
_STRATEGY_CHOICES = tuple(STRATEGIES)


def _default_mode(strategy: str) -> str:
    """VM/GM need the global matching list; the incremental family
    (scalar or vectorized) pulls events on demand."""
    return "cached" if strategy in ("VM", "GM") else "ondemand"


def _add_simulation_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=("twitter", "foursquare"), default="twitter")
    parser.add_argument("--movement", choices=("synthetic", "taxi"), default="synthetic")
    parser.add_argument("--event-rate", type=float, default=20.0,
                        help="f: events per timestamp (default 20)")
    parser.add_argument("--speed", type=float, default=60.0,
                        help="vs: metres per timestamp (default 60)")
    parser.add_argument("--radius", type=float, default=3000.0,
                        help="r: notification radius in metres (default 3000)")
    parser.add_argument("--events", type=int, default=6000,
                        help="E: initial event corpus size (default 6000)")
    parser.add_argument("--subscribers", type=int, default=10)
    parser.add_argument("--timestamps", type=int, default=120,
                        help="simulation length; one timestamp = 5 s")
    parser.add_argument("--sub-size", type=int, default=3,
                        help="delta: predicates per subscription (default 3)")
    parser.add_argument("--grid", type=int, default=120, help="N: grid resolution")
    parser.add_argument("--ttl", type=int, default=50,
                        help="event validity in timestamps (default 50)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=1,
                        help="spatial shards; > 1 runs a ShardedElapsServer "
                             "fleet (column-band grid partitioning)")
    parser.add_argument("--shard-executor",
                        choices=("serial", "threaded", "process"),
                        default="serial",
                        help="how shard work runs: 'serial' is deterministic, "
                             "'threaded' fans out over a pool with one lock "
                             "per shard, 'process' gives every shard its own "
                             "worker process (true parallel matching)")
    parser.add_argument("--rebalance", action="store_true",
                        help="load-adaptive repartitioning: move the column "
                             "boundaries when one band draws a dominant "
                             "share of the event stream")
    parser.add_argument("--stats", action="store_true",
                        help="print the per-stage latency summary (span "
                             "histograms: count, p50/p95/p99, total) after "
                             "the run")
    parser.add_argument("--slow-span-ms", type=float, default=None,
                        help="report any pipeline span that takes at least "
                             "this many milliseconds as it happens")


def _config_from(args: argparse.Namespace, strategy: str, mode: str) -> ExperimentConfig:
    return ExperimentConfig(
        strategy=strategy,
        dataset=args.dataset,
        movement=args.movement,
        event_rate=args.event_rate,
        speed=args.speed,
        radius=args.radius,
        initial_events=args.events,
        subscription_size=args.sub_size,
        subscribers=args.subscribers,
        timestamps=args.timestamps,
        grid_n=args.grid,
        event_ttl=args.ttl,
        matching_mode=mode,
        seed=args.seed,
        shards=args.shards,
        shard_executor=args.shard_executor,
        rebalance=getattr(args, "rebalance", False),
        slow_span_seconds=(
            None if args.slow_span_ms is None else args.slow_span_ms / 1000.0
        ),
    )


def _print_header(args: argparse.Namespace) -> None:
    print(
        f"{args.subscribers} subscribers x {args.timestamps} timestamps on "
        f"{args.dataset}/{args.movement}; f={args.event_rate:g}/tm, "
        f"vs={args.speed:g} m/tm, r={args.radius / 1000:g} km, "
        f"E={args.events}, seed={args.seed}"
        + (
            f"; {args.shards} shards ({args.shard_executor})"
            if getattr(args, "shards", 1) > 1
            else ""
        )
    )


def _print_row(label: str, per: dict, seconds: float) -> None:
    print(
        f"{label:<6} {per['location_update']:>14.2f} {per['event_arrival']:>14.2f} "
        f"{per['total']:>10.2f} {per['notifications']:>14.2f} {seconds:>9.1f}s"
    )


_TABLE_HEADER = (
    f"{'method':<6} {'location upd.':>14} {'event arrival':>14} "
    f"{'total I/O':>10} {'notifications':>14} {'wall':>10}"
)


def _print_span_table(registry, label: str = "") -> None:
    """The per-stage latency summary behind ``--stats``."""
    summaries = registry.tracer.summaries() if registry is not None else {}
    title = f"per-stage latency{f' ({label})' if label else ''}"
    if not summaries:
        print(f"\n{title}: no spans recorded")
        return
    print(f"\n{title}")
    print(f"{'stage':<16} {'count':>9} {'p50 ms':>10} {'p95 ms':>10} "
          f"{'p99 ms':>10} {'total s':>10}")
    for stage, digest in summaries.items():
        print(
            f"{stage:<16} {digest['count']:>9} {digest['p50'] * 1e3:>10.3f} "
            f"{digest['p95'] * 1e3:>10.3f} {digest['p99'] * 1e3:>10.3f} "
            f"{digest['total_seconds']:>10.3f}"
        )


def _command_simulate(args: argparse.Namespace) -> int:
    mode = _default_mode(args.strategy)
    _print_header(args)
    started = time.perf_counter()
    result = run_experiment(_config_from(args, args.strategy, mode))
    print()
    print(_TABLE_HEADER)
    _print_row(args.strategy, result.per_subscriber(), time.perf_counter() - started)
    if args.stats:
        _print_span_table(result.registry)
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    _print_header(args)
    print()
    print(_TABLE_HEADER)
    totals = {}
    span_tables = []
    for strategy in ("VM", "GM", "iGM", "idGM"):
        mode = _default_mode(strategy)
        started = time.perf_counter()
        result = run_experiment(_config_from(args, strategy, mode))
        per = result.per_subscriber()
        totals[strategy] = per["total"]
        span_tables.append((strategy, result.registry))
        _print_row(strategy, per, time.perf_counter() - started)
    if args.stats:
        for strategy, registry in span_tables:
            _print_span_table(registry, strategy)
    best = min(totals, key=totals.get)
    worst = max(totals, key=totals.get)
    if totals[best] > 0:
        print(
            f"\n{best} uses {totals[worst] / totals[best]:.1f}x less "
            f"communication than {worst}"
        )
    return 0


def _command_match(args: argparse.Namespace) -> int:
    space = Rect(0, 0, 50_000, 50_000)
    generator = TwitterLikeGenerator(space, seed=args.seed)
    print(f"loading {args.events} events, matching {args.queries} subscriptions "
          f"(delta={args.sub_size}, r={args.radius / 1000:g} km)")
    events = generator.events(args.events)
    subscriptions = generator.subscriptions(
        args.queries, size=args.sub_size, radius=args.radius
    )
    locations = [event.location for event in events[: args.queries]]
    indexes = {
        "Quadtree": QuadTree(space, max_per_leaf=256),
        "k-index": KIndex(),
        "OpIndex": OpIndex(frequency_hint=generator.frequency_hint()),
        "BEQ-Tree": BEQTree(space, emax=512),
    }
    print(f"\n{'index':<10} {'build (s)':>10} {'per query (ms)':>16} {'matches':>8}")
    reference: Optional[List] = None
    for name, index in indexes.items():
        started = time.perf_counter()
        index.insert_all(events)
        build_seconds = time.perf_counter() - started
        started = time.perf_counter()
        results = [
            sorted(e.event_id for e in index.match(subscription, at))
            for subscription, at in zip(subscriptions, locations)
        ]
        elapsed_ms = (time.perf_counter() - started) * 1000 / args.queries
        if reference is None:
            reference = results
        elif results != reference:
            print(f"ERROR: {name} diverged from the reference results",
                  file=sys.stderr)
            return 1
        print(f"{name:<10} {build_seconds:>10.2f} {elapsed_ms:>16.2f} "
              f"{sum(len(r) for r in results):>8}")
    return 0


#: ExperimentConfig fields persisted to the trace's meta.json so replay
#: can rebuild an equivalent server without re-specifying the world.
_TRACE_META_FIELDS = (
    "strategy", "dataset", "movement", "event_rate", "speed", "radius",
    "initial_events", "subscription_size", "subscribers", "timestamps",
    "grid_n", "space_size", "emax", "event_ttl", "matching_mode", "seed",
    "shards", "shard_executor", "rebalance", "repair",
)


def _command_record(args: argparse.Namespace) -> int:
    from .system import build_simulation
    from .system.journal import Journal
    from .testing import TraceRecorder

    mode = _default_mode(args.strategy)
    config = _config_from(args, args.strategy, mode)
    _print_header(args)
    journal = Journal(args.trace)
    recorder = None

    def wrap(server):
        """Interpose the recorder between the simulation and the server."""
        nonlocal recorder
        recorder = TraceRecorder(server, journal)
        return recorder

    started = time.perf_counter()
    simulation = build_simulation(config, wrap_server=wrap)
    result = simulation.run(config.timestamps)
    journal.write_meta(
        {name: getattr(config, name) for name in _TRACE_META_FIELDS}
    )
    record_count = journal.record_count
    recorder.close()
    print(
        f"\nrecorded {record_count} operations "
        f"({result.notification_count} notifications) to {args.trace} "
        f"in {time.perf_counter() - started:.1f}s"
    )
    return 0


def _command_replay(args: argparse.Namespace) -> int:
    from .system import ExperimentConfig, build_server
    from .system.journal import Journal
    from .testing import diff_logs, replay_trace

    meta = Journal(args.trace).read_meta()
    overrides = {
        name: value
        for name, value in (
            ("strategy", args.strategy),
            ("grid_n", args.grid),
            ("matching_mode", args.matching_mode),
            ("shards", args.shards),
            ("shard_executor", args.shard_executor),
            ("rebalance", args.rebalance),
            ("repair", args.repair),
        )
        if value is not None
    }
    known = {f.name for f in dataclasses.fields(ExperimentConfig)}
    config = ExperimentConfig(
        **{k: v for k, v in meta.items() if k in known}
    ).with_(**overrides)
    server = build_server(config)
    started = time.perf_counter()
    result = replay_trace(args.trace, server, batch_size=args.batch_size)
    elapsed = time.perf_counter() - started
    log = result.log()
    print(
        f"replayed {result.records_applied} records -> "
        f"{len(result.notifications)} notifications in {elapsed:.1f}s "
        f"(sha256 {result.digest()[:16]})"
    )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(log)
        print(f"log written to {args.out}")
    if args.expect:
        with open(args.expect) as handle:
            expected = handle.read()
        divergence = diff_logs(expected, log)
        if divergence:
            print(f"DIVERGED from {args.expect}: {divergence}", file=sys.stderr)
            return 1
        print(f"byte-identical to {args.expect}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .system import ElapsTCPServer, ExperimentConfig, NetworkConfig
    from .system.experiment import build_server

    world = ExperimentConfig(
        strategy=args.strategy,
        grid_n=args.grid,
        initial_events=args.events,
        event_ttl=args.ttl,
        seed=args.seed,
        repair=args.repair,
    )
    network = NetworkConfig(
        read_timeout=args.read_timeout,
        write_timeout=args.write_timeout,
        retain_subscribers=args.retain_subscribers,
        ingress_queue=args.ingress_queue,
        send_queue=args.send_queue,
        send_queue_hard=args.send_queue_hard,
        shed_policy=args.shed_policy,
        slow_consumer_grace=args.slow_consumer_grace,
        max_connections=args.max_connections,
        dispatch_offload=args.dispatch_offload,
        write_buffer_limit=args.write_buffer_limit,
    )

    async def run() -> None:
        core = build_server(world)
        tcp = ElapsTCPServer(
            core,
            host=args.host,
            port=args.port,
            timestamp_seconds=args.timestamp_seconds,
            config=network,
        )
        await tcp.start()
        print(
            f"serving {world.strategy} core on {tcp.host}:{tcp.port} "
            f"(E={world.initial_events}, send_queue={network.send_queue}/"
            f"{network.hard_cap}, shed={network.shed_policy})",
            flush=True,
        )
        try:
            if args.runtime is not None:
                await asyncio.sleep(args.runtime)
            else:
                await asyncio.Event().wait()  # serve until interrupted
        finally:
            await tcp.stop()
            stats = core.merged_registry().stats
            print(
                f"served: {stats.notifications} notifications, "
                f"{stats.heartbeats} heartbeats, {stats.frames_shed} frames "
                f"shed, {stats.slow_consumer_disconnects} slow-consumer "
                f"disconnects",
                flush=True,
            )

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for `python -m repro`."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Elaps: location-aware pub/sub for moving queries over "
                    "dynamic event streams (SIGMOD 2015 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="run one strategy and print its communication figures"
    )
    simulate.add_argument("--strategy", choices=_STRATEGY_CHOICES,
                          default="iGM")
    _add_simulation_arguments(simulate)
    simulate.set_defaults(handler=_command_simulate)

    compare = commands.add_parser(
        "compare", help="run all four strategies on the same world"
    )
    _add_simulation_arguments(compare)
    compare.set_defaults(handler=_command_compare)

    match = commands.add_parser(
        "match", help="time subscription matching on the four event indexes"
    )
    match.add_argument("--events", type=int, default=20_000)
    match.add_argument("--queries", type=int, default=40)
    match.add_argument("--sub-size", type=int, default=3)
    match.add_argument("--radius", type=float, default=3_000.0)
    match.add_argument("--seed", type=int, default=7)
    match.set_defaults(handler=_command_match)

    record = commands.add_parser(
        "record", help="run a simulation while journaling every operation "
                       "to a replayable trace directory"
    )
    record.add_argument("--strategy", choices=_STRATEGY_CHOICES,
                        default="iGM")
    record.add_argument("--trace", required=True,
                        help="directory to write the trace journal into")
    _add_simulation_arguments(record)
    record.set_defaults(handler=_command_record)

    replay = commands.add_parser(
        "replay", help="re-run a recorded trace through a fresh server and "
                       "print (or diff) the delivered-notification log"
    )
    replay.add_argument("--trace", required=True,
                        help="trace directory written by `repro record`")
    replay.add_argument("--strategy", choices=_STRATEGY_CHOICES,
                        default=None, help="override the recorded strategy")
    replay.add_argument("--grid", type=int, default=None,
                        help="override the recorded grid resolution")
    replay.add_argument("--matching-mode", choices=("ondemand", "cached"),
                        default=None, help="override the matching mode")
    replay.add_argument("--shards", type=int, default=None,
                        help="replay through a sharded fleet of this size")
    replay.add_argument("--shard-executor",
                        choices=("serial", "threaded", "process"),
                        default=None)
    replay.add_argument("--rebalance", dest="rebalance", action="store_true",
                        default=None,
                        help="replay with load-adaptive repartitioning on")
    replay.add_argument("--repair", dest="repair", action="store_true",
                        default=None, help="replay with incremental repair on")
    replay.add_argument("--no-repair", dest="repair", action="store_false",
                        help="replay with incremental repair off")
    replay.add_argument("--batch-size", type=int, default=None,
                        help="regroup the publish stream: 1 forces single "
                             "publishes, N coalesces same-timestamp arrivals "
                             "into batches of at most N (default: as recorded)")
    replay.add_argument("--out", default=None,
                        help="write the notification log to this file")
    replay.add_argument("--expect", default=None,
                        help="diff the log against this file; non-zero exit "
                             "on any byte difference")
    replay.set_defaults(handler=_command_replay)

    serve = commands.add_parser(
        "serve", help="serve an Elaps core on a TCP port behind the "
                      "backpressure-aware front-end"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0: pick a free one)")
    serve.add_argument("--strategy", choices=_STRATEGY_CHOICES, default="iGM")
    serve.add_argument("--grid", type=int, default=120, help="N: grid resolution")
    serve.add_argument("--events", type=int, default=0,
                       help="E: initial event corpus size (default 0: empty)")
    serve.add_argument("--ttl", type=int, default=None,
                       help="event validity in timestamps (default: no expiry)")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--repair", action="store_true",
                       help="incremental safe-region repair (ships deltas)")
    serve.add_argument("--timestamp-seconds", type=float, default=5.0,
                       help="wall seconds per server timestamp (default 5)")
    serve.add_argument("--runtime", type=float, default=None,
                       help="serve for this many seconds then exit "
                            "(default: until interrupted)")
    # NetworkConfig knobs (defaults match NetworkConfig's)
    serve.add_argument("--read-timeout", type=float, default=30.0)
    serve.add_argument("--write-timeout", type=float, default=10.0)
    serve.add_argument("--retain-subscribers", action="store_true",
                       help="keep subscriber state across disconnects")
    serve.add_argument("--ingress-queue", type=int, default=1024,
                       help="bounded ingress depth; full = stop reading "
                            "(TCP backpressure)")
    serve.add_argument("--send-queue", type=int, default=256,
                       help="per-connection egress soft cap (frames)")
    serve.add_argument("--send-queue-hard", type=int, default=None,
                       help="egress hard cap (default: 2x the soft cap)")
    serve.add_argument("--shed-policy", choices=("stale", "none"),
                       default="stale",
                       help="'stale' sheds superseded region state from "
                            "over-cap queues; 'none' never drops a frame")
    serve.add_argument("--slow-consumer-grace", type=float, default=2.0,
                       help="seconds a queue may stay over cap before the "
                            "consumer is disconnected")
    serve.add_argument("--max-connections", type=int, default=None,
                       help="admission control: refuse accepts beyond this")
    serve.add_argument("--dispatch-offload", action="store_true",
                       help="run core work on a worker thread behind a lock "
                            "so the event loop stays responsive")
    serve.add_argument("--write-buffer-limit", type=int, default=None,
                       help="cap kernel+transport write buffering (bytes) so "
                            "slow consumers surface in the send queue")
    serve.set_defaults(handler=_command_serve)

    figure = commands.add_parser(
        "figure", help="print a regenerated figure table (run the benchmarks first)"
    )
    figure.add_argument("name", nargs="?", default=None,
                        help="figure id, e.g. fig7a; omit to list available tables")
    figure.set_defaults(handler=_command_figure)

    return parser


def _command_figure(args: argparse.Namespace) -> int:
    import pathlib

    results = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "results"
    if not results.is_dir():
        print("no benchmark results yet; run: pytest benchmarks/ --benchmark-only",
              file=sys.stderr)
        return 1
    if args.name is None:
        for path in sorted(results.glob("*.txt")):
            print(path.stem)
        return 0
    path = results / f"{args.name}.txt"
    if not path.is_file():
        print(f"unknown figure {args.name!r}; available: "
              + ", ".join(sorted(p.stem for p in results.glob('*.txt'))),
              file=sys.stderr)
        return 1
    print(path.read_text())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
