"""Matching-event fields: where the be-matching events are.

Safe-region construction needs three queries about the subscriber's
be-matching (and not yet delivered) events:

* **safety** — is a grid cell farther than the notification radius from
  every matching event? (the boolean array ``B`` of Algorithm 1);
* **density** — how many matching events sit inside a grid cell? (the
  per-cell counts ``phi`` feeding the ``ne`` estimate of the cost model);
* **enumeration** — VM and GM need the full matching-event list.

Safety is answered from an *unsafe-cell set*: every matching event is
dilated by the notification radius once, after which each safety test is
a set lookup.  Two implementations exist, mirroring the paper's two
server modes (Appendix D.3):

* :class:`StaticMatchingField` is built from a fully materialised list of
  matching-event locations (the ``-BE`` variants: k-index finds all
  matching events upfront; also VM and GM, which need the global list);
* :class:`LazyBEQField` pulls matching events *on demand* from a BEQ-Tree
  (Section 4.2, "BEQ-Tree used in iGM and idGM").  It maintains a covered
  rectangle of grid cells that grows with the expansion; tree leaves are
  scanned at most once per construction, and freshly discovered events
  are dilated into the unsafe set incrementally.

Both keep an ``events_scanned`` counter so the benchmarks can report the
server-side work (Figure 13).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..expressions import BooleanExpression
from ..geometry import Cell, Grid, Point, Rect

# Below this many (points x offsets) products the per-point scalar dilation
# beats the array kernel's fixed overhead.
_UNSAFE_ARRAY_CUTOVER = 4096


def dilate_point(grid: Grid, point: Point, radius: float, into: Set[Cell]) -> None:
    """Add every cell within ``radius`` of ``point`` (closed) to ``into``."""
    i, j = grid.cell_of(point)
    for (di, dj) in grid.disk_offsets(radius, inclusive=True):
        candidate = (i + di, j + dj)
        if candidate in into or not grid.in_bounds(candidate):
            continue
        if grid.cell_rect(candidate).min_distance_to_point(point) <= radius:
            into.add(candidate)


class MatchingEventField:
    """Interface shared by the static and the lazy field."""

    grid: Grid
    events_scanned: int = 0

    def count_in_cell(self, cell: Cell) -> int:
        """phi[cell]: the number of matching events located in the cell."""
        raise NotImplementedError

    def is_cell_safe(self, cell: Cell, radius: float) -> bool:
        """True iff every point of ``cell`` is > ``radius`` from every event."""
        raise NotImplementedError

    def unsafe_cells(self, radius: float) -> FrozenSet[Cell]:
        """All cells within ``radius`` of some matching event (GM's input)."""
        raise NotImplementedError

    def all_points(self) -> List[Point]:
        """Every matching-event location (VM/GM need the global list)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Array-view hooks (the vectorized strategy's window into the field)
    # ------------------------------------------------------------------
    def known_points(self) -> List[Point]:
        """The matching-event locations discovered *so far* (live list).

        Unlike :meth:`all_points` this never triggers coverage or scans:
        the vectorized field view consumes the list through a cursor, so
        it must be append-only — already-consumed prefixes never change.
        """
        raise NotImplementedError

    def ensure_cell_neighbourhood(self, cell: Cell, radius: float) -> None:
        """Discover every event whose dilation could reach ``cell``.

        The vectorized strategy calls this once per frontier pop instead
        of :meth:`is_cell_safe`, then reads safety and per-cell counts
        from its own arrays.  No-op for fully materialised fields; the
        lazy field grows its covered rectangle exactly as a scalar
        ``is_cell_safe`` query would, keeping ``events_scanned`` and
        ``leaves_scanned`` identical between the two strategies.
        """


class StaticMatchingField(MatchingEventField):
    """A field over an upfront list of matching-event locations."""

    def __init__(self, grid: Grid, points: Iterable[Point]) -> None:
        self.grid = grid
        self._counts: Dict[Cell, int] = defaultdict(int)
        self._points: List[Point] = []
        self._unsafe: Dict[float, FrozenSet[Cell]] = {}
        self.events_scanned = 0
        for point in points:
            self._points.append(point)
            self._counts[grid.cell_of(point)] += 1

    def count_in_cell(self, cell: Cell) -> int:
        """phi[cell]: matching events located in the cell."""
        return self._counts.get(cell, 0)

    def unsafe_cells(self, radius: float) -> FrozenSet[Cell]:
        """All cells within the radius of some matching event (cached).

        Large point sets go through the array dilation kernel
        (:meth:`Grid.dilate_points_mask`), which computes the same closed
        exact-distance test as :func:`dilate_point` — the resulting set is
        identical either way.
        """
        cached = self._unsafe.get(radius)
        if cached is None:
            footprint = len(self._points) * len(
                self.grid.disk_offsets(radius, inclusive=True)
            )
            if footprint >= _UNSAFE_ARRAY_CUTOVER:
                xs = np.fromiter(
                    (p.x for p in self._points), dtype=np.float64, count=len(self._points)
                )
                ys = np.fromiter(
                    (p.y for p in self._points), dtype=np.float64, count=len(self._points)
                )
                mask = self.grid.dilate_points_mask(xs, ys, radius)
                ii, jj = np.nonzero(mask)
                cached = frozenset(zip(ii.tolist(), jj.tolist()))
            else:
                unsafe: Set[Cell] = set()
                for point in self._points:
                    dilate_point(self.grid, point, radius, unsafe)
                cached = frozenset(unsafe)
            self._unsafe[radius] = cached
        return cached

    def is_cell_safe(self, cell: Cell, radius: float) -> bool:
        """O(1) lookup against the precomputed unsafe set."""
        return cell not in self.unsafe_cells(radius)

    def all_points(self) -> List[Point]:
        """Every matching-event location (a copy)."""
        return list(self._points)

    def known_points(self) -> List[Point]:
        """The full point list (static fields know everything upfront)."""
        return self._points


class LazyBEQField(MatchingEventField):
    """A field that discovers matching events leaf-by-leaf from a BEQ-Tree.

    ``excluded_ids`` carries the already-delivered events (footnote 2 of
    the paper: once notified, an event is never considered again for the
    subscriber, so it must not constrain the safe region either).

    Coverage grows as an axis-aligned cell rectangle: a safety query for a
    cell extends the covered rectangle to include the cell's whole
    ``radius``-neighbourhood, scanning only the BEQ-Tree leaves that
    intersect the newly covered strip.  Because iGM/idGM expand outward
    from the subscriber, the rectangle tracks the expansion closely and
    the rest of the space is never touched.

    A field can outlive one construction (the server's repair mode keeps
    one per subscriber): discovered events are deduplicated by id, so a
    leaf split that redistributes already-seen events never double-counts
    them, and the server feeds corpus churn in through two hooks:

    * :meth:`note_event` adds a freshly published be-matching event
      without rescanning any leaf (covered or not — dedup protects the
      later scan);
    * :meth:`note_exclusion` records that a seen event stopped mattering
      (delivered or expired).  Exclusions are *not* un-dilated — the
      unsafe set only over-approximates, which keeps every construction
      valid (a conservative, smaller region) — but they accumulate as
      staleness, and :meth:`too_stale` tells the owner when a fresh field
      would pay for itself.
    """

    #: staleness floor before :meth:`too_stale` can trigger
    STALE_MIN = 8
    #: and the fraction of seen events that must have stopped mattering
    STALE_FRACTION = 0.25

    def __init__(
        self,
        grid: Grid,
        tree,
        expression: BooleanExpression,
        excluded_ids: Optional[Set[int]] = None,
    ) -> None:
        self.grid = grid
        self._tree = tree
        self._expression = expression
        self._excluded = excluded_ids if excluded_ids is not None else set()
        self._counts: Dict[Cell, int] = defaultdict(int)
        self._points: List[Point] = []
        self._unsafe: Dict[float, Set[Cell]] = defaultdict(set)
        self._scanned_leaves: Set[int] = set()
        self._seen_ids: Set[int] = set()
        # Covered cell rectangle (i_min, j_min, i_max, j_max), inclusive.
        self._covered: Optional[Tuple[int, int, int, int]] = None
        self.events_scanned = 0
        self.leaves_scanned = 0
        #: seen events later delivered/expired; see :meth:`too_stale`
        self.stale_exclusions = 0

    # ------------------------------------------------------------------
    # Coverage
    # ------------------------------------------------------------------
    def _cover(self, i_min: int, j_min: int, i_max: int, j_max: int) -> None:
        """Grow the covered rectangle to include the requested cell range."""
        n = self.grid.n
        i_min, j_min = max(i_min, 0), max(j_min, 0)
        i_max, j_max = min(i_max, n - 1), min(j_max, n - 1)
        if self._covered is not None:
            ci_min, cj_min, ci_max, cj_max = self._covered
            if ci_min <= i_min and cj_min <= j_min and i_max <= ci_max and j_max <= cj_max:
                return
            i_min, j_min = min(i_min, ci_min), min(j_min, cj_min)
            i_max, j_max = max(i_max, ci_max), max(j_max, cj_max)
        lo = self.grid.cell_rect((i_min, j_min))
        hi = self.grid.cell_rect((i_max, j_max))
        area = Rect(lo.x_min, lo.y_min, hi.x_max, hi.y_max)
        for leaf in self._tree.leaves_intersecting_rect(area):
            if leaf.cell_id in self._scanned_leaves:
                continue
            self._scanned_leaves.add(leaf.cell_id)
            self.leaves_scanned += 1
            self.events_scanned += len(leaf.events)
            for event in leaf.be_match(self._expression):
                if event.event_id in self._excluded or event.event_id in self._seen_ids:
                    continue
                self._admit(event.event_id, event.location)
        self._covered = (i_min, j_min, i_max, j_max)

    def _admit(self, event_id: int, location: Point) -> None:
        """Record one newly discovered matching event as a constraint."""
        self._seen_ids.add(event_id)
        self._points.append(location)
        self._counts[self.grid.cell_of(location)] += 1
        for radius, unsafe in self._unsafe.items():
            dilate_point(self.grid, location, radius, unsafe)

    def _reach(self, radius: float) -> int:
        return int(radius / min(self.grid.cell_width, self.grid.cell_height)) + 2

    def _ensure_neighbourhood(self, cell: Cell, radius: float) -> None:
        reach = self._reach(radius)
        self._cover(cell[0] - reach, cell[1] - reach, cell[0] + reach, cell[1] + reach)

    # ------------------------------------------------------------------
    # Reuse across constructions (the server's repair mode)
    # ------------------------------------------------------------------
    def note_event(self, event_id: int, location: Point) -> None:
        """Admit a freshly published be-matching event without a leaf scan.

        Safe whether or not the event's leaf is inside the covered
        rectangle: the id dedup in :meth:`_cover` prevents a double count
        when the leaf is scanned later.
        """
        if event_id in self._excluded or event_id in self._seen_ids:
            return
        self._admit(event_id, location)

    def note_exclusion(self, event_id: int) -> None:
        """Record that a seen event no longer constrains the region.

        The point stays in the unsafe set (conservative: the region can
        only come out smaller, never invalid); the staleness counter is
        what eventually retires the field.
        """
        if event_id in self._seen_ids:
            self.stale_exclusions += 1

    def too_stale(self) -> bool:
        """True when enough seen events died that a rebuild pays off."""
        return self.stale_exclusions > max(
            self.STALE_MIN, int(len(self._points) * self.STALE_FRACTION)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def count_in_cell(self, cell: Cell) -> int:
        """phi[cell], covering the cell's leaves on demand."""
        self._cover(cell[0], cell[1], cell[0], cell[1])
        return self._counts.get(cell, 0)

    def is_cell_safe(self, cell: Cell, radius: float) -> bool:
        """Safety test; covers the cell's radius-neighbourhood on demand."""
        if radius not in self._unsafe:
            # First query with this radius: dilate everything known so far.
            unsafe: Set[Cell] = set()
            for point in self._points:
                dilate_point(self.grid, point, radius, unsafe)
            self._unsafe[radius] = unsafe
        self._ensure_neighbourhood(cell, radius)
        return cell not in self._unsafe[radius]

    def unsafe_cells(self, radius: float) -> FrozenSet[Cell]:
        """Full-coverage unsafe set (GM under on-demand matching)."""
        self.all_points()  # full coverage
        if radius not in self._unsafe:
            unsafe: Set[Cell] = set()
            for point in self._points:
                dilate_point(self.grid, point, radius, unsafe)
            self._unsafe[radius] = unsafe
        return frozenset(self._unsafe[radius])

    def all_points(self) -> List[Point]:
        """Falls back to a full scan; defeats the purpose, use sparingly."""
        n = self.grid.n
        self._cover(0, 0, n - 1, n - 1)
        return list(self._points)

    def known_points(self) -> List[Point]:
        """Points discovered so far, without growing coverage."""
        return self._points

    def ensure_cell_neighbourhood(self, cell: Cell, radius: float) -> None:
        """Cover the cell's radius-neighbourhood (no unsafe-set upkeep)."""
        self._ensure_neighbourhood(cell, radius)
