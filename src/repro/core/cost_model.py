"""The communication cost model of Section 3.3.

Two communication types exist for a continuous query over a dynamic
stream:

* **type I** — the subscriber leaves the safe region; expected after
  ``ts(R) = d(s, R) / vs`` (Equation 3), so a *larger* safe region is
  better;
* **type II** — a new matching event lands in the impact region; expected
  after ``ti(I) = n / (f * ne)`` (Equation 5), so a *smaller* impact
  region (hence safe region, Lemma 3) is better.

The construction maximises ``f_obj = min(ts, ti)`` (Equation 1).  The
balance ratio ``bm = ts / ti`` (Equation 2) grows monotonically as the
safe region expands (Lemma 5), and Lemmas 6-7 show the optimum sits where
``bm`` crosses 1 — so iGM/idGM expand until the next cell would push
``bm`` past the termination threshold (1 in the paper; Figure 9 sweeps
the threshold ``beta`` to confirm the optimum).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SystemStats:
    """The stream/motion statistics the cost model consumes.

    ``event_rate`` is the average number of *new events per timestamp*
    (the paper's ``f``); ``total_events`` is the number of events
    currently stored (``n``).  Both are system-wide statistics maintained
    by the server, independent of any single safe region.
    """

    event_rate: float
    total_events: int

    def __post_init__(self) -> None:
        if self.event_rate < 0:
            raise ValueError(f"negative event rate: {self.event_rate}")
        if self.total_events < 0:
            raise ValueError(f"negative event count: {self.total_events}")


class CostModel:
    """Equations 1-6 with the degenerate cases made explicit."""

    def __init__(self, stats: SystemStats) -> None:
        self.stats = stats

    def expected_exit_time(self, boundary_distance: float, speed: float) -> float:
        """Equation 3: ``ts = d(s, R) / vs``; infinite for a parked user."""
        if speed <= 0:
            return math.inf
        return boundary_distance / speed

    def expected_impact_time(self, matching_in_impact: int) -> float:
        """Equation 5: ``ti = n / (f * ne)``; infinite when nothing can hit."""
        f, n = self.stats.event_rate, self.stats.total_events
        if f <= 0 or matching_in_impact <= 0 or n <= 0:
            return math.inf
        return n / (f * matching_in_impact)

    def balance(
        self, boundary_distance: float, speed: float, matching_in_impact: int
    ) -> float:
        """Equation 6: ``bm = f * ne * d(s, R) / (n * vs)``.

        Degenerate cases follow ``ts / ti`` limits: a parked user never
        exits (``bm = 0`` unless ``ti`` is also infinite, then 0 too — a
        parked user with no event pressure has nothing to trade off).
        """
        ts = self.expected_exit_time(boundary_distance, speed)
        ti = self.expected_impact_time(matching_in_impact)
        if math.isinf(ti):
            return 0.0
        if math.isinf(ts):
            return math.inf
        if ti == 0:
            return math.inf
        return ts / ti

    def objective(
        self, boundary_distance: float, speed: float, matching_in_impact: int
    ) -> float:
        """Equation 1: ``f_obj = min(ts, ti)``."""
        return min(
            self.expected_exit_time(boundary_distance, speed),
            self.expected_impact_time(matching_in_impact),
        )


@dataclass(frozen=True)
class RepairBudget:
    """When an incrementally repaired safe region must be rebuilt.

    Repairing (carving the new event's dilation out of the cached region)
    is always *valid* — safety is monotone, so the repaired region is a
    subset of what a fresh construction would build, and the old impact
    region stays a covering superset (Definition 2).  What repair loses is
    *optimality*: the region drifts away from the ``bm = 1`` balance point
    of Lemmas 6-7.  The budget bounds that staleness with three triggers:

    * **emptiness** — a repaired region with no cells forces the client to
      report every timestamp; rebuild (and let the server's degenerate
      branch install the Lemma-1 impact region);
    * **removed-cell fraction** — once more than ``max_removed_fraction``
      of the cells present at the last full construction are gone, the
      boundary distance ``d(s, R)`` the build optimised for is fiction;
    * **balance drift** — ``bm`` (Equation 6) is linear in the matching
      count ``ne`` for fixed ``d``, ``vs``, ``f`` and ``n``, so scaling the
      build-time ``bm`` by the observed growth of ``ne`` (each type-II hit
      adds one matching event inside the still-installed impact region)
      estimates the current balance without touching the matching field;
      past ``bm_slack`` times the strategy's termination threshold
      ``beta``, the region is paying too many event-arrival rounds.
    """

    max_removed_fraction: float = 0.35
    bm_slack: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 < self.max_removed_fraction <= 1.0:
            raise ValueError(
                f"removed fraction must be in (0, 1]: {self.max_removed_fraction}"
            )
        if self.bm_slack < 1.0:
            raise ValueError(f"bm slack must be >= 1: {self.bm_slack}")

    def rebuild_reason(
        self,
        *,
        live_cells: int,
        cells_at_build: int,
        removed_since_build: int,
        beta: float,
        bm_at_build: Optional[float] = None,
        ne_at_build: int = 0,
        ne_estimate: int = 0,
    ) -> Optional[str]:
        """Why the region must be rebuilt, or None while repair suffices."""
        if live_cells <= 0:
            return "empty"
        if (
            cells_at_build > 0
            and removed_since_build / cells_at_build > self.max_removed_fraction
        ):
            return "removed_fraction"
        if bm_at_build is not None and ne_at_build > 0 and ne_estimate > ne_at_build:
            if bm_at_build * (ne_estimate / ne_at_build) > self.bm_slack * beta:
                return "balance"
        return None
