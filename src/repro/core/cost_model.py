"""The communication cost model of Section 3.3.

Two communication types exist for a continuous query over a dynamic
stream:

* **type I** — the subscriber leaves the safe region; expected after
  ``ts(R) = d(s, R) / vs`` (Equation 3), so a *larger* safe region is
  better;
* **type II** — a new matching event lands in the impact region; expected
  after ``ti(I) = n / (f * ne)`` (Equation 5), so a *smaller* impact
  region (hence safe region, Lemma 3) is better.

The construction maximises ``f_obj = min(ts, ti)`` (Equation 1).  The
balance ratio ``bm = ts / ti`` (Equation 2) grows monotonically as the
safe region expands (Lemma 5), and Lemmas 6-7 show the optimum sits where
``bm`` crosses 1 — so iGM/idGM expand until the next cell would push
``bm`` past the termination threshold (1 in the paper; Figure 9 sweeps
the threshold ``beta`` to confirm the optimum).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SystemStats:
    """The stream/motion statistics the cost model consumes.

    ``event_rate`` is the average number of *new events per timestamp*
    (the paper's ``f``); ``total_events`` is the number of events
    currently stored (``n``).  Both are system-wide statistics maintained
    by the server, independent of any single safe region.
    """

    event_rate: float
    total_events: int

    def __post_init__(self) -> None:
        if self.event_rate < 0:
            raise ValueError(f"negative event rate: {self.event_rate}")
        if self.total_events < 0:
            raise ValueError(f"negative event count: {self.total_events}")


class CostModel:
    """Equations 1-6 with the degenerate cases made explicit."""

    def __init__(self, stats: SystemStats) -> None:
        self.stats = stats

    def expected_exit_time(self, boundary_distance: float, speed: float) -> float:
        """Equation 3: ``ts = d(s, R) / vs``; infinite for a parked user."""
        if speed <= 0:
            return math.inf
        return boundary_distance / speed

    def expected_impact_time(self, matching_in_impact: int) -> float:
        """Equation 5: ``ti = n / (f * ne)``; infinite when nothing can hit."""
        f, n = self.stats.event_rate, self.stats.total_events
        if f <= 0 or matching_in_impact <= 0 or n <= 0:
            return math.inf
        return n / (f * matching_in_impact)

    def balance(
        self, boundary_distance: float, speed: float, matching_in_impact: int
    ) -> float:
        """Equation 6: ``bm = f * ne * d(s, R) / (n * vs)``.

        Degenerate cases follow ``ts / ti`` limits: a parked user never
        exits (``bm = 0`` unless ``ti`` is also infinite, then 0 too — a
        parked user with no event pressure has nothing to trade off).
        """
        ts = self.expected_exit_time(boundary_distance, speed)
        ti = self.expected_impact_time(matching_in_impact)
        if math.isinf(ti):
            return 0.0
        if math.isinf(ts):
            return math.inf
        if ti == 0:
            return math.inf
        return ts / ti

    def objective(
        self, boundary_distance: float, speed: float, matching_in_impact: int
    ) -> float:
        """Equation 1: ``f_obj = min(ts, ti)``."""
        return min(
            self.expected_exit_time(boundary_distance, speed),
            self.expected_impact_time(matching_in_impact),
        )
