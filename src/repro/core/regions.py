"""Safe regions and impact regions (Definitions 1 and 2).

Both region kinds are sets of grid cells.  The grid rendering keeps the
paper's guarantees conservative:

* a cell belongs to a **safe region** only if *every* point of the cell is
  farther than the notification radius from every matching event
  (Definition 1 holds pointwise);
* the **impact region** of a safe region contains every cell holding at
  least one point within the notification radius of the safe region, so an
  event outside the impact cells provably cannot invalidate the safe
  region (Definition 2 is over-approximated, never under-approximated).

GM's safe region is usually "everything except a few cells", so regions
support a complement representation: the stored cell set is then the
*excluded* cells.  The WAH bitmap codec (Appendix B) handles both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Tuple

import numpy as np
from scipy import ndimage

from ..bitmap import WAHBitmap
from ..geometry import Cell, Grid, Point, interleave
from ..geometry.zorder import interleave_array

# Below this many cells the generator + scalar WAH encoder wins; above it
# the vectorized Morton + scatter-OR kernel takes over (identical output).
_BITMAP_ARRAY_CUTOVER = 256


@dataclass(frozen=True)
class GridRegion:
    """An immutable set of grid cells, optionally stored as a complement."""

    grid: Grid
    cells: FrozenSet[Cell]
    complement: bool = False

    @classmethod
    def of(cls, grid: Grid, cells: Iterable[Cell], complement: bool = False) -> "GridRegion":
        """Region over the given cells (or their complement)."""
        return cls(grid, frozenset(cells), complement)

    @classmethod
    def empty(cls, grid: Grid) -> "GridRegion":
        """The empty region."""
        return cls(grid, frozenset(), complement=False)

    @classmethod
    def whole_space(cls, grid: Grid) -> "GridRegion":
        """The region covering every cell of the grid."""
        return cls(grid, frozenset(), complement=True)

    def covers_cell(self, cell: Cell) -> bool:
        """Membership test at cell granularity."""
        if self.complement:
            return self.grid.in_bounds(cell) and cell not in self.cells
        return cell in self.cells

    def contains_point(self, p: Point) -> bool:
        """Membership test for a point (via its containing cell)."""
        return self.covers_cell(self.grid.cell_of(p))

    def is_empty(self) -> bool:
        """True when no cell is covered."""
        return self.area_cells() == 0

    def area_cells(self) -> int:
        """The number of covered cells."""
        total = self.grid.n * self.grid.n
        return total - len(self.cells) if self.complement else len(self.cells)

    def iter_cells(self) -> Iterator[Cell]:
        """All member cells; materialises the complement when needed."""
        if not self.complement:
            yield from self.cells
            return
        for cell in self.grid.all_cells():
            if cell not in self.cells:
                yield cell

    # ------------------------------------------------------------------
    # Repair (carving cells out of a region)
    # ------------------------------------------------------------------
    def subtract(self, cells: Iterable[Cell]) -> Tuple["GridRegion", FrozenSet[Cell]]:
        """Remove cells from the region; returns ``(smaller, removed)``.

        ``removed`` is the subset of ``cells`` the region actually covered
        — the membership delta a server ships to the client holding this
        region.  Representation is preserved: a complement region grows
        its excluded set, a direct region shrinks its cell set, and the
        result keeps the caller's class (so ``SafeRegion.subtract`` yields
        a ``SafeRegion``).  Removing nothing returns ``self`` unchanged.
        """
        removed = frozenset(cell for cell in cells if self.covers_cell(cell))
        if not removed:
            return self, removed
        if self.complement:
            return type(self)(self.grid, self.cells | removed, True), removed
        return type(self)(self.grid, self.cells - removed, False), removed

    # ------------------------------------------------------------------
    # Intersection (merging per-shard regions)
    # ------------------------------------------------------------------
    def intersected_with(self, other: "GridRegion") -> "GridRegion":
        """The cells covered by both regions, representation-aware.

        The sharding coordinator's merge: each shard computes a safe
        region against only its own events, so the region valid against
        *all* events is the intersection of the per-shard regions
        (Definition 1 is a conjunction over events).  Complement forms
        combine without materialising: two complements intersect by
        uniting their excluded sets; a mixed pair subtracts the
        complement's excluded cells from the direct side.  The result
        keeps the caller's class (so ``SafeRegion ∩ SafeRegion`` is a
        ``SafeRegion``).
        """
        if self.grid is not other.grid and self.grid.n != other.grid.n:
            raise ValueError("cannot intersect regions over different grids")
        if self.complement and other.complement:
            return type(self)(self.grid, self.cells | other.cells, True)
        if self.complement:
            return type(self)(self.grid, other.cells - self.cells, False)
        if other.complement:
            return type(self)(self.grid, self.cells - other.cells, False)
        return type(self)(self.grid, self.cells & other.cells, False)

    # ------------------------------------------------------------------
    # Wire encoding (Appendix B)
    # ------------------------------------------------------------------
    def to_bitmap(self) -> WAHBitmap:
        """The z-ordered WAH bitmap a server would ship to the client.

        Cells are laid out by Morton code so that spatially close cells get
        adjacent bit positions, which is what makes the run-length encoding
        effective (Appendix B).  A complement region encodes its *stored*
        (excluded) cells — the complement flag travels beside the bitmap in
        the wire protocol, so the client inverts the membership test rather
        than the server shipping a nearly-all-ones bitmap.
        """
        side = 1 << max(self.grid.n - 1, 1).bit_length()
        length = side * side
        if len(self.cells) >= _BITMAP_ARRAY_CUTOVER:
            pairs = np.array(sorted(self.cells), dtype=np.int64).reshape(-1, 2)
            codes = interleave_array(pairs[:, 0], pairs[:, 1]).astype(np.int64)
            return WAHBitmap.from_positions_array(codes, length)
        positions = (interleave(i, j) for (i, j) in self.cells)
        return WAHBitmap.from_positions(positions, length)

    def encoded_bytes(self) -> int:
        """Bytes on the wire when shipping this region to a client."""
        return self.to_bitmap().compressed_bytes()


class SafeRegion(GridRegion):
    """Definition 1 rendered on the grid; the client-side object."""


class ImpactRegion(GridRegion):
    """Definition 2 rendered on the grid; stays on the server."""


@dataclass(frozen=True)
class RegionDelta:
    """The cells a repair removed from a subscriber's safe region.

    Event arrival can only *shrink* a safe region (safety is monotone in
    the event corpus, Definition 1), so the server never needs to ship
    additions: the whole region update is "these cells left your region".
    A delta is representation-agnostic — the client subtracts the removed
    cells from whatever region it holds (direct or complement), via
    :meth:`GridRegion.subtract`.
    """

    grid: Grid
    removed: FrozenSet[Cell]

    @classmethod
    def of(cls, grid: Grid, removed: Iterable[Cell]) -> "RegionDelta":
        """A delta over the given removed cells."""
        return cls(grid, frozenset(removed))

    def is_empty(self) -> bool:
        """True when the repair removed nothing (nothing to ship)."""
        return not self.removed

    def apply_to(self, region: GridRegion) -> GridRegion:
        """The region after this delta: membership minus the removed cells."""
        return region.subtract(self.removed)[0]

    def to_bitmap(self) -> WAHBitmap:
        """Removed cells as the same z-ordered WAH encoding regions use,
        so ``old.to_bitmap().difference(delta.to_bitmap())`` is exactly the
        repaired region's bitmap for direct-represented regions."""
        return GridRegion(self.grid, self.removed).to_bitmap()

    def encoded_bytes(self) -> int:
        """Bytes on the wire when shipping this delta to a client."""
        return self.to_bitmap().compressed_bytes()


def _structuring_element(grid: Grid, radius: float) -> np.ndarray:
    """The disk-offsets mask as a boolean array centred on the origin."""
    offsets = grid.disk_offsets(radius)
    reach_i = max(abs(di) for (di, dj) in offsets)
    reach_j = max(abs(dj) for (di, dj) in offsets)
    mask = np.zeros((2 * reach_i + 1, 2 * reach_j + 1), dtype=bool)
    for (di, dj) in offsets:
        mask[di + reach_i, dj + reach_j] = True
    return mask


def impact_from_safe(safe: SafeRegion, radius: float) -> ImpactRegion:
    """Dilate a safe region by the notification radius (Definition 2).

    A complement-represented safe region (GM) covers most of the grid, so
    its dilation is computed as a vectorised morphological dilation of the
    full boolean mask; the result stays in complement form.
    """
    grid = safe.grid
    if safe.complement:
        mask = np.ones((grid.n, grid.n), dtype=bool)
        for (i, j) in safe.cells:
            mask[i, j] = False
        dilated = ndimage.binary_dilation(mask, structure=_structuring_element(grid, radius))
        excluded = frozenset(
            (int(i), int(j)) for i, j in zip(*np.nonzero(~dilated))
        )
        return ImpactRegion(grid, excluded, complement=True)
    return ImpactRegion(grid, frozenset(grid.dilate(safe.cells, radius)), complement=False)
