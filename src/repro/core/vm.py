"""VM: the Voronoi-based safe-region baseline (Section 3.1, Figure 2a).

Voronoi diagrams serve continuous spatial queries over *static* datasets:
the safe region is the Voronoi cell of the subscriber's nearest matching
event, minus the forbidden disk of radius ``r`` around that event.  The
impact region is the same cell dilated by ``r`` — which, as the paper
observes, always hugs the densest spot (the area around the nearest
matching event), making VM pay heavily on the event-arrival channel.

The region is rendered on the grid conservatively:

* a cell must be *safe* (min distance to every matching event > r), which
  alone preserves the no-missed-notification guarantee;
* a cell must be dominated by the nearest event (its centre closer to the
  nearest event than to any other matching event), clipping the region to
  the Voronoi cell;
* cells are collected by a flood fill from the subscriber so the region
  stays connected and contains the subscriber.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Set

from scipy.spatial import cKDTree

from ..geometry import Cell
from .construction import ConstructionRequest, RegionPair, SafeRegionStrategy
from .regions import SafeRegion, impact_from_safe


class VoronoiMethod(SafeRegionStrategy):
    """The VM baseline."""

    name = "VM"

    def __init__(self, max_cells: Optional[int] = None) -> None:
        self.max_cells = max_cells

    def construct(self, request: ConstructionRequest) -> RegionPair:
        """Build VM's regions: the clipped Voronoi cell of the nearest event."""
        grid = request.grid
        field = request.matching_field
        events = field.all_points()
        cells_examined = 0

        if not events:
            # No matching event anywhere: the whole space is one Voronoi
            # "cell"; VM degenerates to the full safe space.
            safe = SafeRegion.whole_space(grid)
            return RegionPair(safe, impact_from_safe(safe, request.radius))

        tree = cKDTree([(e.x, e.y) for e in events])
        _, nearest_index = tree.query((request.location.x, request.location.y))
        nearest = events[int(nearest_index)]

        def dominated(cell: Cell) -> bool:
            # The cell centre lies in the Voronoi cell of ``nearest`` iff
            # its nearest matching event is ``nearest`` (distance ties ok).
            center = grid.cell_center(cell)
            best_distance, _ = tree.query((center.x, center.y))
            return center.distance_to(nearest) <= best_distance + 1e-9

        start = grid.cell_of(request.location)
        region: Set[Cell] = set()
        queue = deque([start])
        seen = {start}
        while queue:
            if self.max_cells is not None and len(region) >= self.max_cells:
                break
            cell = queue.popleft()
            cells_examined += 1
            if not field.is_cell_safe(cell, request.radius):
                continue
            if cell != start and not dominated(cell):
                continue
            region.add(cell)
            for neighbor in grid.neighbors(cell):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)

        safe = SafeRegion(grid, frozenset(region))
        return RegionPair(
            safe=safe,
            impact=impact_from_safe(safe, request.radius),
            cells_examined=cells_examined,
        )
