"""Core contribution: safe/impact regions, the cost model, and the four
construction strategies (VM, GM, iGM, idGM)."""

from .construction import ConstructionRequest, RegionPair, SafeRegionStrategy
from .cost_model import CostModel, RepairBudget, SystemStats
from .field import LazyBEQField, MatchingEventField, StaticMatchingField
from .gm import GridMethod
from .igm import IDGM, IGM, IncrementalGridMethod
from .regions import GridRegion, ImpactRegion, RegionDelta, SafeRegion, impact_from_safe
from .vectorized import (
    VectorizedIDGM,
    VectorizedIGM,
    VectorizedIncrementalGridMethod,
    vectorize_strategy,
)
from .vm import VoronoiMethod

__all__ = [
    "ConstructionRequest",
    "CostModel",
    "GridMethod",
    "GridRegion",
    "IDGM",
    "IGM",
    "ImpactRegion",
    "IncrementalGridMethod",
    "LazyBEQField",
    "MatchingEventField",
    "RegionDelta",
    "RegionPair",
    "RepairBudget",
    "SafeRegion",
    "SafeRegionStrategy",
    "StaticMatchingField",
    "SystemStats",
    "VectorizedIDGM",
    "VectorizedIGM",
    "VectorizedIncrementalGridMethod",
    "VoronoiMethod",
    "impact_from_safe",
    "vectorize_strategy",
]
