"""The safe-region construction interface shared by VM, GM, iGM and idGM.

A *construction request* bundles what every method needs: the subscriber's
reported location and velocity, the notification radius, the grid, the
matching-event field, and the system statistics.  A *region pair* is the
result: the safe region (shipped to the client) and its impact region
(kept in the server's impact index), plus the bookkeeping counters the
evaluation reports (cells examined, events scanned).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from ..geometry import Grid, Point
from .cost_model import SystemStats
from .field import MatchingEventField
from .regions import ImpactRegion, SafeRegion


@dataclass
class ConstructionRequest:
    """Everything a safe-region constructor needs for one subscriber."""

    location: Point
    velocity: Point  # metres per timestamp; the norm is the speed ``vs``
    radius: float
    grid: Grid
    matching_field: MatchingEventField
    stats: SystemStats

    @property
    def speed(self) -> float:
        """The scalar speed ``vs`` (metres per timestamp)."""
        return self.velocity.norm()


@dataclass
class RegionPair:
    """A freshly constructed safe region with its impact region."""

    safe: SafeRegion
    impact: ImpactRegion
    cells_examined: int = 0
    #: balance-ratio diagnostics from the incremental methods (Equation 6):
    #: the ``bm`` of the last cell the expansion accepted and of the first
    #: candidate it rejected for exceeding ``beta``.  At the stopping point
    #: these straddle the threshold (Lemmas 5-7); ``None`` for methods that
    #: do not evaluate ``bm`` (VM, GM) or when no cell hit that side.
    last_accepted_bm: Optional[float] = None
    first_rejected_bm: Optional[float] = None
    #: the matching-event count ``ne`` inside the impact region at build
    #: time (Equation 5's numerator input).  The repair path scales the
    #: build-time ``bm`` by the growth of this count to estimate balance
    #: drift without re-querying the matching field; ``None`` for methods
    #: that never counted it (VM, GM).
    matching_in_impact: Optional[int] = None
    #: the exact frontier pop order, recorded only when the strategy was
    #: built with ``record_visits=True``.  Diagnostics for the
    #: scalar-vs-vectorized differential suite, which asserts order
    #: equality, not just set equality; ``None`` otherwise.
    visit_order: Optional[tuple] = None


class SafeRegionStrategy(abc.ABC):
    """One of the four construction methods compared in Section 6."""

    #: short label used in benchmark tables ("VM", "GM", "iGM", "idGM")
    name: str = "?"

    @abc.abstractmethod
    def construct(self, request: ConstructionRequest) -> RegionPair:
        """Build the safe and impact regions for one subscriber."""
