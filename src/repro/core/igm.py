"""iGM and idGM: incremental grid-based safe-region construction.

Algorithm 1 of the paper: start from the subscriber's cell and expand over
adjacent cells, cheapest first, evaluating after each candidate whether
the balance ratio ``bm`` (Equation 6) would stay within the termination
threshold (1 at the optimum, Lemmas 5-7; Figure 9 sweeps it).  Safe and
impact regions grow *together*: accepting a cell dilates the impact region
incrementally by only the not-yet-covered cells within the notification
radius (Example 2), and the matching-event count ``ne`` is updated from
the per-cell counts of the matching field.

idGM (Section 3.5) generalises the expansion order with the
direction-aware score ``tau`` (Equation 8) blending a direction preference
``A(s, c) = cos(theta)`` (Equation 9) with the normalised distance
preference ``D(s, c)`` (Equation 10).

.. note::
   Equation 8 as printed (``tau = alpha*A + (1-alpha)*D``, expanded in
   increasing ``tau``) would visit cells *behind* the subscriber first,
   contradicting both the motivation and Figure 14(b).  We implement the
   evident intent with the order-equivalent score
   ``tau = alpha * (1 - A)/2 + (1 - alpha) * D``: smaller is better, cells
   along the motion vector and close to the subscriber come first, and
   ``alpha = 0`` degenerates to iGM's pure distance order exactly.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Set, Tuple

from ..geometry import Cell, interleave
from .construction import ConstructionRequest, RegionPair, SafeRegionStrategy
from .cost_model import CostModel
from .regions import ImpactRegion, SafeRegion


class IncrementalGridMethod(SafeRegionStrategy):
    """The iGM/idGM family; ``alpha`` selects the direction awareness.

    Parameters
    ----------
    alpha:
        Weight of the direction preference in the expansion order;
        0 is iGM, the paper's tuned idGM uses 0.5 (Figure 14b).
    beta:
        Termination threshold on ``bm``; 1 is optimal (Figure 9).
    max_cells:
        Optional cap on the safe-region size.  The paper lets the
        expansion run to the whole space when no matching event exerts
        pressure; pure-Python benches cap it to keep runs tractable
        (documented deviation, see DESIGN.md).
    record_visits:
        When True the returned :class:`RegionPair` carries the exact heap
        pop order in ``visit_order`` — the differential suite asserts the
        vectorized frontier visits cells in the same order, not just that
        it lands on the same sets.
    """

    name = "iGM"

    def __init__(
        self,
        alpha: float = 0.0,
        beta: float = 1.0,
        max_cells: Optional[int] = None,
        incremental_impact: bool = True,
        record_visits: bool = False,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1]: {alpha}")
        if beta <= 0:
            raise ValueError(f"beta must be positive: {beta}")
        self.alpha = alpha
        self.beta = beta
        self.max_cells = max_cells
        #: ablation switch for the Example 2 strip optimisation; with
        #: False every accepted cell rescans its full dilation disk
        self.incremental_impact = incremental_impact
        self.record_visits = record_visits

    # ------------------------------------------------------------------
    # Expansion order (Equations 8-10, see the module note)
    # ------------------------------------------------------------------
    def _priority(self, request: ConstructionRequest, cell: Cell, dist: float) -> float:
        d_max = math.hypot(request.grid.space.width, request.grid.space.height)
        distance_preference = dist / d_max if d_max > 0 else 0.0
        if self.alpha == 0.0:
            return distance_preference
        # Equation 9's cosine with the to-cell norm spelled as
        # sqrt(tx*tx + ty*ty): the composed form is what the vectorized
        # frontier can reproduce bit for bit (math.hypot is not).  The
        # velocity norm stays a per-request scalar shared by both paths.
        center = request.grid.cell_center(cell)
        tx = center.x - request.location.x
        ty = center.y - request.location.y
        denom = request.velocity.norm() * math.sqrt(tx * tx + ty * ty)
        if denom == 0.0:
            cosine = 0.0
        else:
            dot = request.velocity.x * tx + request.velocity.y * ty
            cosine = max(-1.0, min(1.0, dot / denom))
        direction_preference = (1.0 - cosine) / 2.0
        return self.alpha * direction_preference + (1.0 - self.alpha) * distance_preference

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def construct(self, request: ConstructionRequest) -> RegionPair:
        """Algorithm 1: grid expansion bounded by the balance ratio."""
        grid = request.grid
        field = request.matching_field
        model = CostModel(request.stats)
        radius = request.radius
        speed = request.speed

        start = grid.cell_of(request.location)
        start_dist = grid.min_distance_point_cell(request.location, start)

        # Heap entries are (priority, dist, z-order key, cell): equal-score
        # frontier ties break on the cell's Morton code, a spatial order
        # that is stable across the scalar and vectorized strategies (and
        # total — the z key is injective — so the pop sequence is unique
        # regardless of push order).
        heap: List[Tuple[float, float, int, Cell]] = []
        visited: Set[Cell] = {start}
        region: Set[Cell] = set()
        impact: Set[Cell] = set()
        matching_in_impact = 0
        cells_examined = 0
        last_accepted_bm: Optional[float] = None
        first_rejected_bm: Optional[float] = None
        visit_order: Optional[List[Cell]] = [] if self.record_visits else None

        heapq.heappush(
            heap,
            (self._priority(request, start, start_dist), start_dist, interleave(*start), start),
        )
        offsets = grid.disk_offsets(radius)
        strips = grid.dilation_strips(radius)

        while heap:
            if self.max_cells is not None and len(region) >= self.max_cells:
                break
            _, dist, _, cell = heapq.heappop(heap)
            cells_examined += 1
            if visit_order is not None:
                visit_order.append(cell)
            if not field.is_cell_safe(cell, radius):
                continue  # B[c'] is false: the cell stays outside (line 10)

            unvisited_adjacent = [
                neighbor for neighbor in grid.neighbors(cell) if neighbor not in visited
            ]
            # Equation 7: d(s, R + c') = min(H.top().dist, d(s, c'') over the
            # unvisited adjacent cells of c').  H.top() follows the heap's
            # own expansion order — for idGM that is the tau-ranked frontier,
            # which deliberately estimates the exit time along the expected
            # direction of motion rather than the worst-case rear boundary.
            adjacent_dists = [
                grid.min_distance_point_cell(request.location, neighbor)
                for neighbor in unvisited_adjacent
            ]
            candidates = list(adjacent_dists)
            if heap:
                candidates.append(heap[0][1])
            boundary_distance = min(candidates) if candidates else math.inf

            # Example 2: only the impact cells not yet covered are added.
            # When an already-accepted neighbour exists, the candidates
            # shrink from the full disk to the strip past that neighbour
            # (intersected over all accepted neighbours).
            i, j = cell
            candidate_offsets = None
            if self.incremental_impact:
                for direction, strip in strips.items():
                    if (i + direction[0], j + direction[1]) in region:
                        candidate_offsets = (
                            strip
                            if candidate_offsets is None
                            else candidate_offsets & strip
                        )
            if candidate_offsets is None:
                candidate_offsets = offsets
            new_impact = [
                (i + di, j + dj)
                for (di, dj) in candidate_offsets
                if grid.in_bounds((i + di, j + dj)) and (i + di, j + dj) not in impact
            ]
            candidate_ne = matching_in_impact + sum(
                field.count_in_cell(impact_cell) for impact_cell in new_impact
            )
            bm = model.balance(boundary_distance, speed, candidate_ne)
            if bm > self.beta and first_rejected_bm is None:
                first_rejected_bm = bm
            if bm <= self.beta:
                last_accepted_bm = bm
                region.add(cell)
                impact.update(new_impact)
                matching_in_impact = candidate_ne
                for neighbor, neighbor_dist in zip(unvisited_adjacent, adjacent_dists):
                    visited.add(neighbor)
                    heapq.heappush(
                        heap,
                        (
                            self._priority(request, neighbor, neighbor_dist),
                            neighbor_dist,
                            interleave(*neighbor),
                            neighbor,
                        ),
                    )

        safe = SafeRegion(grid, frozenset(region))
        return RegionPair(
            safe=safe,
            impact=ImpactRegion(grid, frozenset(impact)),
            cells_examined=cells_examined,
            last_accepted_bm=last_accepted_bm,
            first_rejected_bm=first_rejected_bm,
            matching_in_impact=matching_in_impact,
            visit_order=tuple(visit_order) if visit_order is not None else None,
        )


class IGM(IncrementalGridMethod):
    """iGM: distance-ordered incremental construction (Section 3.4)."""

    name = "iGM"

    def __init__(
        self,
        beta: float = 1.0,
        max_cells: Optional[int] = None,
        incremental_impact: bool = True,
        record_visits: bool = False,
    ) -> None:
        super().__init__(
            alpha=0.0,
            beta=beta,
            max_cells=max_cells,
            incremental_impact=incremental_impact,
            record_visits=record_visits,
        )


class IDGM(IncrementalGridMethod):
    """idGM: direction-aware incremental construction (Section 3.5)."""

    name = "idGM"

    def __init__(
        self,
        alpha: float = 0.5,
        beta: float = 1.0,
        max_cells: Optional[int] = None,
        incremental_impact: bool = True,
        record_visits: bool = False,
    ) -> None:
        super().__init__(
            alpha=alpha,
            beta=beta,
            max_cells=max_cells,
            incremental_impact=incremental_impact,
            record_visits=record_visits,
        )
