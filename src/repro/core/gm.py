"""GM: the grid-based safe-region baseline (Section 3.1, Figure 2b).

Grid-based safe regions come from spatial-alarm processing over *static*
datasets: the safe region is simply *every* cell farther than the
notification radius from every matching event — the whole space minus the
"forbidden" neighbourhoods of the matching events.  It maximises the
location-update channel (the subscriber almost never leaves), but its
impact region is essentially the whole space, so *every* new matching
event triggers communication — the failure mode that motivates the
paper's cost model.

Both regions are stored in complement form (the excluded cells), keeping
GM tractable even though its regions cover almost all of the grid.
"""

from __future__ import annotations

from .construction import ConstructionRequest, RegionPair, SafeRegionStrategy
from .regions import SafeRegion, impact_from_safe


class GridMethod(SafeRegionStrategy):
    """The GM baseline."""

    name = "GM"
    #: GM's regions depend only on the matching events, never on the
    #: subscriber's location — the server exploits this for region reuse.
    location_independent = True

    def construct(self, request: ConstructionRequest) -> RegionPair:
        """Build GM's regions: every safe cell, impact in complement form."""
        grid = request.grid
        radius = request.radius

        # Unsafe cells: within the radius of some matching event.  The
        # field collects them by dilating each event's location (through
        # the array dilation kernel for large corpora), so the cost scales
        # with the matching events, not with the grid area.
        unsafe = request.matching_field.unsafe_cells(radius)

        safe = SafeRegion(grid, unsafe, complement=True)
        # GM's safe region need not contain the subscriber: if the
        # subscriber's own cell is unsafe the region is simply not valid
        # for him and the client reports every timestamp, exactly like an
        # empty iGM region.
        return RegionPair(
            safe=safe,
            impact=impact_from_safe(safe, radius),
            cells_examined=len(unsafe),
        )
