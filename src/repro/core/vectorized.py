"""Vectorized iGM/idGM: array-form construction, byte-identical to scalar.

The scalar :class:`~repro.core.igm.IncrementalGridMethod` spends its time in
three places: dilating every discovered event over the disk of offsets (one
``Rect`` allocation and distance test per offset), probing per-cell event
counts through dict lookups, and re-deriving cell rectangles for frontier
distances.  This module keeps Algorithm 1's control flow — a heap-driven
nearest-first/τ frontier popped one cell at a time, because each acceptance
changes the state the next decision depends on — but moves every O(offsets)-
and O(events)-sized inner loop into numpy:

* the matching field is projected into a struct-of-arrays
  :class:`_FieldArrayView` (``unsafe`` boolean mask + per-cell ``counts``),
  maintained incrementally with one vectorized dilation pass per batch of
  newly discovered events (one pass per BEQ leaf probe in on-demand mode);
* frontier bookkeeping (visited / region / impact membership) lives in flat
  boolean arrays indexed ``i * n + j``;
* each acceptance applies the Example 2 strip offsets as array index
  arithmetic — bounds filter, impact-membership filter and the ``ne`` count
  are three elementwise operations instead of a Python loop.

The 8-cell neighbour ring stays scalar on purpose: numpy's per-call
overhead exceeds the loop cost below a few dozen elements, and the scalar
form reuses the exact arithmetic of ``Rect.min_distance_to_point``.

**Equivalence contract** (enforced by ``tests/test_vectorized_differential``
and the golden traces): every float compared or returned here is computed
by the same sequence of correctly-rounded IEEE-754 operations as the scalar
path — ``sqrt(dx*dx + dy*dy)`` distances, cell edges formed as
``x_min + (i + 1) * cell_width``, shared per-request scalars (``d_max``,
the velocity norm) taken from the same ``math`` calls.  Heap keys carry the
cell's Morton code, which is injective, so the pop order is the unique
ascending key order for both strategies.  Field coverage grows through
:meth:`MatchingEventField.ensure_cell_neighbourhood` once per pop — the
same covered-rectangle growth a scalar ``is_cell_safe`` performs — so
``events_scanned``/``leaves_scanned`` also match exactly.

The scalar classes remain the *oracle*: they are the reference semantics
the paper's lemmas were checked against, and the differential suite runs
them side by side with this module on every randomized workload.
"""

from __future__ import annotations

import heapq
import math
import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..geometry import Cell, Grid, interleave
from .construction import ConstructionRequest, RegionPair
from .cost_model import CostModel
from .field import MatchingEventField
from .igm import IncrementalGridMethod
from .regions import ImpactRegion, SafeRegion


class _FieldArrayView:
    """Struct-of-arrays projection of a matching field at one radius.

    ``unsafe[i, j]`` is True when cell ``(i, j)`` is within ``radius``
    (closed) of some known matching event; ``counts[i, j]`` is the
    per-cell event count phi.  The view consumes the field's append-only
    ``known_points()`` list through a cursor, so a field reused across
    constructions (repair mode) only pays for events discovered since the
    last sync — mirroring the scalar field's incremental ``_admit``.
    """

    __slots__ = ("field", "grid", "radius", "unsafe", "counts", "_cursor")

    def __init__(self, field: MatchingEventField, grid: Grid, radius: float) -> None:
        self.field = field
        self.grid = grid
        self.radius = radius
        self.unsafe = np.zeros((grid.n, grid.n), dtype=bool)
        self.counts = np.zeros((grid.n, grid.n), dtype=np.int32)
        self._cursor = 0

    def ensure_cell(self, cell: Cell) -> None:
        """Make the arrays authoritative for ``cell`` and its neighbourhood."""
        self.field.ensure_cell_neighbourhood(cell, self.radius)
        points = self.field.known_points()
        if len(points) > self._cursor:
            self._sync(points)

    def _sync(self, points) -> None:
        fresh = points[self._cursor :]
        self._cursor = len(points)
        count = len(fresh)
        xs = np.fromiter((p.x for p in fresh), dtype=np.float64, count=count)
        ys = np.fromiter((p.y for p in fresh), dtype=np.float64, count=count)
        self.grid.dilate_points_mask(xs, ys, self.radius, out=self.unsafe)
        ci, cj = self.grid.cells_of_array(xs, ys)
        np.add.at(self.counts, (ci, cj), 1)


class VectorizedIncrementalGridMethod(IncrementalGridMethod):
    """Array-backed Algorithm 1 returning byte-identical :class:`RegionPair`s.

    Accepts the same parameters as the scalar class.  Not thread-safe
    across concurrent ``construct`` calls on the *same instance* (the view
    cache is unsynchronised); sharded fleets already build one strategy
    per shard via the factory form.
    """

    name = "iGM-vec"

    def __init__(
        self,
        alpha: float = 0.0,
        beta: float = 1.0,
        max_cells: Optional[int] = None,
        incremental_impact: bool = True,
        record_visits: bool = False,
    ) -> None:
        super().__init__(
            alpha=alpha,
            beta=beta,
            max_cells=max_cells,
            incremental_impact=incremental_impact,
            record_visits=record_visits,
        )
        # field -> {radius: view}; weak keys let retired fields (staleness,
        # resync, fresh per-construct fields) drop their arrays with them.
        self._views: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    # ------------------------------------------------------------------
    # Field views
    # ------------------------------------------------------------------
    def _view(self, field: MatchingEventField, grid: Grid, radius: float) -> _FieldArrayView:
        per_field: Optional[Dict[float, _FieldArrayView]] = self._views.get(field)
        if per_field is None:
            per_field = {}
            self._views[field] = per_field
        view = per_field.get(radius)
        if view is None or view.grid is not grid:
            view = _FieldArrayView(field, grid, radius)
            per_field[radius] = view
        return view

    # ------------------------------------------------------------------
    # Algorithm 1, array form
    # ------------------------------------------------------------------
    def construct(self, request: ConstructionRequest) -> RegionPair:
        """Grid expansion bounded by the balance ratio, SoA state."""
        grid = request.grid
        model = CostModel(request.stats)
        radius = request.radius
        speed = request.speed
        n = grid.n

        view = self._view(request.matching_field, grid, radius)
        unsafe = view.unsafe
        counts_flat = view.counts.reshape(-1)  # row-major: index i * n + j

        x0, y0 = grid.space.x_min, grid.space.y_min
        cw, ch = grid.cell_width, grid.cell_height
        px, py = request.location.x, request.location.y
        d_max = math.hypot(grid.space.width, grid.space.height)
        alpha = self.alpha
        if alpha != 0.0:
            vx, vy = request.velocity.x, request.velocity.y
            vnorm = request.velocity.norm()

        start = grid.cell_of(request.location)
        start_dist = grid.min_distance_point_cell(request.location, start)

        visited = np.zeros((n, n), dtype=bool)
        in_region = np.zeros(n * n, dtype=bool)
        in_impact = np.zeros(n * n, dtype=bool)
        visited[start] = True

        heap: List[Tuple[float, float, int, Cell]] = [
            (self._priority(request, start, start_dist), start_dist, interleave(*start), start)
        ]
        off_i, off_j = grid.disk_offset_arrays(radius)
        strip_masks = grid.strip_offset_masks(radius) if self.incremental_impact else None

        region_cells: List[Cell] = []
        matching_in_impact = 0
        cells_examined = 0
        last_accepted_bm: Optional[float] = None
        first_rejected_bm: Optional[float] = None
        visit_order: Optional[List[Cell]] = [] if self.record_visits else None

        while heap:
            if self.max_cells is not None and len(region_cells) >= self.max_cells:
                break
            _, dist, _, cell = heapq.heappop(heap)
            cells_examined += 1
            if visit_order is not None:
                visit_order.append(cell)
            view.ensure_cell(cell)
            i, j = cell
            if unsafe[i, j]:
                continue  # B[c'] is false: the cell stays outside (line 10)

            # Unvisited 8-ring with Rect.min_distance_to_point arithmetic
            # inlined (scalar on purpose — see the module docstring).
            neighbors: List[Tuple[int, int, float]] = []
            boundary = math.inf
            for di in (-1, 0, 1):
                for dj in (-1, 0, 1):
                    if di == 0 and dj == 0:
                        continue
                    ni, nj = i + di, j + dj
                    if 0 <= ni < n and 0 <= nj < n and not visited[ni, nj]:
                        dx = max(x0 + ni * cw - px, 0.0, px - (x0 + (ni + 1) * cw))
                        dy = max(y0 + nj * ch - py, 0.0, py - (y0 + (nj + 1) * ch))
                        ndist = math.sqrt(dx * dx + dy * dy)
                        neighbors.append((ni, nj, ndist))
                        if ndist < boundary:
                            boundary = ndist
            # Equation 7: the heap top competes with the adjacent cells.
            if heap and heap[0][1] < boundary:
                boundary = heap[0][1]

            # Example 2 strips as mask intersections over the offset arrays.
            if strip_masks is not None:
                omask: Optional[np.ndarray] = None
                for (di, dj), smask in strip_masks.items():
                    ri, rj = i + di, j + dj
                    if 0 <= ri < n and 0 <= rj < n and in_region[ri * n + rj]:
                        omask = smask if omask is None else omask & smask
                if omask is None:
                    coff_i, coff_j = off_i, off_j
                else:
                    coff_i, coff_j = off_i[omask], off_j[omask]
            else:
                coff_i, coff_j = off_i, off_j
            ci = coff_i + i
            cj = coff_j + j
            inb = (ci >= 0) & (ci < n) & (cj >= 0) & (cj < n)
            idx = ci[inb] * n + cj[inb]
            new_idx = idx[~in_impact[idx]]
            candidate_ne = matching_in_impact + int(counts_flat[new_idx].sum())

            bm = model.balance(boundary, speed, candidate_ne)
            if bm > self.beta and first_rejected_bm is None:
                first_rejected_bm = bm
            if bm <= self.beta:
                last_accepted_bm = bm
                region_cells.append(cell)
                in_region[i * n + j] = True
                in_impact[new_idx] = True
                matching_in_impact = candidate_ne
                for ni, nj, ndist in neighbors:
                    visited[ni, nj] = True
                    distp = ndist / d_max if d_max > 0 else 0.0
                    if alpha == 0.0:
                        prio = distp
                    else:
                        tx = x0 + (ni + 0.5) * cw - px
                        ty = y0 + (nj + 0.5) * ch - py
                        denom = vnorm * math.sqrt(tx * tx + ty * ty)
                        if denom == 0.0:
                            cosine = 0.0
                        else:
                            cosine = max(-1.0, min(1.0, (vx * tx + vy * ty) / denom))
                        prio = alpha * ((1.0 - cosine) / 2.0) + (1.0 - alpha) * distp
                    heapq.heappush(heap, (prio, ndist, interleave(ni, nj), (ni, nj)))

        ii, jj = np.nonzero(in_impact.reshape(n, n))
        return RegionPair(
            safe=SafeRegion(grid, frozenset(region_cells)),
            impact=ImpactRegion(grid, frozenset(zip(ii.tolist(), jj.tolist()))),
            cells_examined=cells_examined,
            last_accepted_bm=last_accepted_bm,
            first_rejected_bm=first_rejected_bm,
            matching_in_impact=matching_in_impact,
            visit_order=tuple(visit_order) if visit_order is not None else None,
        )


class VectorizedIGM(VectorizedIncrementalGridMethod):
    """iGM with the array-backed core; drop-in for :class:`~repro.core.IGM`."""

    name = "iGM-vec"

    def __init__(
        self,
        beta: float = 1.0,
        max_cells: Optional[int] = None,
        incremental_impact: bool = True,
        record_visits: bool = False,
    ) -> None:
        super().__init__(
            alpha=0.0,
            beta=beta,
            max_cells=max_cells,
            incremental_impact=incremental_impact,
            record_visits=record_visits,
        )


class VectorizedIDGM(VectorizedIncrementalGridMethod):
    """idGM with the array-backed core; drop-in for :class:`~repro.core.IDGM`."""

    name = "idGM-vec"

    def __init__(
        self,
        alpha: float = 0.5,
        beta: float = 1.0,
        max_cells: Optional[int] = None,
        incremental_impact: bool = True,
        record_visits: bool = False,
    ) -> None:
        super().__init__(
            alpha=alpha,
            beta=beta,
            max_cells=max_cells,
            incremental_impact=incremental_impact,
            record_visits=record_visits,
        )


def vectorize_strategy(strategy):
    """The vectorized twin of an incremental strategy (idempotent).

    ``ServerConfig(vectorized_construction=True)`` routes every
    construction through here; non-incremental strategies (VM, GM) have no
    frontier to vectorize and are returned unchanged.
    """
    if isinstance(strategy, VectorizedIncrementalGridMethod):
        return strategy
    if isinstance(strategy, IncrementalGridMethod):
        twin = VectorizedIncrementalGridMethod(
            alpha=strategy.alpha,
            beta=strategy.beta,
            max_cells=strategy.max_cells,
            incremental_impact=strategy.incremental_impact,
            record_visits=strategy.record_visits,
        )
        twin.name = f"{strategy.name}-vec"
        return twin
    return strategy
