"""Elaps — a location-aware pub/sub system for continuous moving queries
over dynamic event streams.

Reproduction of Guo, Zhang, Li, Tan, Bao (SIGMOD 2015).  The public API
re-exports the pieces a downstream user needs:

* expressions: :class:`Predicate`, :class:`BooleanExpression`,
  :class:`Event`, :class:`Subscription`;
* geometry: :class:`Point`, :class:`Rect`, :class:`Circle`, :class:`Grid`;
* indexes: :class:`BEQTree` (the paper's index) plus the baselines;
* safe-region strategies: :class:`IGM`, :class:`IDGM`,
  :class:`VoronoiMethod`, :class:`GridMethod`;
* the system: :class:`ElapsServer`, :class:`ServerConfig`,
  :class:`ShardedElapsServer`, :class:`Simulation`,
  :class:`ExperimentConfig`, :func:`run_experiment`.

Quickstart::

    from repro import (BEQTree, BooleanExpression, ElapsServer, Grid, IGM,
                       Operator, Point, Predicate, Rect, ServerConfig,
                       Subscription)

    space = Rect(0, 0, 50_000, 50_000)
    server = ElapsServer(Grid(120, space), IGM(max_cells=2000),
                         ServerConfig(),
                         event_index=BEQTree(space, emax=256))
    interest = BooleanExpression([
        Predicate("name", Operator.EQ, "shoes"),
        Predicate("price", Operator.LT, 1000),
    ])
    sub = Subscription(1, interest, radius=2_000)
    matches, safe_region = server.subscribe(sub, Point(25_000, 25_000),
                                            Point(60, 0), now=0)
"""

from .bitmap import WAHBitmap
from .core import (
    ConstructionRequest,
    CostModel,
    GridMethod,
    IDGM,
    IGM,
    ImpactRegion,
    IncrementalGridMethod,
    LazyBEQField,
    RegionPair,
    SafeRegion,
    SafeRegionStrategy,
    StaticMatchingField,
    SystemStats,
    VoronoiMethod,
    impact_from_safe,
)
from .datasets import (
    FoursquareLikeConfig,
    FoursquareLikeGenerator,
    TwitterLikeConfig,
    TwitterLikeGenerator,
    Vocabulary,
)
from .expressions import (
    BooleanExpression,
    DnfExpression,
    Event,
    Operator,
    Predicate,
    Subscription,
)
from .geometry import Cell, Circle, Grid, Point, Rect
from .index import (
    BEQTree,
    BETreeIndex,
    EventIndex,
    ImpactRegionIndex,
    KIndex,
    KSubscriptionIndex,
    OpIndex,
    QuadTree,
    SubscriptionIndex,
)
from .system import (
    CallbackTransport,
    ClientConfig,
    CommunicationStats,
    ElapsNetworkClient,
    ElapsServer,
    ElapsTCPServer,
    ExperimentConfig,
    NetworkConfig,
    Notification,
    ReconnectPolicy,
    ResilientElapsClient,
    SerialExecutor,
    ServerConfig,
    ShardedElapsServer,
    Simulation,
    SimulationResult,
    ThreadedExecutor,
    Transport,
    build_simulation,
    run_experiment,
)
from .trajectories import (
    RoadNetwork,
    SyntheticTrajectoryGenerator,
    TaxiTrajectoryGenerator,
    Trajectory,
)

__version__ = "1.0.0"

__all__ = [
    "BEQTree",
    "BETreeIndex",
    "BooleanExpression",
    "CallbackTransport",
    "Cell",
    "Circle",
    "ClientConfig",
    "CommunicationStats",
    "ConstructionRequest",
    "CostModel",
    "DnfExpression",
    "ElapsNetworkClient",
    "ElapsServer",
    "ElapsTCPServer",
    "Event",
    "EventIndex",
    "ExperimentConfig",
    "FoursquareLikeConfig",
    "FoursquareLikeGenerator",
    "Grid",
    "GridMethod",
    "IDGM",
    "IGM",
    "ImpactRegion",
    "ImpactRegionIndex",
    "IncrementalGridMethod",
    "KIndex",
    "KSubscriptionIndex",
    "LazyBEQField",
    "NetworkConfig",
    "Notification",
    "OpIndex",
    "Operator",
    "Point",
    "Predicate",
    "QuadTree",
    "ReconnectPolicy",
    "Rect",
    "RegionPair",
    "ResilientElapsClient",
    "RoadNetwork",
    "SafeRegion",
    "SafeRegionStrategy",
    "SerialExecutor",
    "ServerConfig",
    "ShardedElapsServer",
    "Simulation",
    "SimulationResult",
    "StaticMatchingField",
    "SubscriptionIndex",
    "Subscription",
    "SyntheticTrajectoryGenerator",
    "SystemStats",
    "TaxiTrajectoryGenerator",
    "ThreadedExecutor",
    "Trajectory",
    "Transport",
    "TwitterLikeConfig",
    "TwitterLikeGenerator",
    "Vocabulary",
    "VoronoiMethod",
    "WAHBitmap",
    "build_simulation",
    "impact_from_safe",
    "run_experiment",
]
