"""Brinkhoff-style synthetic trajectories: constant-speed network walkers.

The paper generates 10,000 synthetic trajectories of 1000 timestamps with
Brinkhoff's network-based generator; Section 6.2.2 notes their speed is
constant, in contrast with the taxi traces.  The walkers here route
between random road-network nodes along shortest paths and advance a
fixed ``speed`` metres per timestamp, picking a fresh destination on
arrival.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from .motion import Trajectory, walk_polyline
from .road import RoadNetwork


class SyntheticTrajectoryGenerator:
    """Constant-speed random-destination walkers on a road network.

    ``speed_schedule`` (timestamp -> metres per timestamp) makes the walker
    speed time-varying — the dynamic-``vs`` environment of Figure 10(b).
    Without it the speed is the Brinkhoff-style constant.
    """

    def __init__(
        self,
        network: RoadNetwork,
        speed: float,
        seed: int = 0,
        speed_schedule: Optional[Callable[[int], float]] = None,
    ) -> None:
        if speed < 0:
            raise ValueError(f"negative speed: {speed}")
        self.network = network
        self.speed = speed
        self.seed = seed
        self.speed_schedule = speed_schedule

    def _speed_at(self, timestamp: int) -> float:
        if self.speed_schedule is not None:
            return max(self.speed_schedule(timestamp), 0.0)
        return self.speed

    def trajectory(self, walker_id: int, timestamps: int) -> Trajectory:
        """One walker's trajectory over ``timestamps`` steps."""
        rng = random.Random(f"{self.seed}-walker-{walker_id}")
        node = self.network.random_node(rng)
        positions = [self.network.position_of(node)]
        while len(positions) < timestamps:
            destination = self.network.random_node(rng)
            if destination == node:
                continue
            waypoints = self.network.route(node, destination)
            # Travel the whole leg, then continue from the destination;
            # trim to the requested horizon at the end.
            leg_length = sum(
                waypoints[k].distance_to(waypoints[k + 1]) for k in range(len(waypoints) - 1)
            )
            steps: List[float] = []
            travelled = 0.0
            while travelled < leg_length and len(positions) + len(steps) < timestamps:
                step = self._speed_at(len(positions) + len(steps) - 1)
                if step <= 0.0:
                    steps.append(0.0)
                    continue
                steps.append(step)
                travelled += step
            if not steps:
                steps = [self._speed_at(len(positions) - 1)]
            leg = walk_polyline(waypoints, steps)
            positions.extend(leg[1:])
            node = destination
        return Trajectory(positions[:timestamps])

    def trajectories(self, count: int, timestamps: int) -> List[Trajectory]:
        """One trajectory per walker id 0..count-1."""
        return [self.trajectory(i, timestamps) for i in range(count)]
