"""Trajectories: one position per timestamp.

The paper samples GPS positions every timestamp (5 seconds) over 1000
timestamps.  A trajectory here is exactly that: a sequence of points, one
per timestamp, with finite-difference velocities (metres per timestamp).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..geometry import Point


@dataclass(frozen=True)
class Trajectory:
    """An immutable per-timestamp position sequence."""

    positions: Sequence[Point]

    def __post_init__(self) -> None:
        if not self.positions:
            raise ValueError("a trajectory needs at least one position")
        object.__setattr__(self, "positions", tuple(self.positions))

    def __len__(self) -> int:
        return len(self.positions)

    def position_at(self, timestamp: int) -> Point:
        """Position at ``timestamp``; parked at the end once finished."""
        if timestamp < 0:
            raise ValueError(f"negative timestamp: {timestamp}")
        if timestamp >= len(self.positions):
            return self.positions[-1]
        return self.positions[timestamp]

    def velocity_at(self, timestamp: int) -> Point:
        """Velocity (m/tm) over the step starting at ``timestamp``."""
        here = self.position_at(timestamp)
        next_pos = self.position_at(timestamp + 1)
        return next_pos - here

    def average_speed(self) -> float:
        """Mean per-step displacement in metres per timestamp."""
        if len(self.positions) < 2:
            return 0.0
        total = sum(
            self.positions[i].distance_to(self.positions[i + 1])
            for i in range(len(self.positions) - 1)
        )
        return total / (len(self.positions) - 1)


def walk_polyline(waypoints: Sequence[Point], step_lengths: Sequence[float]) -> List[Point]:
    """Sample a polyline at the given per-step travel distances.

    Returns one position per step (``len(step_lengths) + 1`` points,
    starting at the first waypoint).  When the polyline is exhausted the
    walker parks at its end.
    """
    if not waypoints:
        raise ValueError("empty polyline")
    positions = [waypoints[0]]
    segment = 0
    offset = 0.0  # distance already travelled along the current segment
    current = waypoints[0]
    for step in step_lengths:
        remaining = step
        while remaining > 0 and segment < len(waypoints) - 1:
            seg_start, seg_end = waypoints[segment], waypoints[segment + 1]
            seg_len = seg_start.distance_to(seg_end)
            available = seg_len - offset
            if remaining < available:
                offset += remaining
                remaining = 0.0
            else:
                remaining -= available
                segment += 1
                offset = 0.0
        if segment >= len(waypoints) - 1:
            current = waypoints[-1]
        else:
            seg_start, seg_end = waypoints[segment], waypoints[segment + 1]
            seg_len = seg_start.distance_to(seg_end)
            fraction = offset / seg_len if seg_len > 0 else 0.0
            current = seg_start + (seg_end - seg_start).scaled(fraction)
        positions.append(current)
    return positions
