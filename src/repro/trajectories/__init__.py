"""Movement substrate: road network, synthetic (Brinkhoff-style) and
taxi-style trajectory generators."""

from .motion import Trajectory, walk_polyline
from .road import RoadNetwork
from .synthetic import SyntheticTrajectoryGenerator
from .taxi import TaxiTrajectoryGenerator

__all__ = [
    "RoadNetwork",
    "SyntheticTrajectoryGenerator",
    "TaxiTrajectoryGenerator",
    "Trajectory",
    "walk_polyline",
]
