"""Taxi-style trajectories: variable-speed, stop-and-go network walkers.

The paper's second trajectory corpus is GPS probes of Singapore taxis,
whose two distinguishing properties it calls out explicitly (Section
6.2.2): speeds vary with road traffic, and the moving behaviour is hard
to predict.  The simulator reproduces both:

* per-edge **congestion factors** scale the free-flow speed on every road
  segment, plus multiplicative per-step noise (traffic waves);
* taxis **dwell** at their destination (passenger pickup/drop-off) for a
  random number of timestamps, and occasionally stop mid-route (red
  lights, pickups), producing zero-speed stretches;
* destinations are random, so direction changes are frequent — the
  property that separates idGM's gains on synthetic vs taxi data.
"""

from __future__ import annotations

import random
from typing import List

from ..geometry import Point
from .motion import Trajectory, walk_polyline
from .road import RoadNetwork


class TaxiTrajectoryGenerator:
    """Stochastic-speed walkers with stops, on a road network."""

    def __init__(
        self,
        network: RoadNetwork,
        base_speed: float,
        seed: int = 0,
        stop_probability: float = 0.05,
        max_dwell: int = 8,
    ) -> None:
        if base_speed < 0:
            raise ValueError(f"negative speed: {base_speed}")
        if not 0.0 <= stop_probability < 1.0:
            raise ValueError(f"stop probability must be in [0, 1): {stop_probability}")
        self.network = network
        self.base_speed = base_speed
        self.seed = seed
        self.stop_probability = stop_probability
        self.max_dwell = max_dwell

    def trajectory(self, taxi_id: int, timestamps: int) -> Trajectory:
        """One taxi's trajectory over ``timestamps`` steps."""
        rng = random.Random(f"{self.seed}-taxi-{taxi_id}")
        node = self.network.random_node(rng)
        positions: List[Point] = [self.network.position_of(node)]
        while len(positions) < timestamps:
            destination = self.network.random_node(rng)
            if destination == node:
                continue
            waypoints = self.network.route(node, destination)
            congestion = self.network.congestion_along(node, destination)
            mean_congestion = sum(congestion) / len(congestion) if congestion else 1.0
            leg_length = sum(
                waypoints[k].distance_to(waypoints[k + 1]) for k in range(len(waypoints) - 1)
            )
            # Per-step speeds: congested free-flow speed with traffic noise
            # and occasional full stops.
            steps: List[float] = []
            travelled = 0.0
            while travelled < leg_length and len(positions) + len(steps) < timestamps:
                if rng.random() < self.stop_probability:
                    steps.append(0.0)
                    continue
                speed = self.base_speed * mean_congestion * rng.uniform(0.5, 1.5)
                steps.append(speed)
                travelled += speed
            leg = walk_polyline(waypoints, steps)
            positions.extend(leg[1:])
            # Dwell at the destination: passenger exchange.
            dwell = rng.randint(0, self.max_dwell)
            positions.extend([positions[-1]] * dwell)
            node = destination
        return Trajectory(positions[:timestamps])

    def trajectories(self, count: int, timestamps: int) -> List[Trajectory]:
        """One trajectory per taxi id 0..count-1."""
        return [self.trajectory(i, timestamps) for i in range(count)]
