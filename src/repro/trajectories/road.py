"""A synthetic road network for network-constrained movement.

Brinkhoff's generator (used for the paper's synthetic trajectories) moves
objects along a road network; the Singapore taxi traces are likewise
network-bound.  This module builds a perturbed grid road graph over the
simulation space with :mod:`networkx`, plus shortest-path routing between
random nodes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import networkx as nx

from ..geometry import Point, Rect


class RoadNetwork:
    """A connected planar road graph with geometric edge lengths."""

    def __init__(self, space: Rect, grid_size: int = 14, jitter: float = 0.3, seed: int = 0) -> None:
        if grid_size < 2:
            raise ValueError(f"grid_size must be at least 2: {grid_size}")
        self.space = space
        rng = random.Random(seed)
        self.graph = nx.Graph()
        self._positions: Dict[Tuple[int, int], Point] = {}
        step_x = space.width / (grid_size - 1)
        step_y = space.height / (grid_size - 1)
        max_jitter_x = jitter * step_x
        max_jitter_y = jitter * step_y
        for i in range(grid_size):
            for j in range(grid_size):
                x = space.x_min + i * step_x + rng.uniform(-max_jitter_x, max_jitter_x)
                y = space.y_min + j * step_y + rng.uniform(-max_jitter_y, max_jitter_y)
                x = min(max(x, space.x_min), space.x_max)
                y = min(max(y, space.y_min), space.y_max)
                node = (i, j)
                self._positions[node] = Point(x, y)
                self.graph.add_node(node)
        for i in range(grid_size):
            for j in range(grid_size):
                for neighbor in ((i + 1, j), (i, j + 1)):
                    if neighbor in self._positions:
                        length = self._positions[(i, j)].distance_to(self._positions[neighbor])
                        # Congestion factor: how much slower than free flow
                        # traffic moves on this road (taxi generator input).
                        congestion = rng.uniform(0.4, 1.0)
                        self.graph.add_edge(
                            (i, j), neighbor, length=length, congestion=congestion
                        )

    def position_of(self, node: Tuple[int, int]) -> Point:
        """The planar position of a road-network node."""
        return self._positions[node]

    def random_node(self, rng: random.Random) -> Tuple[int, int]:
        """A uniformly random node (deterministic under the rng)."""
        nodes = sorted(self.graph.nodes)
        return nodes[rng.randrange(len(nodes))]

    def route(self, origin: Tuple[int, int], destination: Tuple[int, int]) -> List[Point]:
        """Shortest-path waypoints (by length) from origin to destination."""
        nodes = nx.shortest_path(self.graph, origin, destination, weight="length")
        return [self._positions[node] for node in nodes]

    def congestion_along(self, origin: Tuple[int, int], destination: Tuple[int, int]) -> List[float]:
        """Per-edge congestion factors along the shortest path."""
        nodes = nx.shortest_path(self.graph, origin, destination, weight="length")
        return [
            self.graph.edges[nodes[k], nodes[k + 1]]["congestion"]
            for k in range(len(nodes) - 1)
        ]
