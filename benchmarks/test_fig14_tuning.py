"""Figure 14 (Appendix D.1): parameter tuning for iGM and idGM.

14a — grid resolution N: finer grids approximate the optimal safe region
better (less communication) but cost more construction time; the paper
picks N = 600 as the knee.  Scaled here to N in 60..180.

14b — direction weight alpha for idGM on synthetic vs taxi trajectories:
direction awareness helps up to a point; alpha ~ 1 backfires because the
region collapses onto the predicted direction.
"""

from __future__ import annotations

from config import DEFAULTS, FAST, format_table, run_strategy

N_SWEEP = (60, 90, 120, 180) if not FAST else (60, 120)
ALPHA_SWEEP = (0.0, 0.25, 0.5, 0.75, 1.0)
MOVEMENTS = ("synthetic", "taxi")


def _run_n_sweep():
    rows = []
    for n in N_SWEEP:
        row = run_strategy(DEFAULTS.with_(grid_n=n), "iGM")
        row["grid_n"] = n
        row["construction_ms"] = (
            row["server_seconds"] * 1000 / max(row["constructions"], 1)
        )
        rows.append(row)
    return rows


def _run_alpha_sweep():
    rows = []
    for movement in MOVEMENTS:
        for alpha in ALPHA_SWEEP:
            row = run_strategy(
                DEFAULTS.with_(movement=movement), "idGM", alpha=alpha
            )
            row["movement"] = movement
            row["alpha"] = alpha
            rows.append(row)
    return rows


def test_fig14a_grid_resolution(benchmark, report):
    rows = benchmark.pedantic(_run_n_sweep, rounds=1, iterations=1)
    report(
        "fig14a",
        format_table(
            rows,
            ("grid_n", "total", "constructions", "construction_ms"),
            "Figure 14a (grid resolution N: communication vs construction time)",
        ),
    )
    by = {r["grid_n"]: r for r in rows}
    # a finer grid costs more construction time per region
    assert by[N_SWEEP[-1]]["construction_ms"] > by[N_SWEEP[0]]["construction_ms"]
    # and does not hurt communication (coarse grids over-approximate)
    assert by[N_SWEEP[-1]]["total"] <= by[N_SWEEP[0]]["total"] * 1.5


def test_fig14b_direction_weight(benchmark, report):
    rows = benchmark.pedantic(_run_alpha_sweep, rounds=1, iterations=1)
    report(
        "fig14b",
        format_table(
            rows,
            ("movement", "alpha", "location_update", "event_arrival", "total"),
            "Figure 14b (idGM direction weight alpha)",
        ),
    )
    for movement in MOVEMENTS:
        series = {r["alpha"]: r["total"] for r in rows if r["movement"] == movement}
        # alpha = 1 (blind faith in the current direction) is never the best
        assert series[1.0] >= min(series.values())
