"""Ablations of the design choices DESIGN.md calls out.

1. **Impact region on/off** — without the impact region, *every*
   be-matching arrival pings the subscriber; the impact test is what
   keeps the event-arrival channel small.
2. **Example 2 strip expansion on/off** — the incremental impact update
   must change construction time only, never the regions (equivalence is
   unit-tested; here the speed effect is measured).
"""

from __future__ import annotations

from config import DEFAULTS, format_table, run_strategy


def _impact_onoff():
    rows = []
    for label, flag in (("with impact region", True), ("without impact region", False)):
        row = run_strategy(DEFAULTS, "iGM", use_impact_region=flag)
        row["variant"] = label
        rows.append(row)
    return rows


def _strips_onoff():
    rows = []
    for label, flag in (("Example 2 strips", True), ("naive full-disk rescan", False)):
        row = run_strategy(DEFAULTS, "iGM", incremental_impact=flag)
        row["variant"] = label
        row["server_ms"] = row["server_seconds"] * 1000
        rows.append(row)
    return rows


def test_ablation_impact_region(benchmark, report):
    rows = benchmark.pedantic(_impact_onoff, rounds=1, iterations=1)
    report(
        "ablation_impact",
        format_table(
            rows,
            ("variant", "location_update", "event_arrival", "total"),
            "Ablation: impact region filtering of event arrivals",
        ),
    )
    with_impact, without_impact = rows
    # dropping the impact region multiplies event-arrival communication
    assert without_impact["event_arrival"] > 2.0 * with_impact["event_arrival"]
    # and never helps the total
    assert without_impact["total"] >= with_impact["total"]


def test_ablation_incremental_impact(benchmark, report):
    rows = benchmark.pedantic(_strips_onoff, rounds=1, iterations=1)
    report(
        "ablation_strips",
        format_table(
            rows,
            ("variant", "total", "constructions", "server_ms"),
            "Ablation: Example 2 incremental impact expansion",
        ),
    )
    strips, naive = rows
    # identical communication behaviour...
    assert strips["total"] == naive["total"]
    assert strips["constructions"] == naive["constructions"]
    # ...with the strips at least as fast (the point of Example 2)
    assert strips["server_ms"] <= naive["server_ms"] * 1.1
