"""Figure 10: adaptability of the cost model under dynamic conditions.

The event arrival rate (10a) or the subscriber speed (10b) cycles
0 -> peak -> 0 through the run.  iGM/idGM estimate the changing
parameters from their own statistics; the "-opi" oracles are given the
true parameters and refresh every safe region for free at each step.
The paper's claim: the estimating methods land close to their oracles,
and far below VM/GM.
"""

from __future__ import annotations

from config import DEFAULTS, FAST, format_table, run_strategy

PEAK_RATE = 40.0
PEAK_SPEED = 100.0
PLATEAU = 20  # timestamps per step of the cycle
DATASETS = ("twitter",) if FAST else ("twitter", "foursquare")


def _cycle(t: int, peak: float) -> float:
    """0 -> peak -> 0 staircase, repeating (piecewise constant)."""
    phase = (t // PLATEAU) % 4
    return (0.0, peak / 2, peak, peak / 2)[phase]


def _variants(config, schedule_kw):
    rows = []
    for name, strategy, extra in (
        ("VM", "VM", {}),
        ("GM", "GM", {}),
        ("iGM", "iGM", {}),
        ("idGM", "idGM", {}),
        ("iGM-opi", "iGM", {"oracle_rebuild": True}),
        ("idGM-opi", "idGM", {"oracle_rebuild": True}),
    ):
        row = run_strategy(config, strategy, **schedule_kw, **extra)
        row["variant"] = name
        rows.append(row)
    return rows


def _run_dynamic_rate():
    rows = []
    for dataset in DATASETS:
        config = DEFAULTS.with_(dataset=dataset, event_rate=PEAK_RATE / 2)
        for row in _variants(
            config, {"rate_schedule": lambda t: _cycle(t, PEAK_RATE)}
        ):
            row["dataset"] = dataset
            rows.append(row)
    return rows


def _run_dynamic_speed():
    rows = []
    for dataset in DATASETS:
        config = DEFAULTS.with_(dataset=dataset)
        for row in _variants(
            config, {"speed_schedule": lambda t: _cycle(t, PEAK_SPEED)}
        ):
            row["dataset"] = dataset
            rows.append(row)
    return rows


COLUMNS = ("dataset", "variant", "location_update", "event_arrival", "total")


def test_fig10a_dynamic_event_rate(benchmark, report):
    rows = benchmark.pedantic(_run_dynamic_rate, rounds=1, iterations=1)
    report("fig10a", format_table(rows, COLUMNS, "Figure 10a (dynamic arrival rate)"))
    for dataset in DATASETS:
        by = {r["variant"]: r["total"] for r in rows if r["dataset"] == dataset}
        # the estimating methods stay within a small factor of the oracle
        assert by["iGM"] <= 2.0 * by["iGM-opi"] + 5
        # and beat the baselines
        assert by["iGM"] < by["GM"]


def test_fig10b_dynamic_speed(benchmark, report):
    rows = benchmark.pedantic(_run_dynamic_speed, rounds=1, iterations=1)
    report("fig10b", format_table(rows, COLUMNS, "Figure 10b (dynamic speed)"))
    for dataset in DATASETS:
        by = {r["variant"]: r["total"] for r in rows if r["dataset"] == dataset}
        assert by["iGM"] <= 2.0 * by["iGM-opi"] + 5
        assert by["iGM"] < by["GM"]
