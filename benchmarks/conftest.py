"""Benchmark fixtures: a reporter that persists every figure's table.

``pytest benchmarks/ --benchmark-only`` prints pytest-benchmark's timing
table; the *figure data* (the series the paper plots) is written by the
``report`` fixture into ``benchmarks/results/<figure>.txt`` and echoed to
stdout (visible with ``-s``).  EXPERIMENTS.md summarises those files.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """report(name, text): persist and echo one figure's table."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text)
        print(f"\n{text}\n[written to {path}]")

    return _report
