"""Benchmark fixtures: a reporter that persists every figure's table.

``pytest benchmarks/ --benchmark-only`` prints pytest-benchmark's timing
table; the *figure data* (the series the paper plots) is written by the
``report`` fixture into ``benchmarks/results/<figure>.txt`` and echoed to
stdout (visible with ``-s``).  EXPERIMENTS.md summarises those files.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--profile",
        action="store_true",
        default=False,
        help="dump a cProfile top-20 (cumulative) per benchmark body "
        "into benchmarks/results/profile_<name>.txt",
    )
    parser.addoption(
        "--stats",
        action="store_true",
        default=False,
        help="print the per-stage latency summary (span histograms) for "
        "benchmarks that trace their servers",
    )
    parser.addoption(
        "--slow-span-ms",
        type=float,
        default=None,
        help="report any traced pipeline span at or above this many "
        "milliseconds as it happens",
    )


@pytest.fixture
def stats_options(request):
    """(print_stats, slow_threshold_seconds) from --stats/--slow-span-ms."""
    slow_ms = request.config.getoption("--slow-span-ms")
    return (
        request.config.getoption("--stats"),
        None if slow_ms is None else slow_ms / 1000.0,
    )


@pytest.fixture
def profiled(request):
    """profiled(name, fn) -> fn, cProfile-wrapped when --profile is set.

    The wrapper writes the top-20 cumulative entries to
    ``benchmarks/results/profile_<name>.txt`` and returns fn's result
    unchanged, so benchmark timings include the (constant-factor)
    profiler overhead only when explicitly requested.
    """
    if not request.config.getoption("--profile"):
        return lambda name, fn: fn

    import cProfile
    import io
    import pstats

    def _wrap(name, fn):
        def _run(*args, **kwargs):
            profiler = cProfile.Profile()
            try:
                return profiler.runcall(fn, *args, **kwargs)
            finally:
                stream = io.StringIO()
                stats = pstats.Stats(profiler, stream=stream)
                stats.sort_stats("cumulative").print_stats(20)
                RESULTS_DIR.mkdir(exist_ok=True)
                path = RESULTS_DIR / f"profile_{name}.txt"
                path.write_text(stream.getvalue())
                print(f"\n[cProfile top-20 written to {path}]")

        return _run

    return _wrap


@pytest.fixture
def report():
    """report(name, text): persist and echo one figure's table."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text)
        print(f"\n{text}\n[written to {path}]")

    return _report
