"""Figure 9: optimality of the cost model.

iGM/idGM normally stop expanding when the balance ratio ``bm`` would pass
1.  This bench terminates the expansion at different thresholds
``beta in 1e-2 .. 1e2`` and measures the total communication I/O: the
curve must be U-shaped with its minimum at (or next to) ``beta = 1`` —
stopping earlier under-uses safe regions, stopping later over-exposes
the impact region to arrivals (Lemmas 6-7).

Both datasets are swept as in the paper.
"""

from __future__ import annotations

from config import DEFAULTS, FAST, format_table, mode_for, run_strategy

BETAS = (0.01, 0.1, 1.0, 10.0, 100.0)
STRATEGIES = ("iGM",) if FAST else ("iGM", "idGM")
DATASETS = ("twitter",) if FAST else ("twitter", "foursquare")


def _sweep():
    rows = []
    for dataset in DATASETS:
        config = DEFAULTS.with_(dataset=dataset)
        for strategy in STRATEGIES:
            for beta in BETAS:
                row = run_strategy(config, strategy, beta=beta)
                row["beta"] = beta
                row["dataset"] = dataset
                rows.append(row)
    return rows


def test_fig9_beta_sweep(benchmark, report):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(
        "fig9",
        format_table(
            rows,
            ("dataset", "strategy", "beta", "location_update", "event_arrival", "total"),
            "Figure 9 (optimality: terminate expansion at bm <= beta)",
        ),
    )
    for dataset in DATASETS:
        for strategy in STRATEGIES:
            series = {
                r["beta"]: r["total"]
                for r in rows
                if r["dataset"] == dataset and r["strategy"] == strategy
            }
            best_beta = min(series, key=series.get)
            # the optimum sits at beta = 1 or an adjacent grid point
            assert best_beta in (0.1, 1.0, 10.0), (dataset, strategy, series)
            # the extremes are never the best
            assert series[0.01] >= series[best_beta]
            assert series[100.0] >= series[best_beta]
