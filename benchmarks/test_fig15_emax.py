"""Figure 15 (Appendix D.1): tuning the BEQ-Tree leaf capacity Emax.

Larger leaves weaken the spatial pruning of the first layer (matching
slows down) but shrink the tree (building and updating get cheaper).
The paper picks Emax = 60K on a 20M corpus; scaled 1:1000 here.
"""

from __future__ import annotations

import time

from repro.datasets import TwitterLikeGenerator
from repro.geometry import Rect
from repro.index import BEQTree

from config import FAST, format_table

SPACE = Rect(0, 0, 50_000, 50_000)
EVENTS = 2_000 if FAST else 10_000
QUERIES = 10 if FAST else 40
EMAX_SWEEP = (32, 128, 512) if FAST else (16, 64, 256, 1_024, 4_096)


def _run():
    generator = TwitterLikeGenerator(SPACE, seed=23)
    events = generator.events(EVENTS)
    subscriptions = generator.subscriptions(QUERIES, size=3, radius=3_000.0)
    locations = [event.location for event in events[:QUERIES]]
    rows = []
    reference = None
    for emax in EMAX_SWEEP:
        tree = BEQTree(SPACE, emax=emax)
        started = time.perf_counter()
        tree.insert_all(events)
        build_ms = (time.perf_counter() - started) * 1000
        started = time.perf_counter()
        results = [
            sorted(e.event_id for e in tree.match(subscription, at))
            for subscription, at in zip(subscriptions, locations)
        ]
        match_ms = (time.perf_counter() - started) * 1000 / QUERIES
        if reference is None:
            reference = results
        else:
            assert results == reference, f"emax={emax} changed the results"
        rows.append(
            {
                "emax": emax,
                "leaves": sum(1 for _ in tree.leaves()),
                "depth": tree.depth(),
                "build_ms": build_ms,
                "match_ms": match_ms,
            }
        )
    return rows


def test_fig15_emax_tradeoff(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "fig15",
        format_table(
            rows,
            ("emax", "leaves", "depth", "build_ms", "match_ms"),
            "Figure 15 (BEQ-Tree Emax: matching time vs construction time)",
        ),
    )
    by = {r["emax"]: r for r in rows}
    smallest, largest = EMAX_SWEEP[0], EMAX_SWEEP[-1]
    # 15a: bigger leaves weaken spatial pruning -> slower matching
    assert by[largest]["match_ms"] >= by[smallest]["match_ms"]
    # 15b: bigger leaves mean fewer splits -> cheaper construction
    assert by[largest]["build_ms"] <= by[smallest]["build_ms"]
    # structural sanity: deeper tree at smaller Emax
    assert by[smallest]["depth"] >= by[largest]["depth"]
