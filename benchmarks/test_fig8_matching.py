"""Figure 8: spatial boolean-expression matching performance.

Quadtree, k-index, OpIndex and BEQ-Tree answer the same subscription
matches; each figure reports the average matching time per subscription,
split into the boolean-expression (BE) phase and the spatial phase, while
sweeping corpus size (8a), subscription size delta (8b) and notification
radius (8c).

Paper shape to reproduce: BEQ-Tree fastest overall; Quadtree cheap on
the spatial phase but slow on BE verification; k-index/OpIndex pay a
heavy spatial phase; only Quadtree is sensitive to the radius.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.datasets import TwitterLikeGenerator
from repro.geometry import Rect
from repro.index import BEQTree, KIndex, OpIndex, QuadTree

from config import DELTA_SWEEP, E_SWEEP, FAST, R_SWEEP, format_table

SPACE = Rect(0, 0, 50_000, 50_000)
QUERIES = 10 if FAST else 30
DEFAULT_EVENTS = E_SWEEP[2]
DEFAULT_DELTA = 3
DEFAULT_RADIUS = 3_000.0
SCALE_MS = 1_000.0


def _build_indexes(generator, events):
    indexes = {
        "Quadtree": QuadTree(SPACE, max_per_leaf=256),
        "k-index": KIndex(),
        "OpIndex": OpIndex(frequency_hint=generator.frequency_hint()),
        "BEQ-Tree": BEQTree(SPACE, emax=512),
    }
    for index in indexes.values():
        index.insert_all(events)
    return indexes


def _timed_phases(name, index, subscription, at) -> Dict[str, float]:
    """(be_ms, spatial_ms, results) for one query on one index.

    Each index's native filtering order defines its phases, mirroring the
    paper's per-method accounting.
    """
    if name == "Quadtree":
        started = time.perf_counter()
        candidates = index.events_in_circle(subscription.notification_region(at))
        spatial = time.perf_counter() - started
        started = time.perf_counter()
        matches = [e for e in candidates if subscription.be_matches(e)]
        be = time.perf_counter() - started
    elif name in ("k-index", "OpIndex"):
        started = time.perf_counter()
        candidates = index.be_match(subscription)
        be = time.perf_counter() - started
        started = time.perf_counter()
        matches = [e for e in candidates if subscription.spatial_matches(e, at)]
        spatial = time.perf_counter() - started
    else:  # BEQ-Tree: Algorithm 2 interleaves; time the counting pass alone
        circle = subscription.notification_region(at)
        started = time.perf_counter()
        for leaf in index.leaves_intersecting_circle(circle):
            leaf.lists.count_matches(subscription.expression.predicates)
        be = time.perf_counter() - started
        started = time.perf_counter()
        matches = index.match(subscription, at)
        total = time.perf_counter() - started
        spatial = max(total - be, 0.0)
    return {"be": be * SCALE_MS, "spatial": spatial * SCALE_MS, "results": len(matches)}


def _sweep(parameter: str, values) -> List[Dict]:
    rows: List[Dict] = []
    for value in values:
        events_count = value if parameter == "events" else DEFAULT_EVENTS
        delta = value if parameter == "delta" else DEFAULT_DELTA
        radius = value if parameter == "radius" else DEFAULT_RADIUS
        generator = TwitterLikeGenerator(SPACE, seed=11)
        events = generator.events(events_count)
        subscriptions = generator.subscriptions(QUERIES, size=delta, radius=radius)
        locations = [event.location for event in events[:QUERIES]]
        indexes = _build_indexes(generator, events)
        reference = None
        for name, index in indexes.items():
            be_total, spatial_total, results = 0.0, 0.0, []
            for subscription, at in zip(subscriptions, locations):
                phases = _timed_phases(name, index, subscription, at)
                be_total += phases["be"]
                spatial_total += phases["spatial"]
                results.append(phases["results"])
            if reference is None:
                reference = results
            else:
                assert results == reference, f"{name} diverged on {parameter}={value}"
            rows.append(
                {
                    parameter: value,
                    "index": name,
                    "be_ms": be_total / QUERIES,
                    "spatial_ms": spatial_total / QUERIES,
                    "total_ms": (be_total + spatial_total) / QUERIES,
                }
            )
    return rows


COLUMNS = ("index", "be_ms", "spatial_ms", "total_ms")


def test_fig8a_corpus_size(benchmark, report):
    rows = benchmark.pedantic(lambda: _sweep("events", E_SWEEP), rounds=1, iterations=1)
    report("fig8a", format_table(rows, ("events",) + COLUMNS, "Figure 8a"))
    by = {(r["events"], r["index"]): r for r in rows}
    top = E_SWEEP[-1]
    # BEQ-Tree always beats the inverted-list baselines, and beats the
    # Quadtree too once the corpus has any size to it (tiny corpora make
    # the Quadtree's brute verification trivially cheap).
    for size in E_SWEEP:
        others = [by[(size, n)]["total_ms"] for n in ("k-index", "OpIndex")]
        assert by[(size, "BEQ-Tree")]["total_ms"] <= min(others)
    for size in E_SWEEP[2:]:
        assert by[(size, "BEQ-Tree")]["total_ms"] <= by[(size, "Quadtree")]["total_ms"]
    # the inverted-list baselines pay for growth on the BE side
    assert by[(top, "k-index")]["be_ms"] > by[(E_SWEEP[0], "k-index")]["be_ms"]


def test_fig8b_subscription_size(benchmark, report):
    rows = benchmark.pedantic(lambda: _sweep("delta", DELTA_SWEEP), rounds=1, iterations=1)
    report("fig8b", format_table(rows, ("delta",) + COLUMNS, "Figure 8b"))
    by = {(r["delta"], r["index"]): r for r in rows}
    for delta in DELTA_SWEEP:
        others = [by[(delta, n)]["total_ms"] for n in ("k-index", "OpIndex")]
        assert by[(delta, "BEQ-Tree")]["total_ms"] <= min(others)


def test_fig8c_radius(benchmark, report):
    rows = benchmark.pedantic(lambda: _sweep("radius", R_SWEEP), rounds=1, iterations=1)
    report("fig8c", format_table(rows, ("radius",) + COLUMNS, "Figure 8c"))
    by = {(r["radius"], r["index"]): r for r in rows}
    # only Quadtree is clearly sensitive to the radius (more candidates);
    # BEQ-Tree stays flat and fastest
    quad_growth = by[(R_SWEEP[-1], "Quadtree")]["total_ms"] / max(
        by[(R_SWEEP[0], "Quadtree")]["total_ms"], 1e-9
    )
    beq_growth = by[(R_SWEEP[-1], "BEQ-Tree")]["total_ms"] / max(
        by[(R_SWEEP[0], "BEQ-Tree")]["total_ms"], 1e-9
    )
    assert quad_growth > beq_growth
    for radius in R_SWEEP:
        others = [by[(radius, n)]["total_ms"] for n in ("k-index", "OpIndex")]
        assert by[(radius, "BEQ-Tree")]["total_ms"] <= min(others)
