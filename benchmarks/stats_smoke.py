"""Live-TCP observability smoke check (run by the CI bench-smoke job).

Boots a real :class:`ElapsTCPServer` on a loopback port, drives it with
a network client — subscribe, then a batched publish frame — and then
exercises the full metrics surface end to end:

1. a ``StatsRequest`` (frame type 12) must come back as a
   ``StatsSnapshot`` whose per-stage histograms are non-empty for the
   stages the traffic exercised;
2. the snapshot's counters must agree with the live server's;
3. ``render_prometheus`` over the decoded snapshot must produce valid
   text exposition format: every counter present exactly once, no
   duplicate sample names, each histogram series cumulative and
   ``+Inf``-terminated.

Run directly: ``PYTHONPATH=src python benchmarks/stats_smoke.py``.
Exits non-zero (via assert) on any violation.
"""

from __future__ import annotations

import asyncio
import re
import sys

from repro.core import IGM
from repro.datasets import TwitterLikeGenerator
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree, SubscriptionIndex
from repro.system import ServerConfig, ElapsServer, render_prometheus
from repro.system.network import ElapsNetworkClient, ElapsTCPServer
from repro.system.protocol import StatsSnapshot

SPACE = Rect(0, 0, 50_000, 50_000)
CORPUS = 400
BATCH = 64


def _build_server(generator) -> ElapsServer:
    server = ElapsServer(
        Grid(120, SPACE),
        IGM(max_cells=2_500),
        ServerConfig(initial_rate=20.0),
        event_index=BEQTree(SPACE, emax=512),
        subscription_index=SubscriptionIndex(generator.frequency_hint()))
    server.bootstrap(generator.events(CORPUS))
    return server


def _check_prometheus(text: str, counters: dict, stages: dict) -> None:
    lines = text.splitlines()
    assert lines, "empty exposition"
    samples = [line for line in lines if line and not line.startswith("#")]
    # every sample identity (name + label set) appears exactly once
    identities = [line.rsplit(" ", 1)[0] for line in samples]
    duplicates = {i for i in identities if identities.count(i) > 1}
    assert not duplicates, f"duplicate samples: {sorted(duplicates)}"
    # every counter field surfaces under its canonical metric name
    # (high-water marks and bytes_measured render as gauges, no _total)
    for name in counters:
        if name == "bytes_measured" or name.endswith("_high_water"):
            metric = f"elaps_{name}"
        else:
            metric = f"elaps_{name}_total"
        assert any(i == metric for i in identities), f"missing {metric}"
        assert f"# TYPE {metric} " in text, f"missing TYPE for {metric}"
    # HELP/TYPE are emitted once per family, never per series
    type_lines = [line for line in lines if line.startswith("# TYPE ")]
    assert len(type_lines) == len(set(type_lines)), "repeated TYPE lines"
    # each exercised stage has a cumulative, +Inf-terminated series
    family = "elaps_stage_duration_seconds"
    for stage, histogram in stages.items():
        pattern = re.compile(
            rf'{family}_bucket{{stage="{re.escape(stage)}",le="([^"]+)"}} (\d+)'
        )
        buckets = [
            (m.group(1), int(m.group(2)))
            for line in samples
            if (m := pattern.fullmatch(line))
        ]
        assert buckets, f"no bucket series for stage {stage!r}"
        assert buckets[-1][0] == "+Inf", f"{stage}: last bucket must be +Inf"
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), f"{stage}: buckets must be cumulative"
        assert counts[-1] == histogram.count, f"{stage}: +Inf != count"
        assert f'{family}_sum{{stage="{stage}"}}' in text, f"{stage}: no _sum"
        assert f'{family}_count{{stage="{stage}"}}' in text, f"{stage}: no _count"


async def _main() -> None:
    generator = TwitterLikeGenerator(SPACE, seed=11)
    server = _build_server(generator)
    tcp = ElapsTCPServer(server, port=0)
    await tcp.start()
    client = ElapsNetworkClient("127.0.0.1", tcp.port)
    try:
        await client.connect()
        subscription = generator.subscriptions(1, size=3)[0]
        anchor = generator.events(1, seed_offset=3)[0]
        await client.subscribe(subscription, anchor.location, Point(60, 10))

        burst = generator.events(BATCH, start_id=10_000_000, seed_offset=7)
        await client.publish_batch(
            [(e.event_id, dict(e.attributes), e.location) for e in burst]
        )

        snapshot = await client.request_stats()
        assert isinstance(snapshot, StatsSnapshot), snapshot
        counters = snapshot.counters_dict()
        stages = snapshot.histograms()

        # the batched publish path must have left real spans behind
        for stage in ("batch", "match"):
            assert stage in stages, f"stage {stage!r} missing: {sorted(stages)}"
            assert stages[stage].count > 0, f"stage {stage!r} recorded nothing"
        # the snapshot mirrors the live server's counters
        assert counters == server.metrics.as_dict(), "snapshot/counter drift"
        assert counters["batches"] >= 1, counters

        text = render_prometheus(counters, stages)
        _check_prometheus(text, counters, stages)
    finally:
        await client.close()
        await tcp.stop()

    print(
        f"stats smoke OK: {len(counters)} counters, "
        f"{len(stages)} traced stages ({', '.join(sorted(stages))})"
    )


if __name__ == "__main__":
    asyncio.run(_main())
    sys.exit(0)
