"""Appendix B: safe-region transfer size with z-ordered WAH bitmaps.

The paper ships safe regions as z-order-id bitmaps compressed with WAH
and reports compressed sizes of 5-10% of the original.  This bench runs
a full simulation with byte accounting enabled and reports the measured
ratio per strategy.
"""

from __future__ import annotations

from config import DEFAULTS, format_table, run_strategy
from repro.system import run_experiment


def _run():
    rows = []
    for strategy in ("VM", "iGM", "idGM"):
        mode = "cached" if strategy == "VM" else "ondemand"
        result = run_experiment(
            DEFAULTS.with_(strategy=strategy, matching_mode=mode, measure_bytes=True)
        )
        stats = result.stats
        rows.append(
            {
                "strategy": strategy,
                "regions_shipped": stats.constructions,
                "compressed_kb": stats.safe_region_bytes / 1024,
                "raw_kb": stats.raw_region_bytes / 1024,
                "ratio_pct": 100.0 * stats.safe_region_bytes / max(stats.raw_region_bytes, 1),
            }
        )
    return rows


def test_appb_bitmap_compression(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "appb",
        format_table(
            rows,
            ("strategy", "regions_shipped", "compressed_kb", "raw_kb", "ratio_pct"),
            "Appendix B (WAH-compressed safe-region bitmaps)",
        ),
    )
    for row in rows:
        # the paper reports 5-10%; allow headroom for our smaller grids
        assert row["ratio_pct"] < 40.0, row
