"""Figure 13 (Appendix D.3): server computation cost of safe-region and
impact-region construction.

Six variants: VM and GM (full-corpus matching), iGM-BE/idGM-BE (iGM/idGM
fed by a full-corpus boolean match, the paper's k-index path) and
iGM-BEQ/idGM-BEQ (on-demand matching through the BEQ-Tree).  Each run
reports the accumulated construction time and the number of events the
matching machinery had to scan.

Paper shape: iGM/idGM an order of magnitude below VM/GM (they rebuild
far less often), and the -BEQ variants below the -BE variants (they
only touch the corpus near the region).
"""

from __future__ import annotations

from config import DEFAULTS, FAST, F_SWEEP, format_table, run_strategy

#: Figure 13 pays a full corpus scan per construction for the -BE
#: variants, so the configuration is kept lean.
BASE = DEFAULTS.with_(
    subscribers=4 if FAST else 8,
    timestamps=40 if FAST else 80,
    initial_events=1_000 if FAST else 4_000,
)

VARIANTS = (
    ("VM", "VM", "full"),
    ("GM", "GM", "full"),
    ("iGM-BE", "iGM", "full"),
    ("idGM-BE", "idGM", "full"),
    ("iGM-BEQ", "iGM", "ondemand"),
    ("idGM-BEQ", "idGM", "ondemand"),
)

SWEEP = F_SWEEP[:3] if FAST else F_SWEEP
V_SWEEP_13 = (20.0, 60.0, 100.0)
R_SWEEP_13 = (1_000.0, 3_000.0, 5_000.0)
E_SWEEP_13 = (1_000, 4_000, 8_000) if not FAST else (500, 1_000)


def _sweep(parameter: str, values):
    rows = []
    for value in values:
        for name, strategy, mode in VARIANTS:
            row = run_strategy(
                BASE.with_(**{parameter: value}), strategy, matching_mode=mode
            )
            row["variant"] = name
            row[parameter] = value
            row["server_ms"] = row["server_seconds"] * 1000
            rows.append(row)
    return rows


COLUMNS = ("variant", "constructions", "events_scanned", "server_ms")


def test_fig13a_event_rate(benchmark, report):
    rows = benchmark.pedantic(lambda: _sweep("event_rate", SWEEP), rounds=1, iterations=1)
    report(
        "fig13a",
        format_table(
            rows,
            ("event_rate",) + COLUMNS,
            "Figure 13a (server computation cost vs event arrival rate)",
        ),
    )
    top = max(SWEEP)
    by = {(r["event_rate"], r["variant"]): r for r in rows}
    # the -BEQ variants scan far fewer events than their -BE counterparts
    assert (
        by[(top, "iGM-BEQ")]["events_scanned"]
        < 0.5 * by[(top, "iGM-BE")]["events_scanned"]
    )
    # GM rebuilds much more often than iGM at high arrival rates
    assert by[(top, "GM")]["constructions"] > by[(top, "iGM-BEQ")]["constructions"]
    # and the BEQ-backed construction is the cheapest in wall time
    assert by[(top, "iGM-BEQ")]["server_ms"] < by[(top, "GM")]["server_ms"]


def test_fig13b_speed(benchmark, report):
    rows = benchmark.pedantic(lambda: _sweep("speed", V_SWEEP_13), rounds=1, iterations=1)
    report(
        "fig13b",
        format_table(rows, ("speed",) + COLUMNS,
                     "Figure 13b (server computation cost vs speed)"),
    )
    by = {(r["speed"], r["variant"]): r for r in rows}
    for speed in V_SWEEP_13:
        assert (
            by[(speed, "iGM-BEQ")]["events_scanned"]
            <= by[(speed, "iGM-BE")]["events_scanned"]
        )


def test_fig13c_radius(benchmark, report):
    rows = benchmark.pedantic(lambda: _sweep("radius", R_SWEEP_13), rounds=1, iterations=1)
    report(
        "fig13c",
        format_table(rows, ("radius",) + COLUMNS,
                     "Figure 13c (server computation cost vs radius)"),
    )
    by = {(r["radius"], r["variant"]): r for r in rows}
    for radius in R_SWEEP_13:
        assert (
            by[(radius, "iGM-BEQ")]["events_scanned"]
            <= by[(radius, "iGM-BE")]["events_scanned"]
        )


def test_fig13d_corpus_size(benchmark, report):
    rows = benchmark.pedantic(
        lambda: _sweep("initial_events", E_SWEEP_13), rounds=1, iterations=1
    )
    report(
        "fig13d",
        format_table(rows, ("initial_events",) + COLUMNS,
                     "Figure 13d (server computation cost vs corpus size)"),
    )
    by = {(r["initial_events"], r["variant"]): r for r in rows}
    top = max(E_SWEEP_13)
    # the on-demand advantage grows with the corpus (the paper's claim:
    # "the advantage is more obvious when ... the number of events is larger")
    assert (
        by[(top, "iGM-BE")]["events_scanned"]
        > 2 * by[(top, "iGM-BEQ")]["events_scanned"]
    )
