"""Subscription-index scalability (the paper's Section 6.1 aside).

The paper does not sweep the subscriber count — it argues subscribers do
not affect each other's communication and defers subscription-index
scalability to OpIndex/BE-Tree.  This bench covers that deferred claim
for the three subscription indexes this repository ships: event-matching
throughput as the subscription population grows.

Expected: OpIndex's pivot partitioning and the BE-Tree's value clustering
keep per-event matching cost sublinear in the population; the k-index
variant degrades to linear here because its size prune never fires when
every subscription has the same size (delta = 3) — the weakness the Elaps
paper points at when it calls the size partitioning "not efficient".
All three always return identical results.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.datasets import TwitterLikeGenerator
from repro.geometry import Rect
from repro.index import BETreeIndex, KSubscriptionIndex, SubscriptionIndex

from config import FAST, format_table

SPACE = Rect(0, 0, 50_000, 50_000)
POPULATIONS = (250, 1_000, 4_000) if FAST else (500, 2_000, 8_000)
PROBE_EVENTS = 100 if FAST else 300


def _run() -> List[Dict]:
    generator = TwitterLikeGenerator(SPACE, seed=29)
    probes = generator.events(PROBE_EVENTS)
    rows: List[Dict] = []
    for population in POPULATIONS:
        subscriptions = generator.subscriptions(population, size=3)
        indexes = {
            "OpIndex-style": SubscriptionIndex(generator.frequency_hint()),
            "k-index-style": KSubscriptionIndex(),
            "BE-Tree-style": BETreeIndex(max_bucket=32),
        }
        reference = None
        for name, index in indexes.items():
            started = time.perf_counter()
            for subscription in subscriptions:
                index.insert(subscription)
            build_ms = (time.perf_counter() - started) * 1000
            started = time.perf_counter()
            results = [
                sorted(s.sub_id for s in index.match_event(event))
                for event in probes
            ]
            match_us = (time.perf_counter() - started) * 1e6 / PROBE_EVENTS
            if reference is None:
                reference = results
            else:
                assert results == reference, f"{name} diverged at {population}"
            rows.append(
                {
                    "population": population,
                    "index": name,
                    "build_ms": build_ms,
                    "match_us_per_event": match_us,
                }
            )
    return rows


def test_subscription_index_scalability(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "subscription_scalability",
        format_table(
            rows,
            ("population", "index", "build_ms", "match_us_per_event"),
            "Subscription-index scalability (event-matching cost vs population)",
        ),
    )
    population_growth = POPULATIONS[-1] / POPULATIONS[0]

    def growth(name: str) -> float:
        series = {
            r["population"]: r["match_us_per_event"]
            for r in rows
            if r["index"] == name
        }
        return series[POPULATIONS[-1]] / max(series[POPULATIONS[0]], 1e-9)

    # OpIndex and BE-Tree prune: sublinear growth
    assert growth("OpIndex-style") < population_growth
    assert growth("BE-Tree-style") < population_growth
    # k-index's size prune is inert on a uniform-size population: (near-)
    # linear growth, the inefficiency the paper calls out
    assert growth("k-index-style") < population_growth * 1.5
