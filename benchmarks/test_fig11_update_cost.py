"""Figure 11: BEQ-Tree update cost.

The paper inserts 10M events on top of a 20M-event tree (batch by batch)
and then deletes back down, reporting the time per batch.  Scaled 1:1000:
start from a 20k-event tree, insert ten 1k batches, then delete ten 1k
batches from the 30k-event tree.

Paper shape: per-batch insertion cost grows as the tree deepens;
per-batch deletion cost falls as the tree shrinks.
"""

from __future__ import annotations

import time

from repro.datasets import TwitterLikeGenerator
from repro.geometry import Rect
from repro.index import BEQTree

from config import FAST, format_table

SPACE = Rect(0, 0, 50_000, 50_000)
BASE = 4_000 if FAST else 20_000
BATCH = 200 if FAST else 1_000
BATCHES = 10


def _run():
    generator = TwitterLikeGenerator(SPACE, seed=17)
    events = generator.events(BASE + BATCHES * BATCH)
    tree = BEQTree(SPACE, emax=512)
    tree.insert_all(events[:BASE])

    rows = []
    for batch in range(BATCHES):
        chunk = events[BASE + batch * BATCH : BASE + (batch + 1) * BATCH]
        started = time.perf_counter()
        for event in chunk:
            tree.insert(event)
        rows.append(
            {
                "batch": batch + 1,
                "operation": "insert",
                "tree_size": len(tree),
                "ms_per_batch": (time.perf_counter() - started) * 1000,
            }
        )
    for batch in range(BATCHES):
        chunk = events[BASE + (BATCHES - 1 - batch) * BATCH : BASE + (BATCHES - batch) * BATCH]
        started = time.perf_counter()
        for event in chunk:
            tree.delete(event)
        rows.append(
            {
                "batch": batch + 1,
                "operation": "delete",
                "tree_size": len(tree),
                "ms_per_batch": (time.perf_counter() - started) * 1000,
            }
        )
    assert len(tree) == BASE
    return rows


def test_fig11_update_cost(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "fig11",
        format_table(
            rows,
            ("operation", "batch", "tree_size", "ms_per_batch"),
            "Figure 11 (BEQ-Tree insert/delete cost per batch)",
        ),
    )
    import statistics

    inserts = [r["ms_per_batch"] for r in rows if r["operation"] == "insert"]
    deletes = [r["ms_per_batch"] for r in rows if r["operation"] == "delete"]
    # trend on the halves' medians — robust against one-off split spikes
    # (a batch that triggers a node split pays a visible redistribution)
    assert statistics.median(inserts[5:]) >= 0.5 * statistics.median(inserts[:5])
    assert statistics.median(deletes[5:]) <= 1.5 * statistics.median(deletes[:5])
    # updates stay fast in absolute terms (paper: < 300 s per 1M events,
    # i.e. < 0.3 ms per event; pure Python gets an order of magnitude slack)
    assert statistics.median(inserts + deletes) / BATCH < 3.0
