"""Microbenchmarks of the hot operations (multi-round pytest-benchmark).

Not a paper figure — these pin the per-operation costs that every macro
figure is built from, so performance regressions in the core structures
show up even when the macro shapes still hold:

* BEQ-Tree subscription match (Algorithm 2) and event insert;
* subscription-index event matching (the publish hot path);
* one iGM safe-region construction;
* WAH encoding of a typical safe region.
"""

from __future__ import annotations

import itertools

from repro.bitmap import WAHBitmap
from repro.core import ConstructionRequest, IGM, StaticMatchingField, SystemStats
from repro.datasets import TwitterLikeGenerator
from repro.geometry import Grid, Point, Rect, interleave
from repro.index import BEQTree, SubscriptionIndex

SPACE = Rect(0, 0, 50_000, 50_000)
GENERATOR = TwitterLikeGenerator(SPACE, seed=5)
EVENTS = GENERATOR.events(8_000)
SUBSCRIPTIONS = GENERATOR.subscriptions(200, size=3, radius=3_000.0)


def test_micro_beq_match(benchmark):
    tree = BEQTree(SPACE, emax=512)
    tree.insert_all(EVENTS)
    queries = itertools.cycle(
        [(s, e.location) for s, e in zip(SUBSCRIPTIONS, EVENTS)]
    )

    def match_one():
        subscription, at = next(queries)
        return tree.match(subscription, at)

    benchmark(match_one)


def test_micro_beq_insert(benchmark):
    fresh = GENERATOR.event_stream(start_id=10_000_000, seed_offset=9)
    tree = BEQTree(SPACE, emax=512)
    tree.insert_all(EVENTS)

    def insert_one():
        tree.insert(next(fresh))

    benchmark(insert_one)


def test_micro_subscription_index_publish(benchmark):
    index = SubscriptionIndex(GENERATOR.frequency_hint())
    for subscription in SUBSCRIPTIONS:
        index.insert(subscription)
    events = itertools.cycle(EVENTS)

    def match_event():
        return index.match_event(next(events))

    benchmark(match_event)


def test_micro_igm_construction(benchmark):
    grid = Grid(120, SPACE)
    subscription = SUBSCRIPTIONS[0]
    matching = [e.location for e in EVENTS if subscription.be_matches(e)]
    strategy = IGM(max_cells=2_500)
    # start from a spot where a real expansion happens (a safe cell far
    # enough from the matching events), so the benchmark measures an
    # actual construction rather than the degenerate empty-region path
    stats = SystemStats(event_rate=20.0, total_events=len(EVENTS))
    request = None
    for x in range(2_000, 50_000, 3_000):
        for y in range(2_000, 50_000, 3_000):
            candidate = ConstructionRequest(
                location=Point(float(x), float(y)),
                velocity=Point(60, 10),
                radius=3_000.0,
                grid=grid,
                matching_field=StaticMatchingField(grid, matching),
                stats=stats,
            )
            if strategy.construct(candidate).safe.area_cells() >= 100:
                request = candidate
                break
        if request is not None:
            break
    assert request is not None, "no viable start position found"

    benchmark(strategy.construct, request)


def test_micro_wah_encode(benchmark):
    # a realistic blob-shaped safe region of ~800 cells on a 128-grid
    cells = [
        (i, j)
        for i in range(40, 72)
        for j in range(48, 74)
        if (i - 56) ** 2 + (j - 61) ** 2 <= 220
    ]
    positions = [interleave(i, j) for (i, j) in cells]

    benchmark(WAHBitmap.from_positions, positions, 128 * 128)
