"""Figure 7: communication I/O on the Twitter workload.

Six subplots: the effect of event arrival rate f, moving speed vs,
notification radius r and corpus size E on synthetic trajectories
(7a-7d), plus f and r on taxi trajectories (7e-7f).  Each cell reports
the paper's two stacked series — location-update rounds and
event-arrival rounds per subscriber.

Paper shape to reproduce: iGM/idGM lowest total everywhere; GM cheapest
on location updates but dominated by event-arrival cost as f grows; VM
the most location updates; the iGM/idGM advantage growing with f.
"""

from __future__ import annotations

from config import (
    DEFAULTS,
    E_SWEEP,
    F_SWEEP,
    R_SWEEP,
    V_SWEEP,
    communication_sweep,
    format_table,
)

COLUMNS = ("strategy", "location_update", "event_arrival", "total")


def _run(report, benchmark, name: str, parameter: str, values, config=DEFAULTS):
    rows = benchmark.pedantic(
        lambda: communication_sweep(config, parameter, values),
        rounds=1,
        iterations=1,
    )
    report(name, format_table(rows, (parameter,) + COLUMNS, f"Figure {name}"))
    return rows


def test_fig7a_event_rate(benchmark, report):
    rows = _run(report, benchmark, "fig7a", "event_rate", F_SWEEP)
    by = {(r["event_rate"], r["strategy"]): r for r in rows}
    top_f = max(F_SWEEP)
    # GM's event-arrival channel must dominate at high f, and iGM must
    # beat GM overall there (the paper's headline result).
    assert by[(top_f, "GM")]["event_arrival"] > 3 * by[(top_f, "iGM")]["event_arrival"]
    assert by[(top_f, "iGM")]["total"] < by[(top_f, "GM")]["total"]
    # GM scales linearly-ish with f on the event channel.
    assert by[(top_f, "GM")]["event_arrival"] > by[(min(F_SWEEP), "GM")]["event_arrival"]


def test_fig7b_speed(benchmark, report):
    rows = _run(report, benchmark, "fig7b", "speed", V_SWEEP)
    by = {(r["speed"], r["strategy"]): r for r in rows}
    # Above the default speed, faster movement costs more location
    # updates for every method (the paper's mechanism).  Below it our
    # scaled setting shows the opposite: slow walkers boundary-hug the
    # unsafe zones and re-exit thin regions repeatedly (EXPERIMENTS.md),
    # so the assertion covers the 60 -> 100 range only.
    for strategy in ("VM", "iGM"):
        assert (
            by[(V_SWEEP[-1], strategy)]["location_update"]
            >= by[(V_SWEEP[2], strategy)]["location_update"]
        )


def test_fig7c_radius(benchmark, report):
    rows = _run(report, benchmark, "fig7c", "radius", R_SWEEP)
    by = {(r["radius"], r["strategy"]): r for r in rows}
    # larger r shrinks safe regions -> more location updates (all methods)
    for strategy in ("iGM", "GM"):
        assert (
            by[(R_SWEEP[-1], strategy)]["location_update"]
            >= by[(R_SWEEP[0], strategy)]["location_update"]
        )


def test_fig7d_corpus_size(benchmark, report):
    rows = _run(report, benchmark, "fig7d", "initial_events", E_SWEEP)
    by = {(r["initial_events"], r["strategy"]): r for r in rows}
    # a denser corpus costs more location updates (smaller safe regions)
    assert (
        by[(E_SWEEP[-1], "iGM")]["location_update"]
        >= by[(E_SWEEP[0], "iGM")]["location_update"]
    )


def test_fig7e_event_rate_taxi(benchmark, report):
    rows = _run(
        report, benchmark, "fig7e", "event_rate", F_SWEEP,
        config=DEFAULTS.with_(movement="taxi"),
    )
    by = {(r["event_rate"], r["strategy"]): r for r in rows}
    top_f = max(F_SWEEP)
    assert by[(top_f, "iGM")]["total"] < by[(top_f, "GM")]["total"]


def test_fig7f_radius_taxi(benchmark, report):
    rows = _run(
        report, benchmark, "fig7f", "radius", R_SWEEP,
        config=DEFAULTS.with_(movement="taxi"),
    )
    by = {(r["radius"], r["strategy"]): r for r in rows}
    assert (
        by[(R_SWEEP[-1], "iGM")]["location_update"]
        >= by[(R_SWEEP[0], "iGM")]["location_update"]
    )
