"""Durable-log smoke check (run by the CI bench-smoke job).

Exercises the full crash-recovery story end to end, outside pytest:

1. **record** — drive a seeded workload (bootstrap, subscribes, single
   and batched publishes, location reports, expiry) against a journaled
   server with a snapshot cadence, tracking what every subscriber
   received;
2. **kill** — truncate ``journal.log`` at a pseudo-random byte offset,
   simulating a crash mid-append (torn tail);
3. **recover** — restart from snapshot + tail, resync every surviving
   subscriber against what it already holds, and re-run the operations
   the journal did not retain;
4. **assert exactly-once** — the client-visible delivered sets must
   equal an uninterrupted oracle run of the same workload: zero lost
   and zero duplicate notifications;
5. **replay byte-identity** — record the same workload as a trace via
   :class:`repro.testing.TraceRecorder` and replay it through a fresh
   single server *and* a 2-shard fleet; both notification logs must be
   byte-identical.

Run directly: ``PYTHONPATH=src python benchmarks/recovery_smoke.py``.
Exits non-zero (via assert) on any violation.
"""

from __future__ import annotations

import os
import random
import sys
import tempfile

from repro.core import IGM
from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree
from repro.system import (
    ElapsServer,
    JournalSpec,
    SerialExecutor,
    ServerConfig,
    ShardedElapsServer,
)
from repro.testing import TraceRecorder, diff_logs, replay_trace

SPACE = Rect(0, 0, 10_000, 10_000)
TOPICS = ("sale", "news")
SEED = 1729
SNAPSHOT_EVERY = 8


def build_server(path=None):
    journal = None
    if path is not None:
        journal = JournalSpec(str(path), snapshot_every=SNAPSHOT_EVERY)
    return ElapsServer(
        Grid(40, SPACE),
        IGM(max_cells=600),
        ServerConfig(initial_rate=1.0, journal=journal),
        event_index=BEQTree(SPACE, emax=32),
    )


def build_fleet(shards=2):
    return ShardedElapsServer(
        Grid(40, SPACE),
        lambda: IGM(max_cells=600),
        ServerConfig(initial_rate=1.0),
        shards=shards,
        executor=SerialExecutor(),
        event_index_factory=lambda: BEQTree(SPACE, emax=32),
    )


def make_workload(seed, subs=8, ticks=40):
    """A deterministic op trace with stationary subscribers."""
    rng = random.Random(seed)
    positions = {
        sub_id: Point(rng.uniform(500, 9500), rng.uniform(500, 9500))
        for sub_id in range(1, subs + 1)
    }
    event_id = 1000
    corpus = []
    for _ in range(10):
        event_id += 1
        corpus.append(Event(
            event_id, {"topic": rng.choice(TOPICS)},
            Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000)),
            arrived_at=0, expires_at=rng.choice((None, 15)),
        ))
    ops = [("bootstrap", corpus)]
    for sub_id, position in positions.items():
        subscription = Subscription(
            sub_id,
            BooleanExpression(
                [Predicate("topic", Operator.EQ, TOPICS[sub_id % len(TOPICS)])]
            ),
            radius=2500.0,
        )
        ops.append(("subscribe", subscription, position, 0))

    def fresh_event(now):
        nonlocal event_id
        event_id += 1
        return Event(
            event_id, {"topic": rng.choice(TOPICS)},
            Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000)),
            arrived_at=now,
            expires_at=None if rng.random() < 0.5 else now + rng.randint(3, 10),
        )

    for now in range(1, ticks + 1):
        roll = rng.random()
        if roll < 0.5:
            ops.append(("publish", fresh_event(now), now))
        elif roll < 0.75:
            ops.append(("publish_batch",
                        [fresh_event(now) for _ in range(rng.randint(2, 4))], now))
        elif roll < 0.9:
            sub_id = rng.randint(1, subs)
            ops.append(("report_location", sub_id, positions[sub_id], now))
        else:
            ops.append(("expire", now))
    return positions, ops


def apply_op(server, op, received):
    """Run one workload op; fold its notifications into ``received``."""
    kind = op[0]
    if kind == "bootstrap":
        server.bootstrap(op[1])
        return
    if kind == "subscribe":
        notifications, _ = server.subscribe(op[1], op[2], Point(0.0, 0.0), now=op[3])
    elif kind == "publish":
        notifications = server.publish(op[1], op[2])
    elif kind == "publish_batch":
        notifications = server.publish_batch(list(op[1]), op[2])
    elif kind == "report_location":
        notifications, _ = server.report_location(
            op[1], op[2], Point(0.0, 0.0), now=op[3]
        )
    elif kind == "expire":
        server.expire_due_events(op[1])
        return
    else:
        raise AssertionError(f"unknown op {kind}")
    for notification in notifications:
        received.setdefault(notification.sub_id, set()).add(
            notification.event.event_id
        )


def crash_recover_differential(workdir) -> dict:
    """Steps 1-4: kill a journaled run and prove exactly-once recovery."""
    positions, ops = make_workload(SEED)

    oracle = {}
    plain = build_server(None)
    for op in ops:
        apply_op(plain, op, oracle)
    plain.close()

    rng = random.Random(SEED * 31 + 7)
    crash_at = rng.randint(len(ops) // 3, len(ops) - 2)
    server = build_server(workdir)
    received = {}
    op_seqs = []
    for op in ops[:crash_at]:
        apply_op(server, op, received)
        op_seqs.append(server.journal.seq)
    server.close()

    log = os.path.join(str(workdir), "journal.log")
    size = os.path.getsize(log)
    with open(log, "r+b") as handle:
        handle.truncate(rng.randint(0, size))

    revived = build_server(workdir)
    records = revived.recover()
    assert records >= 0
    applied = revived.applied_seq

    crash_now = ops[crash_at][-1] if isinstance(ops[crash_at][-1], int) else 0
    for sub_id, position in positions.items():
        if sub_id not in revived.subscribers:
            continue  # its subscribe record was lost; the op re-runs below
        notifications, _ = revived.resync(
            sub_id, position, Point(0.0, 0.0),
            sorted(received.get(sub_id, ())), now=crash_now,
        )
        for notification in notifications:
            received.setdefault(notification.sub_id, set()).add(
                notification.event.event_id
            )

    resume = crash_at
    for index, seq in enumerate(op_seqs):
        if seq > applied:
            resume = index
            break
    for op in ops[resume:]:
        apply_op(revived, op, received)
    revived.close()

    assert received == oracle, "client-visible delivery diverged from oracle"
    return {
        "ops": len(ops),
        "crash_at": crash_at,
        "recovered_records": records,
        "subscribers": len(oracle),
    }


def replay_byte_identity(workdir) -> dict:
    """Step 5: one recorded trace, byte-identical across configurations.

    The trace subscribes into an empty corpus: cross-configuration byte
    identity is pinned for publish-driven notifications, while the
    ordering *within* one subscribe-time backlog is per-index (see the
    golden sharded differential in tests/test_sharding.py).
    """
    _, ops = make_workload(SEED + 1)
    ops[0] = ("bootstrap", [])  # subscribe before any event exists
    with TraceRecorder(build_server(None), os.path.join(workdir, "trace")) as recorder:
        recorded = {}
        for op in ops:
            apply_op(recorder, op, recorded)

    trace = os.path.join(workdir, "trace")
    single = replay_trace(trace, build_server(None))
    fleet = replay_trace(trace, build_fleet(shards=2))
    divergence = diff_logs(single.log(), fleet.log())
    assert not divergence, f"sharded replay diverged: {divergence}"
    assert single.records_applied == fleet.records_applied
    assert single.notifications, "replay produced no notifications"
    return {
        "records": single.records_applied,
        "notifications": len(single.notifications),
        "digest": single.digest()[:16],
    }


def main() -> None:
    """Run both halves of the smoke check in a scratch directory."""
    with tempfile.TemporaryDirectory(prefix="repro-recovery-smoke-") as tmp:
        crash = crash_recover_differential(os.path.join(tmp, "crash"))
        replay = replay_byte_identity(tmp)
    print(
        f"recovery smoke OK: {crash['ops']} ops, crash at op {crash['crash_at']}, "
        f"{crash['recovered_records']} records replayed, "
        f"{crash['subscribers']} subscribers exactly-once; "
        f"trace of {replay['records']} records -> {replay['notifications']} "
        f"notifications byte-identical at K=2 (sha256 {replay['digest']})"
    )


if __name__ == "__main__":
    main()
    sys.exit(0)
