"""Shared benchmark configuration: Table 2, scaled for a pure-Python substrate.

The paper's evaluation ran a C++ prototype against 10M-50M events, 10,000
trajectories and up to 500 events/timestamp.  These benches keep the same
*sweeps* (the x axes of every figure) at roughly 1:10 for the event arrival
rate and 1:5000 for corpus sizes, with the defaults in DEFAULTS mirroring
Table 2's bold values.  Set ``REPRO_BENCH_FAST=1`` to shrink everything
further for smoke runs.

The communication figures report per-subscriber averages exactly as the
paper does, split into location-update and event-arrival rounds.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Sequence

from repro.system import ExperimentConfig, run_experiment

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"


def _scaled(full, fast):
    return fast if FAST else full


#: Table 2 defaults (bold values), scaled: f=100/tm -> 20/tm, vs=60 m/tm,
#: r=3 km, E=30M -> 6000.  Stream events carry a validity period, so the
#: live corpus stays in a steady state like the paper's.
DEFAULTS = ExperimentConfig(
    dataset="twitter",
    movement="synthetic",
    event_rate=20.0,
    speed=60.0,
    radius=3_000.0,
    initial_events=_scaled(6_000, 2_000),
    subscription_size=3,
    subscribers=_scaled(10, 5),
    timestamps=_scaled(120, 50),
    grid_n=120,
    event_ttl=50,
    max_cells=2_500,
    seed=7,
)

#: paper sweeps (Table 2), arrival rate scaled 1:5
F_SWEEP: Sequence[float] = (2.0, 10.0, 20.0, 100.0)  # paper: 10, 50, 100, 500
V_SWEEP: Sequence[float] = (20.0, 40.0, 60.0, 80.0, 100.0)  # as in the paper
R_SWEEP: Sequence[float] = (1_000.0, 2_000.0, 3_000.0, 4_000.0, 5_000.0)
E_SWEEP: Sequence[int] = tuple(
    _scaled((2_000, 4_000, 6_000, 8_000, 10_000), (500, 1_000, 2_000, 3_000, 4_000))
)  # paper: 10M .. 50M
DELTA_SWEEP: Sequence[int] = (1, 2, 3, 4, 5)

STRATEGY_ORDER = ("VM", "GM", "iGM", "idGM")


def mode_for(strategy: str) -> str:
    """VM/GM need the global matching set; iGM/idGM run on-demand."""
    return "cached" if strategy in ("VM", "GM") else "ondemand"


def run_strategy(config: ExperimentConfig, strategy: str, **overrides) -> Dict[str, float]:
    """Run one (configuration, strategy) cell and return the figure row."""
    changes = {"strategy": strategy, "matching_mode": mode_for(strategy)}
    changes.update(overrides)
    cell = config.with_(**changes)
    result = run_experiment(cell)
    per = result.per_subscriber()
    return {
        "strategy": strategy,
        "location_update": per["location_update"],
        "event_arrival": per["event_arrival"],
        "total": per["total"],
        "notifications": per["notifications"],
        "server_seconds": result.stats.server_seconds,
        "constructions": result.stats.constructions,
        "events_scanned": result.stats.events_scanned,
    }


def communication_sweep(
    config: ExperimentConfig,
    parameter: str,
    values: Iterable,
    strategies: Sequence[str] = STRATEGY_ORDER,
) -> List[Dict[str, float]]:
    """One communication figure: sweep a parameter across all strategies."""
    rows: List[Dict[str, float]] = []
    for value in values:
        for strategy in strategies:
            row = run_strategy(config.with_(**{parameter: value}), strategy)
            row[parameter] = value
            rows.append(row)
    return rows


def format_table(rows: Sequence[Dict], columns: Sequence[str], title: str) -> str:
    """A fixed-width text table, one row per dict."""
    widths = [max(len(c), 14) for c in columns]
    lines = [title, ""]
    lines.append("  ".join(c.rjust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        cells = []
        for column, width in zip(columns, widths):
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:.2f}".rjust(width))
            else:
                cells.append(str(value).rjust(width))
        lines.append("  ".join(cells))
    lines.append("")
    return "\n".join(lines)
