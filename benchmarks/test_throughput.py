"""End-to-end publish throughput (system claim, not a paper figure).

The paper's bottom line is that Elaps "disseminates events to users in
real-time": the publish path — subscription-index match, impact-index
lookup, the occasional ping/rebuild — must keep up with the stream.
This bench pushes a burst of events through a fully loaded server and
reports events/second, two ways:

* a population sweep on the single-event path (separating index cost
  from subscriber-handling cost),
* the **batched fast path**: the same burst through ``publish_batch``
  at increasing batch sizes, against the one-at-a-time baseline,
* the **repair sweep**: the same burst against an always-rebuild server
  and a repair-enabled one (both measuring bytes), comparing publish
  throughput and downstream wire bytes, and
* the **tracing overhead** check: the batch-64 series with the span
  tracer enabled vs disabled (best-of-N each), plus the per-stage
  latency histogram summaries of the traced run, and
* the **shard scaling** series: the identical batch-64 burst against a
  :class:`ShardedElapsServer` fleet (``ThreadedExecutor``) at 1 and 4
  shards.  Python threads buy no CPU parallelism, so the speedup gate
  measures the *algorithmic* win of spatial partitioning: each shard
  constructs safe regions against its own (4x smaller) slice of the
  event corpus and matches arrivals against its own slice of the
  subscriber population, and
* the **process scaling** series: a Zipf-centered *skewed* burst —
  four Gaussian city cores planted inside one static band — through
  process fleets (``ProcessExecutor``) at 1 and 4 shards plus a static
  ``ThreadedExecutor`` 4-shard fleet.  The static partition stalls
  (nearly every event lands on one band); the load-adaptive fleet
  re-cuts its boundaries into the valleys between the cores during
  warm-up and recovers the per-shard slicing win, and
* the **rebalance** series: the same skewed stream through static vs
  adaptive serial fleets, reporting boundary moves and the max/mean
  band-load imbalance each ends with, and
* the **recovery sweep**: the batch-64 series with the durable journal
  off vs on (best-of-N each — write-ahead logging must be near-free on
  the publish path), plus a **recovery curve** timing ``recover()``
  replay cost at growing journal lengths, and
* the **construct sweep**: a repair-off population sweep on a
  construction-dominated workload (broad single-predicate
  subscriptions over a dense corpus, radius 3 km, bounded region
  budget) run once with the scalar iGM and once with its vectorized
  twin (DESIGN.md §14).  Delivered pairs and construction counts must
  agree exactly — byte-identical cores time the *same* work — and the
  vectorized rows report their speedup over scalar, and
* the **match residual** series (DESIGN.md §16): pure boolean matching
  — ``SubscriptionIndex.match_event`` vs ``match_batch`` at batch 64
  against a head-heavy keyword pool, no server, no geometry — so the
  gate isolates the OpIndex probe amortisation that raises the
  non-parallelisable residual's ceiling in the sharded fleets, and
* the **connection scaling** series (DESIGN.md §17): a paced broadcast
  burst over real TCP to a large subscriber fleet, once with every
  reader prompt and once with a quarter throttled behind a chaos
  proxy.  Bounded per-connection send queues must isolate the fast
  readers (p99 receipt latency at most doubles), hold queue memory at
  the configured hard cap, and every disconnected slow consumer must
  heal to exactly the published set through reconnect + resync once
  the throttle lifts.

Besides the human-readable table, the run emits the machine-readable
``BENCH_throughput.json`` at the repo root (schema v9, documented in
EXPERIMENTS.md).  Nine regression gates are enforced here and
re-checked by the CI bench-smoke job from the JSON: batched throughput
at batch size 64 must stay at least 1.5x the single-event baseline,
repair mode must process at least 2x the always-rebuild events/sec
while shipping strictly fewer bytes down, enabled span tracing must
cost at most 5% of batch-64 throughput, the 4-shard fleet must reach
at least 1.5x the 1-shard batch-64 events/sec, the load-adaptive
4-shard process fleet must reach at least 1.8x the 1-shard events/sec
on the skewed burst when the host has a core per shard (on smaller
hosts, where the parallel axis physically cannot contribute, the gate
falls back to the 1.2x algorithmic floor that load balance alone must
deliver against the batch-matching 1-shard baseline — see the
constant docs for the §16 recalibration), write-ahead journaling must
cost at most 10% of
batch-64 throughput, the vectorized construction core must reach
at least 3x the scalar events/sec at the construct sweep's largest
population, batched OpIndex matching must reach at least 1.5x the
per-event boolean-matching events/sec at batch 64 (with delivered
(sub, event) pairs asserted identical before any timing), and with a
quarter of the fleet reading slowly the fast readers' p99 notification
latency must stay within 2x the all-fast baseline while the send-queue
high-water mark stays at or under the configured hard cap and every
slow consumer heals to delivered-set equality, exactly once.

Run with ``--profile`` to additionally dump a cProfile top-20 of the
benchmark body to ``benchmarks/results/profile_throughput.txt``; run
with ``--stats`` (optionally ``--slow-span-ms N``) to print the traced
run's per-stage latency table.
"""

from __future__ import annotations

import asyncio
import contextlib
import gc
import json
import os
import pathlib
import random
import tempfile
import time
from typing import Dict, List, Optional

from repro.core import IGM, VectorizedIGM
from repro.datasets import SkewedLocationSampler, TwitterLikeGenerator
from repro.expressions import BooleanExpression, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree, SubscriptionIndex
from repro.system import (
    CallbackTransport,
    ClientConfig,
    ElapsNetworkClient,
    ElapsServer,
    ElapsTCPServer,
    JournalSpec,
    NetworkConfig,
    ProcessExecutor,
    RebalancePolicy,
    ReconnectPolicy,
    ResilientElapsClient,
    SerialExecutor,
    ServerConfig,
    ShardedElapsServer,
    ThreadedExecutor,
)
from repro.system.protocol import NotificationMessage
from repro.testing import FaultConfig, chaos_proxy

from config import FAST, format_table

SPACE = Rect(0, 0, 50_000, 50_000)
BURST = 512 if FAST else 2_048
CORPUS = 2_000 if FAST else 6_000
POPULATIONS = (0, 10, 50) if FAST else (0, 25, 100)
BATCH_SIZES = (16, 64)
BATCH_SUBSCRIBERS = POPULATIONS[-1]
REQUIRED_SPEEDUP_AT_64 = 1.5
REQUIRED_REPAIR_SPEEDUP = 2.0
#: enabled-tracing overhead ceiling on batch-64 throughput (fraction)
MAX_TRACING_OVERHEAD = 0.05
#: best-of rounds per tracing mode; the max filters scheduler noise
OVERHEAD_ROUNDS = 3
#: the shard-scaling series: batch-64 through a sharded fleet.  The
#: workload is tuned so spatial partitioning actually pays: a corpus
#: large enough that per-shard construction cost dominates, a small
#: radius and a bounded region budget so most subscribers stay
#: single-homed (multi-homing erodes the per-shard index advantage).
SHARD_COUNTS = (1, 4)
SHARD_SUBSCRIBERS = 300
SHARD_RADIUS = 600.0
SHARD_MAX_CELLS = 200
SHARD_CORPUS = 8_000
#: fixed, dedicated burst for the scaling series: homes are sticky, so a
#: longer stream steadily multi-homes more subscribers and measures
#: erosion, not scaling.  The series draws its own events (rather than
#: slicing the main burst) so FAST and full mode measure identical work.
SHARD_BURST = 512
SHARD_ROUNDS = 5
REQUIRED_SHARD_SPEEDUP = 1.5
#: the process-fleet scaling series (DESIGN.md §15): a Zipf-centered
#: skewed burst — four Gaussian city cores inside one static band — where
#: a *static* column partition stalls (nearly every event lands on one
#: shard, so the threaded 4-shard fleet degenerates to the 1-shard
#: cost), while the load-adaptive process fleet re-cuts the boundaries
#: into the inter-core valleys and recovers the per-shard corpus/population
#: slicing win.  The gate compares process fleets at 4 vs 1 shard, so it
#: measures partitioning, not pipe overhead.
PROC_SHARDS = 4
PROC_GRID_N = 600
PROC_CORPUS = 600
PROC_SUBSCRIBERS = 3_000
PROC_RADIUS = 80.0
PROC_MAX_CELLS = 9
PROC_WARM = 384
PROC_BURST = 1_024 if FAST else 1_536
#: fan-out batch for the fleet series.  Large on purpose: every batch
#: costs one pipe round-trip per participating worker, and on a busy
#: single-core host a pipe write can stall for a scheduler quantum —
#: small batches measure the kernel's wake-up latency, not the fleet.
PROC_BATCH = 256
PROC_ROUNDS = 3 if FAST else 4
#: the multicore contract: with one core per shard, the balanced fleet
#: must beat the 1-shard process baseline by winning on *both* axes —
#: real CPU parallelism times the per-shard corpus/population slicing.
#: Recalibrated for the batched OpIndex matcher (DESIGN.md §16): the
#: 1-shard baseline now amortises matching inside its own 256-event
#: batches (this matching-heavy skewed series measured the baseline
#: +128% events/sec), so the same fleet throughput reads as a smaller
#: *ratio* — absolute fleet events/sec went up, the denominator went
#: up more.  Per-shard sub-batches (~64 events) amortise less and the
#: fleet's matching work was already population-sliced 4 ways.
REQUIRED_PROCESS_SPEEDUP = 1.8
#: on hosts with fewer cores than shards the parallel axis physically
#: cannot contribute (K workers time-share one CPU), so the gate falls
#: back to the algorithmic floor: what load balance alone must deliver
#: while the static partition sits at ~1x (measured ~1.4x against the
#: batch-matching 1-shard baseline, ~2.2x before it).
REQUIRED_PROCESS_SPEEDUP_UNICORE = 1.2
#: the connection-scaling series (DESIGN.md §17): the same broadcast
#: burst against a mixed TCP fleet, once with every reader prompt and
#: once with a quarter of them throttled behind a chaos proxy.  The
#: bounded per-connection send queues must isolate the fast readers
#: from the slow ones (their p99 notification latency may at most
#: double), keep queue memory at the hard cap, and the disconnected
#: slow consumers must heal to exactly the published set once the
#: throttle lifts (PR 1 resync).
CONN_CLIENTS = 64 if FAST else 256
CONN_SLOW_SHARE = 0.25
CONN_EVENTS = 80 if FAST else 150
#: publish pacing: one event every 4 ms keeps the stream inside the
#: paper's real-time regime so receipt latency measures queueing, not a
#: saturated publisher
CONN_PACE = 0.004
#: queue caps sized against the burst: the kernel buffers ~30 padded
#: frames between server and stalled proxy, so the remaining backlog
#: must clear the hard cap with margin for the disconnect to fire
#: while the burst is still being offered
CONN_SEND_QUEUE = 16
CONN_SEND_QUEUE_HARD = 32
CONN_GRACE = 0.3
CONN_WRITE_BUFFER = 4096
#: proxy delay per server->client frame for the throttled quarter
CONN_THROTTLE = 0.05
#: SO_RCVBUF clamp on the proxy's server-facing sockets: without it
#: the kernel auto-tunes megabytes of buffer for the stalled reader
#: and the send queues never see the backlog
CONN_PROXY_RCVBUF = 8_192
#: padded payload: the burst must decisively exceed the ~128 KiB the
#: kernel buffers between the server (SO_SNDBUF clamped to
#: CONN_WRITE_BUFFER) and the stalled proxy reader, or the slow
#: consumers never back up into their send queues
CONN_PAD = "x" * 4096
REQUIRED_CONN_P99_RATIO = 2.0
#: best-of rounds per mode: a shared host can stall the loop for tens
#: of milliseconds, which taints the p99 of a sub-second burst in
#: either mode — the min-p99 round reflects the queueing behaviour,
#: while the correctness fields (healed, exactly-once, high-water) are
#: aggregated conservatively across every round
CONN_ROUNDS = 2
#: ratio floor: on an idle host the all-fast p99 can land in the tens
#: of microseconds, where doubling it measures scheduler jitter rather
#: than backpressure isolation — the baseline is clamped up to this
#: many seconds before the ratio gate is applied
CONN_P99_FLOOR = 0.005


def _process_required_speedup() -> float:
    cores = os.cpu_count() or 1
    if cores >= PROC_SHARDS:
        return REQUIRED_PROCESS_SPEEDUP
    return REQUIRED_PROCESS_SPEEDUP_UNICORE
#: four Zipf-weighted urban cores, all inside static band 1 of 4
#: (12.5–25 km on the 50 km space): the static partition funnels ~96%
#: of the stream into one shard, while the load-balanced cut lands in
#: the *valleys* between the cores, so re-cut bands carry one core each
#: and almost no subscriber sits close enough to a boundary to
#: multi-home.  Centers are listed in Zipf *rank* order (heaviest
#: first), interleaved in space so the extra mass of the inner cores
#: walks each load quarter-mark onto a core's right edge — with equal
#: weights the 50% and 75% marks would land structurally inside the
#: next core's left tail (the uniform background accrues too slowly
#: over the left half of the space to make up the difference).
PROC_HOT_CENTERS = (
    Point(17_000.0, 25_000.0),
    Point(20_000.0, 25_000.0),
    Point(14_000.0, 25_000.0),
    Point(23_000.0, 25_000.0),
)
PROC_HOT_STD_FRACTION = 0.016  # sigma = 800 m of the 50 km space
PROC_UNIFORM_FRACTION = 0.04
PROC_ZIPF_S = 0.12
#: subscriber cores sit this far off the event cores in y (same columns)
PROC_ANCHOR_Y_OFFSET = 2_500.0
PROC_POLICY = RebalancePolicy(check_every=64, min_events=384, max_imbalance=1.5)
#: write-ahead journaling overhead ceiling on batch-64 throughput
MAX_JOURNAL_OVERHEAD = 0.10
#: journal-length fractions of the burst timed by the recovery curve
RECOVERY_FRACTIONS = (0.25, 0.5, 1.0)
#: the construct sweep: a repair-off population sweep tuned so safe-region
#: construction dominates the publish path — broad single-predicate
#: subscriptions make most of the corpus be-matching (thousands of events
#: dilated per rebuild), the 3 km radius grows the dilation disk, and the
#: bounded region budget keeps frontiers small relative to field work.
CONSTRUCT_SUBSCRIBERS = (25, 50) if FAST else (25, 100)
CONSTRUCT_CORPUS = 2_000 if FAST else 6_000
CONSTRUCT_BURST = 192 if FAST else 512
CONSTRUCT_RADIUS = 3_000.0
CONSTRUCT_MAX_CELLS = 300
CONSTRUCT_SUBSCRIPTION_SIZE = 1
CONSTRUCT_ROUNDS = 2
REQUIRED_CONSTRUCT_SPEEDUP = 3.0
#: the match-residual series (DESIGN.md §16): pure boolean-matching
#: throughput of the bare SubscriptionIndex, with no server, no spatial
#: work, and no construction — the residual bill that survives once
#: batching and sharding have amortized everything else.  The batched
#: matcher groups each 64-event chunk by attribute signature and probes
#: every operator group once per *distinct* value, so the Zipf-skewed
#: vocabulary (many repeated values per batch) is exactly the workload
#: where amortization pays.
MATCH_SUBSCRIBERS = 3_000
MATCH_BURST = 1_024 if FAST else 4_096
MATCH_BATCH = BATCH_SIZES[-1]
MATCH_ROUNDS = 4
#: predicate mix of the residual pool — the interval-converted end of
#: the AOL mix: presence probes, *selective* two-wide intervals, and
#: exact frequencies.  Narrow windows keep the hit volume (whose
#: per-hit counting cost neither path can amortise) low relative to
#: probe work, which is exactly the share batching amortises.
MATCH_PRESENCE_SHARE = 0.30
MATCH_INTERVAL_SHARE = 0.50
MATCH_SUBSCRIPTION_SIZE = 3
#: subscriptions concentrate on the head of the vocabulary (AOL head
#: terms): with a small pivot pool a 64-event batch re-encounters the
#: same (attribute, value) probes — the regime batched matching exists
#: for.  The event stream still draws from the full 400-word Zipf
#: vocabulary.
MATCH_POOL_WORDS = 20
REQUIRED_MATCH_SPEEDUP = 1.5
#: matching's assumed share of the sharded batch-64 publish bill — the
#: serial residual the shard axis cannot split (every shard matches its
#: own arrivals in full).  Used to project the raised 4-shard
#: algorithmic ceiling in ``match_gate``: Amdahl with the non-matching
#: share split 4 ways and the matching share sped up by the measured
#: batch-matching factor.
MATCH_RESIDUAL_SHARE = 0.21
JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


def _loaded_server(
    generator,
    subscriber_count: int,
    *,
    repair: bool = False,
    measure_bytes: bool = False,
    journal: Optional[JournalSpec] = None,
) -> ElapsServer:
    server = ElapsServer(
        Grid(120, SPACE),
        IGM(max_cells=2_500),
        ServerConfig(initial_rate=20.0, repair=repair,
                     measure_bytes=measure_bytes, journal=journal),
        event_index=BEQTree(SPACE, emax=512),
        subscription_index=SubscriptionIndex(generator.frequency_hint()))
    server.bootstrap(generator.events(CORPUS))
    subscriptions = generator.subscriptions(subscriber_count, size=3)
    anchors = generator.events(subscriber_count, seed_offset=3)
    for subscription, anchor in zip(subscriptions, anchors):
        server.subscribe(subscription, anchor.location, Point(60, 10), now=0)
    # stationary clients: the locator answers with the subscribe position
    positions = {s.sub_id: a.location for s, a in zip(subscriptions, anchors)}
    server.transport = CallbackTransport(
        locate=lambda sub_id: (positions[sub_id], Point(60, 10)))
    return server


def _population_sweep(generator, burst) -> List[Dict]:
    rows: List[Dict] = []
    for population in POPULATIONS:
        server = _loaded_server(generator, population)
        started = time.perf_counter()
        notifications = 0
        for t, event in enumerate(burst, start=1):
            notifications += len(server.publish(event, now=t))
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "subscribers": population,
                "events": len(burst),
                "notifications": notifications,
                "events_per_second": len(burst) / elapsed,
            }
        )
    return rows


def _batch_comparison(generator, burst) -> List[Dict]:
    """Single baseline vs ``publish_batch`` at each batch size.

    Every mode processes the identical burst against an identically
    loaded server; delivered (sub, event) pairs must agree, so the rows
    are comparable work, not different work.
    """
    rows: List[Dict] = []
    delivered_baseline = None
    for batch_size in (1, *BATCH_SIZES):
        server = _loaded_server(generator, BATCH_SUBSCRIBERS)
        started = time.perf_counter()
        delivered = set()
        if batch_size == 1:
            for t, event in enumerate(burst, start=1):
                for n in server.publish(event, now=t):
                    delivered.add((n.sub_id, n.event.event_id))
        else:
            for i in range(0, len(burst), batch_size):
                now = i // batch_size + 1
                for n in server.publish_batch(burst[i : i + batch_size], now):
                    delivered.add((n.sub_id, n.event.event_id))
        elapsed = time.perf_counter() - started
        if delivered_baseline is None:
            delivered_baseline = delivered
        assert delivered == delivered_baseline, "batched path changed deliveries"
        stats = server.metrics.as_dict()
        rows.append(
            {
                "mode": "single" if batch_size == 1 else "batched",
                "batch_size": batch_size,
                "events": len(burst),
                "seconds": elapsed,
                "events_per_second": len(burst) / elapsed,
                "notifications": len(delivered),
                "constructions": stats["constructions"],
                "event_arrival_rounds": stats["event_arrival_rounds"],
                "leaf_probes_saved": stats["leaf_probes_saved"],
                "cache_hits": stats["cache_hits"],
            }
        )
    baseline = rows[0]["events_per_second"]
    for row in rows:
        row["speedup_vs_single"] = row["events_per_second"] / baseline
    return rows


def _repair_comparison(generator, burst) -> List[Dict]:
    """Always-rebuild vs incremental repair on the identical stream.

    Both servers measure bytes (the wire saving is the point); the
    delivered (sub, event) pairs must agree — notification streams are
    pinned by geometry, not region policy — so the rows time the same
    observable work.
    """
    rows: List[Dict] = []
    delivered_baseline = None
    for repair in (False, True):
        server = _loaded_server(
            generator, BATCH_SUBSCRIBERS, repair=repair, measure_bytes=True
        )
        started = time.perf_counter()
        delivered = set()
        for t, event in enumerate(burst, start=1):
            for n in server.publish(event, now=t):
                delivered.add((n.sub_id, n.event.event_id))
        elapsed = time.perf_counter() - started
        if delivered_baseline is None:
            delivered_baseline = delivered
        assert delivered == delivered_baseline, "repair changed deliveries"
        stats = server.metrics.as_dict()
        rows.append(
            {
                "mode": "repair" if repair else "rebuild",
                "events": len(burst),
                "seconds": elapsed,
                "events_per_second": len(burst) / elapsed,
                "notifications": len(delivered),
                "constructions": stats["constructions"],
                "repairs": stats["repairs"],
                "repair_fallbacks": stats["repair_fallbacks"],
                "wire_bytes_down": stats["wire_bytes_down"],
                "delta_region_bytes": stats["delta_region_bytes"],
            }
        )
    baseline = rows[0]["events_per_second"]
    for row in rows:
        row["speedup_vs_rebuild"] = row["events_per_second"] / baseline
    return rows


def _tracing_overhead(generator, burst, slow_threshold=None):
    """Batch-64 throughput with the span tracer off vs on.

    Each mode runs ``OVERHEAD_ROUNDS`` times on a freshly loaded server
    and keeps its best events/sec — the max is the least noisy estimator
    of attainable throughput, which is what an overhead ratio should
    compare.  Returns the two rows, the measured overhead fraction, and
    the traced run's per-stage histogram summaries.
    """
    rows: List[Dict] = []
    summaries: Dict[str, Dict[str, float]] = {}
    batch_size = BATCH_SIZES[-1]
    for enabled in (False, True):
        best = 0.0
        for _ in range(OVERHEAD_ROUNDS):
            server = _loaded_server(generator, BATCH_SUBSCRIBERS)
            server.tracer.enabled = enabled
            server.tracer.slow_threshold = slow_threshold if enabled else None
            started = time.perf_counter()
            for i in range(0, len(burst), batch_size):
                server.publish_batch(burst[i : i + batch_size], i // batch_size + 1)
            elapsed = time.perf_counter() - started
            best = max(best, len(burst) / elapsed)
            if enabled:
                summaries = server.registry.tracer.summaries()
        rows.append(
            {
                "mode": "traced" if enabled else "untraced",
                "batch_size": batch_size,
                "events": len(burst),
                "rounds": OVERHEAD_ROUNDS,
                "events_per_second": best,
            }
        )
    untraced = rows[0]["events_per_second"]
    traced = rows[1]["events_per_second"]
    overhead = max(0.0, 1.0 - traced / untraced)
    for row in rows:
        row["overhead_vs_untraced"] = max(
            0.0, 1.0 - row["events_per_second"] / untraced
        )
    return rows, overhead, summaries


def _loaded_sharded_server(generator, shards: int) -> ShardedElapsServer:
    """A sharded fleet loaded with the shard-scaling workload.

    The global region budget is split across the bands: the client-held
    region is the K-way intersection of per-shard regions, so each shard
    gets ``SHARD_MAX_CELLS / K`` — deliveries are identical, but a shard
    never burns budget expanding over columns it does not own.
    """
    per_shard_cells = max(1, SHARD_MAX_CELLS // shards)
    server = ShardedElapsServer(
        Grid(120, SPACE),
        lambda spec: IGM(max_cells=per_shard_cells),
        ServerConfig(initial_rate=20.0),
        shards=shards,
        executor=ThreadedExecutor(max_workers=shards),
        event_index_factory=lambda: BEQTree(SPACE, emax=512),
        subscription_index_factory=lambda: SubscriptionIndex(
            generator.frequency_hint()
        ),
    )
    server.bootstrap(generator.events(SHARD_CORPUS))
    subscriptions = generator.subscriptions(
        SHARD_SUBSCRIBERS, size=3, radius=SHARD_RADIUS
    )
    anchors = generator.events(SHARD_SUBSCRIBERS, seed_offset=3)
    for subscription, anchor in zip(subscriptions, anchors):
        server.subscribe(subscription, anchor.location, Point(60, 10), now=0)
    positions = {s.sub_id: a.location for s, a in zip(subscriptions, anchors)}
    server.transport = CallbackTransport(
        locate=lambda sub_id: (positions[sub_id], Point(60, 10)))
    return server


def _shard_scaling(generator) -> List[Dict]:
    """Batch-64 through the sharded fleet at each shard count.

    Each shard count runs ``SHARD_ROUNDS`` times on a freshly loaded
    fleet and keeps its best events/sec (the same best-of estimator the
    tracing series uses).  Delivered (sub, event) pairs must agree
    across shard counts — sharding must never change a delivery.
    """
    batch_size = BATCH_SIZES[-1]
    burst = generator.events(SHARD_BURST, start_id=20_000_000, seed_offset=11)
    best = {shards: 0.0 for shards in SHARD_COUNTS}
    multi_homed = {shards: 0 for shards in SHARD_COUNTS}
    delivered: Dict[int, set] = {}
    # rounds are interleaved across shard counts so slow temporal drift
    # (thermal, allocator state after the earlier series) hits every
    # count equally instead of biasing whichever ran last
    for _ in range(SHARD_ROUNDS):
        for shards in SHARD_COUNTS:
            server = _loaded_sharded_server(generator, shards)
            multi_homed[shards] = sum(
                1 for record in server.subscribers.values()
                if len(record.homes) > 1
            )
            gc.collect()
            started = time.perf_counter()
            round_delivered = set()
            for i in range(0, len(burst), batch_size):
                now = i // batch_size + 1
                for n in server.publish_batch(burst[i : i + batch_size], now):
                    round_delivered.add((n.sub_id, n.event.event_id))
            elapsed = time.perf_counter() - started
            server.close()
            best[shards] = max(best[shards], len(burst) / elapsed)
            previous = delivered.setdefault(shards, round_delivered)
            assert previous == round_delivered, "sharded delivery is unstable"
    baseline_delivered = delivered[SHARD_COUNTS[0]]
    rows: List[Dict] = []
    for shards in SHARD_COUNTS:
        assert delivered[shards] == baseline_delivered, (
            "sharding changed deliveries"
        )
        rows.append(
            {
                "shards": shards,
                "executor": "threaded",
                "batch_size": batch_size,
                "events": len(burst),
                "rounds": SHARD_ROUNDS,
                "subscribers": SHARD_SUBSCRIBERS,
                "multi_homed": multi_homed[shards],
                "notifications": len(delivered[shards]),
                "events_per_second": best[shards],
            }
        )
    baseline = rows[0]["events_per_second"]
    for row in rows:
        row["speedup_vs_one_shard"] = row["events_per_second"] / baseline
    return rows


def _skewed_generator(y_offset: float = 0.0) -> TwitterLikeGenerator:
    """The spatially skewed workload: ~96% of locations from four tight
    Gaussian cores pinned inside one static band, plus a thin uniform
    background.  ``y_offset`` shifts the cores off the column axis —
    columns (and so shard routing) are unchanged, but the shifted
    population no longer sits inside the unshifted one's radii."""
    return TwitterLikeGenerator(
        SPACE,
        seed=53,
        locations=SkewedLocationSampler(
            SPACE,
            hotspots=len(PROC_HOT_CENTERS),
            centers=[
                Point(center.x, center.y + y_offset)
                for center in PROC_HOT_CENTERS
            ],
            hotspot_std_fraction=PROC_HOT_STD_FRACTION,
            uniform_fraction=PROC_UNIFORM_FRACTION,
            zipf_s=PROC_ZIPF_S,
            seed=53,
        ),
    )


def _loaded_skewed_fleet(generator, shards, executor, policy=None):
    """A fleet loaded with the skewed workload: corpus and subscribers
    both drawn from the hotspot mixture.

    Unlike the shard-scaling series, every shard keeps the same (small)
    region budget the single server gets: splitting a large budget would
    hand *any* 4-shard fleet cheaper constructions, balanced or not, and
    this series isolates the one effect budget can't buy — balance.
    What partitioning splits is the per-arrival matching bill: each
    event is matched against its owner shard's registered population.
    The static fleet funnels nearly every event into the one band owning
    nearly every subscriber and so repeats the single-server bill; the
    adaptive cut, landing in the valleys between the hot cores, splits
    it four ways."""
    server = ShardedElapsServer(
        Grid(PROC_GRID_N, SPACE),
        lambda spec: IGM(max_cells=PROC_MAX_CELLS),
        ServerConfig(initial_rate=20.0),
        shards=shards,
        executor=executor,
        event_index_factory=lambda: BEQTree(SPACE, emax=512),
        subscription_index_factory=lambda: SubscriptionIndex(
            generator.frequency_hint()
        ),
        rebalance=policy,
    )
    server.bootstrap(generator.events(PROC_CORPUS))
    subscriptions = generator.subscriptions(
        PROC_SUBSCRIBERS, size=3, radius=PROC_RADIUS
    )
    # Subscribers live in the same four hot *columns* as the stream (so
    # the static partition funnels them onto one shard) but sit a couple
    # of kilometres off the event cores in y: arrivals pay the full
    # content-matching bill against the owner shard's population without
    # constantly invalidating the nearby safe regions — which would add
    # reconstruction work that no partition, balanced or not, can split.
    anchors = _skewed_generator(y_offset=PROC_ANCHOR_Y_OFFSET).events(
        PROC_SUBSCRIBERS, seed_offset=3
    )
    for subscription, anchor in zip(subscriptions, anchors):
        server.subscribe(subscription, anchor.location, Point(60, 10), now=0)
    positions = {s.sub_id: a.location for s, a in zip(subscriptions, anchors)}
    server.transport = CallbackTransport(
        locate=lambda sub_id: (positions[sub_id], Point(60, 10)))
    return server


#: the three process-scaling configurations: (executor kind, K, adaptive)
PROC_CONFIGS = (
    ("process", 1, False),
    ("process", PROC_SHARDS, True),
    ("threaded", PROC_SHARDS, False),
)


def _process_executor_for(kind: str, shards: int):
    if kind == "process":
        return ProcessExecutor()
    return ThreadedExecutor(max_workers=shards)


def _process_scaling(generator) -> List[Dict]:
    """The skewed burst through each process-scaling configuration.

    Every configuration processes the identical warm-up (during which
    the adaptive fleet's policy fires) and the identical timed burst
    from an identically loaded state; the delivered (sub, event) pair
    sets must agree across configurations and rounds before the timing
    numbers mean anything — partitioning must never change a delivery.
    Best-of-``PROC_ROUNDS``, rounds interleaved across configurations.
    """
    warm = generator.events(PROC_WARM, start_id=30_000_000, seed_offset=13)
    burst = generator.events(PROC_BURST, start_id=31_000_000, seed_offset=17)
    best: Dict[tuple, float] = {}
    rebalances: Dict[tuple, int] = {}
    multi_homed: Dict[tuple, int] = {}
    delivered: Dict[tuple, set] = {}
    for _ in range(PROC_ROUNDS):
        for key in PROC_CONFIGS:
            kind, shards, adaptive = key
            server = _loaded_skewed_fleet(
                generator,
                shards,
                _process_executor_for(kind, shards),
                policy=PROC_POLICY if adaptive else None,
            )
            pairs = set()
            for i in range(0, len(warm), PROC_BATCH):
                now = i // PROC_BATCH + 1
                for n in server.publish_batch(warm[i : i + PROC_BATCH], now):
                    pairs.add((n.sub_id, n.event.event_id))
            if adaptive:
                assert server.rebalances >= 1, (
                    "the rebalance policy never fired on the skewed stream"
                )
            rebalances[key] = server.rebalances
            multi_homed[key] = sum(
                1 for record in server.subscribers.values()
                if len(record.homes) > 1
            )
            gc.collect()
            started = time.perf_counter()
            for i in range(0, len(burst), PROC_BATCH):
                now = 100 + i // PROC_BATCH
                for n in server.publish_batch(burst[i : i + PROC_BATCH], now):
                    pairs.add((n.sub_id, n.event.event_id))
            elapsed = time.perf_counter() - started
            server.close()
            best[key] = max(best.get(key, 0.0), len(burst) / elapsed)
            previous = delivered.setdefault(key, pairs)
            assert previous == pairs, "process-fleet delivery is unstable"
    baseline_pairs = delivered[PROC_CONFIGS[0]]
    rows: List[Dict] = []
    for key in PROC_CONFIGS:
        assert delivered[key] == baseline_pairs, (
            "partitioning changed deliveries"
        )
        kind, shards, adaptive = key
        rows.append(
            {
                "executor": kind,
                "shards": shards,
                "rebalance": adaptive,
                "rebalances": rebalances[key],
                "batch_size": PROC_BATCH,
                "events": len(burst),
                "rounds": PROC_ROUNDS,
                "subscribers": PROC_SUBSCRIBERS,
                "multi_homed": multi_homed[key],
                "notifications": len(delivered[key]),
                "events_per_second": best[key],
            }
        )
    baseline = rows[0]["events_per_second"]
    for row in rows:
        row["speedup_vs_one_shard"] = row["events_per_second"] / baseline
    return rows


def _rebalance_series(generator) -> List[Dict]:
    """Policy behaviour on the skewed stream: a static fleet ends with
    one band owning most of the load; the adaptive fleet must have moved
    its boundaries and ended measurably flatter."""
    stream = generator.events(
        PROC_WARM + PROC_BURST, start_id=32_000_000, seed_offset=19
    )
    rows: List[Dict] = []
    for mode, policy in (("static", None), ("adaptive", PROC_POLICY)):
        server = _loaded_skewed_fleet(
            generator, PROC_SHARDS, SerialExecutor(), policy=policy
        )
        for i in range(0, len(stream), PROC_BATCH):
            server.publish_batch(stream[i : i + PROC_BATCH], i // PROC_BATCH + 1)
        loads = server.shard_loads()
        mean = sum(loads) / len(loads)
        rows.append(
            {
                "mode": mode,
                "shards": PROC_SHARDS,
                "events": len(stream),
                "rebalances": server.rebalances,
                "bounds": [spec.col_lo for spec in server.specs]
                + [server.grid.n],
                "imbalance": (max(loads) / mean) if mean else 0.0,
            }
        )
        server.close()
    return rows


def _run_journaled_burst(generator, burst, batch_size, journal):
    """One batch-``batch_size`` pass of ``burst``; returns events/sec."""
    server = _loaded_server(generator, BATCH_SUBSCRIBERS, journal=journal)
    gc.collect()
    started = time.perf_counter()
    for i in range(0, len(burst), batch_size):
        server.publish_batch(burst[i : i + batch_size], i // batch_size + 1)
    elapsed = time.perf_counter() - started
    server.close()
    return len(burst) / elapsed


def _journal_overhead(generator, burst, workdir):
    """Batch-64 throughput with the durable journal off vs on.

    Same estimator as the tracing series: each mode runs
    ``OVERHEAD_ROUNDS`` times against a freshly loaded server (and, for
    the journaled mode, a fresh journal directory) and keeps its best
    events/sec.  The write-ahead append sits on the publish hot path, so
    this ratio *is* the durability tax.
    """
    rows: List[Dict] = []
    batch_size = BATCH_SIZES[-1]
    for journaled in (False, True):
        best = 0.0
        for round_index in range(OVERHEAD_ROUNDS):
            spec = None
            if journaled:
                spec = JournalSpec(str(workdir / f"overhead-{round_index}"))
            best = max(
                best, _run_journaled_burst(generator, burst, batch_size, spec)
            )
        rows.append(
            {
                "mode": "journaled" if journaled else "plain",
                "batch_size": batch_size,
                "events": len(burst),
                "rounds": OVERHEAD_ROUNDS,
                "events_per_second": best,
            }
        )
    plain = rows[0]["events_per_second"]
    overhead = max(0.0, 1.0 - rows[1]["events_per_second"] / plain)
    for row in rows:
        row["overhead_vs_plain"] = max(
            0.0, 1.0 - row["events_per_second"] / plain
        )
    return rows, overhead


def _recovery_curve(generator, burst, workdir) -> List[Dict]:
    """Cold-restart ``recover()`` cost at growing journal lengths.

    Each fraction journals that prefix of the burst (plus the bootstrap
    and subscribe preamble) and then times a fresh server replaying the
    log.  Recovery is a pure replay, so the curve should grow linearly
    in the record count — a super-linear bend means the restore path
    regressed.
    """
    batch_size = BATCH_SIZES[-1]
    rows: List[Dict] = []
    for fraction in RECOVERY_FRACTIONS:
        spec = JournalSpec(str(workdir / f"curve-{fraction}"))
        prefix = burst[: max(batch_size, int(len(burst) * fraction))]
        server = _loaded_server(generator, BATCH_SUBSCRIBERS, journal=spec)
        for i in range(0, len(prefix), batch_size):
            server.publish_batch(prefix[i : i + batch_size], i // batch_size + 1)
        server.close()

        cold = ElapsServer(
            Grid(120, SPACE),
            IGM(max_cells=2_500),
            ServerConfig(initial_rate=20.0, journal=spec),
            event_index=BEQTree(SPACE, emax=512),
            subscription_index=SubscriptionIndex(generator.frequency_hint()))
        gc.collect()
        started = time.perf_counter()
        records = cold.recover()
        elapsed = time.perf_counter() - started
        cold.close()
        rows.append(
            {
                "fraction": fraction,
                "records": records,
                "recover_seconds": elapsed,
                "records_per_second": records / elapsed if elapsed else 0.0,
            }
        )
    return rows


def _construct_loaded_server(generator, strategy_cls, population) -> ElapsServer:
    """A server loaded with the construct-sweep workload."""
    server = ElapsServer(
        Grid(120, SPACE),
        strategy_cls(max_cells=CONSTRUCT_MAX_CELLS),
        ServerConfig(initial_rate=20.0),
        event_index=BEQTree(SPACE, emax=512),
        subscription_index=SubscriptionIndex(generator.frequency_hint()))
    server.bootstrap(generator.events(CONSTRUCT_CORPUS))
    subscriptions = generator.subscriptions(
        population, size=CONSTRUCT_SUBSCRIPTION_SIZE, radius=CONSTRUCT_RADIUS
    )
    anchors = generator.events(population, seed_offset=3)
    for subscription, anchor in zip(subscriptions, anchors):
        server.subscribe(subscription, anchor.location, Point(60, 10), now=0)
    positions = {s.sub_id: a.location for s, a in zip(subscriptions, anchors)}
    server.transport = CallbackTransport(
        locate=lambda sub_id: (positions[sub_id], Point(60, 10)))
    return server


def _construct_sweep(generator) -> List[Dict]:
    """Scalar vs vectorized iGM on the construction-dominated sweep.

    Every (population, strategy) cell runs ``CONSTRUCT_ROUNDS`` times on a
    freshly loaded server and keeps its best events/sec; rounds are
    interleaved across cells so temporal drift hits both strategies
    equally.  Within a population the two strategies must deliver the
    identical (sub, event) pairs and perform the identical number of
    constructions — the cores are byte-identical, so any divergence here
    is a correctness bug, not noise.
    """
    strategies = (("iGM", IGM), ("iGM-vec", VectorizedIGM))
    burst = generator.events(CONSTRUCT_BURST, start_id=30_000_000, seed_offset=13)
    best: Dict[tuple, float] = {}
    observed: Dict[tuple, tuple] = {}
    for _ in range(CONSTRUCT_ROUNDS):
        for population in CONSTRUCT_SUBSCRIBERS:
            for name, strategy_cls in strategies:
                server = _construct_loaded_server(generator, strategy_cls, population)
                gc.collect()
                started = time.perf_counter()
                delivered = set()
                for t, event in enumerate(burst, start=1):
                    for n in server.publish(event, now=t):
                        delivered.add((n.sub_id, n.event.event_id))
                elapsed = time.perf_counter() - started
                stats = server.metrics.as_dict()
                key = (population, name)
                best[key] = max(best.get(key, 0.0), len(burst) / elapsed)
                observed[key] = (delivered, stats["constructions"])
    rows: List[Dict] = []
    for population in CONSTRUCT_SUBSCRIBERS:
        scalar_delivered, scalar_constructions = observed[(population, "iGM")]
        vec_delivered, vec_constructions = observed[(population, "iGM-vec")]
        assert vec_delivered == scalar_delivered, (
            "vectorized construction changed deliveries"
        )
        assert vec_constructions == scalar_constructions, (
            "vectorized construction changed rebuild decisions"
        )
        for name, _ in strategies:
            delivered, constructions = observed[(population, name)]
            rows.append(
                {
                    "strategy": name,
                    "subscribers": population,
                    "events": len(burst),
                    "rounds": CONSTRUCT_ROUNDS,
                    "constructions": constructions,
                    "notifications": len(delivered),
                    "events_per_second": best[(population, name)],
                    "speedup_vs_scalar": (
                        best[(population, name)] / best[(population, "iGM")]
                    ),
                }
            )
    return rows


def _match_residual(generator) -> List[Dict]:
    """Per-event vs batched boolean matching on the bare index.

    Both modes run against the *same* loaded index, so the comparison
    isolates the matcher: ``match_event`` probes every partition layer
    per event, ``match_batch`` probes once per distinct value per chunk
    behind the attribute-bitmap prefilter.  Delivered (sub, event) pairs
    are asserted identical before any timing is read — the batched
    matcher's contract is byte-identity, and a divergence here is a
    correctness bug, not noise.  Rounds are interleaved across modes so
    temporal drift hits both equally; each mode keeps its best.
    """
    hint = generator.frequency_hint()
    words = sorted(hint, key=hint.get, reverse=True)[:MATCH_POOL_WORDS]
    weights = [hint[word] for word in words]
    rng = random.Random(59)

    def sample_keywords():
        # Zipf-weighted like the generator's own subscription pool —
        # head-heavy conjunctions keep boolean selectivity realistic
        # (uniform 3-of-100 conjunctions would almost never match).
        chosen: List[str] = []
        seen = set()
        while len(chosen) < MATCH_SUBSCRIPTION_SIZE:
            word = rng.choices(words, weights)[0]
            if word not in seen:
                seen.add(word)
                chosen.append(word)
        return chosen

    index = SubscriptionIndex(hint)
    for sub_id in range(MATCH_SUBSCRIBERS):
        predicates = []
        for keyword in sample_keywords():
            roll = rng.random()
            if roll < MATCH_PRESENCE_SHARE:
                predicates.append(Predicate(keyword, Operator.GE, 1))
            elif roll < MATCH_PRESENCE_SHARE + MATCH_INTERVAL_SHARE:
                low = rng.randint(2, 5)
                predicates.append(
                    Predicate(keyword, Operator.BETWEEN, (low, low + 1))
                )
            else:
                predicates.append(
                    Predicate(keyword, Operator.EQ, rng.choice((1, 1, 1, 2)))
                )
        index.insert(
            Subscription(sub_id, BooleanExpression(predicates), radius=1_000.0)
        )
    burst = generator.events(MATCH_BURST, start_id=40_000_000, seed_offset=17)
    scalar_pairs = {
        (s.sub_id, event.event_id)
        for event in burst
        for s in index.match_event(event)
    }
    batched_pairs = set()
    for i in range(0, len(burst), MATCH_BATCH):
        chunk = burst[i : i + MATCH_BATCH]
        for event, row in zip(chunk, index.match_batch(chunk)):
            batched_pairs.update((s.sub_id, event.event_id) for s in row)
    assert batched_pairs == scalar_pairs, "batched matching changed deliveries"

    best = {"per_event": 0.0, "batch": 0.0}
    for _ in range(MATCH_ROUNDS):
        gc.collect()
        started = time.perf_counter()
        for event in burst:
            index.match_event(event)
        elapsed = time.perf_counter() - started
        best["per_event"] = max(best["per_event"], len(burst) / elapsed)
        gc.collect()
        started = time.perf_counter()
        for i in range(0, len(burst), MATCH_BATCH):
            index.match_batch(burst[i : i + MATCH_BATCH])
        elapsed = time.perf_counter() - started
        best["batch"] = max(best["batch"], len(burst) / elapsed)

    rows: List[Dict] = []
    for mode, key, batch_size in (
        ("per_event", "per_event", 1),
        (f"batch_{MATCH_BATCH}", "batch", MATCH_BATCH),
    ):
        rows.append(
            {
                "mode": mode,
                "batch_size": batch_size,
                "subscribers": MATCH_SUBSCRIBERS,
                "events": len(burst),
                "rounds": MATCH_ROUNDS,
                "matched_pairs": len(scalar_pairs),
                "events_per_second": best[key],
                "speedup_vs_per_event": best[key] / best["per_event"],
            }
        )
    return rows


def _conn_subscription(sub_id: int) -> Subscription:
    return Subscription(
        sub_id,
        BooleanExpression([Predicate("topic", Operator.EQ, "sale")]),
        radius=1_500.0,
    )


def _connection_round(mode: str, slow: int) -> Dict:
    """One connection-scaling run: ``slow`` of :data:`CONN_CLIENTS`
    readers are throttled behind a chaos proxy, the rest read directly.

    Every subscriber shares one location and a subscription the whole
    burst matches, so the unthrottled oracle is simply the published id
    set.  Fast-reader receipt latency is measured against the publish
    instant; after the burst the proxy throttle lifts and every slow
    consumer must heal to exactly the oracle set through the
    disconnect -> reconnect -> resync path.
    """

    async def scenario() -> Dict:
        loop = asyncio.get_running_loop()
        server = ElapsServer(Grid(40, SPACE), IGM(max_cells=400), ServerConfig())
        config = NetworkConfig(
            send_queue=CONN_SEND_QUEUE,
            send_queue_hard=CONN_SEND_QUEUE_HARD,
            slow_consumer_grace=CONN_GRACE,
            write_buffer_limit=CONN_WRITE_BUFFER,
            retain_subscribers=True,
        )
        tcp = ElapsTCPServer(server, port=0, config=config)
        await tcp.start()
        fast_n = CONN_CLIENTS - slow
        expected = set(range(1_000, 1_000 + CONN_EVENTS))
        publish_times: Dict[int, float] = {}
        latencies: List[float] = []
        healed = 0
        exactly_once = True
        async with contextlib.AsyncExitStack() as stack:
            async def connect_fast(idx: int) -> ElapsNetworkClient:
                client = ElapsNetworkClient("127.0.0.1", tcp.port)
                await client.connect()
                await client.subscribe(
                    _conn_subscription(idx + 1), Point(5_000, 5_000), Point(0, 0)
                )
                return client

            fast_clients = await asyncio.gather(
                *(connect_fast(i) for i in range(fast_n))
            )

            slow_clients: List[ResilientElapsClient] = []
            proxy = None
            if slow:
                proxy = await stack.enter_async_context(
                    chaos_proxy("127.0.0.1", tcp.port, FaultConfig())
                )
                proxy.upstream_rcvbuf = CONN_PROXY_RCVBUF
                grid = Grid(40, SPACE)

                async def connect_slow(idx: int) -> ResilientElapsClient:
                    client = ResilientElapsClient(
                        "127.0.0.1",
                        proxy.port,
                        _conn_subscription(fast_n + idx + 1),
                        Point(5_000, 5_000),
                        grid=grid,
                        config=ClientConfig(
                            heartbeat_interval=0.2,
                            read_timeout=1.0,
                            reconnect=ReconnectPolicy(
                                base_delay=0.05, max_delay=0.3
                            ),
                        ),
                    )
                    await client.start()
                    await client.subscribe(timeout=15.0)
                    return client

                slow_clients = list(
                    await asyncio.gather(*(connect_slow(i) for i in range(slow)))
                )
                proxy.throttle_downstream = CONN_THROTTLE

            async def read_all(client: ElapsNetworkClient) -> set:
                got: set = set()
                while got != expected:
                    try:
                        message = await client.receive(timeout=30.0)
                    except (asyncio.TimeoutError, OSError):
                        break
                    if message is None:
                        break
                    if isinstance(message, NotificationMessage):
                        event_id = message.event_id & 0xFFFFFFFF
                        if event_id not in got and event_id in publish_times:
                            latencies.append(loop.time() - publish_times[event_id])
                        got.add(event_id)
                return got

            readers = [asyncio.create_task(read_all(c)) for c in fast_clients]
            publisher = ElapsNetworkClient("127.0.0.1", tcp.port)
            await publisher.connect()
            for event_id in sorted(expected):
                publish_times[event_id] = loop.time()
                await publisher.publish(
                    event_id,
                    {"topic": "sale", "pad": CONN_PAD},
                    Point(5_100, 5_000),
                    ttl=100_000,
                )
                await asyncio.sleep(CONN_PACE)
            fast_results = await asyncio.wait_for(
                asyncio.gather(*readers), timeout=120.0
            )
            assert all(got == expected for got in fast_results), (
                "a fast reader missed part of the burst"
            )

            metrics = tcp.server.metrics
            if slow:
                # at least one throttled reader must have been cut loose
                deadline = loop.time() + 30.0
                while metrics.slow_consumer_disconnects == 0:
                    assert loop.time() < deadline, "no slow consumer was disconnected"
                    await asyncio.sleep(0.05)
                proxy.throttle_downstream = 0.0  # the network heals
                deadline = loop.time() + 120.0
                for client in slow_clients:
                    while {
                        e.event_id & 0xFFFFFFFF for e in client.events
                    } != expected:
                        assert loop.time() < deadline, "slow consumer failed to heal"
                        await asyncio.sleep(0.05)
                    ids = [e.event_id for e in client.events]
                    exactly_once &= len(ids) == len(set(ids)) == len(expected)
                    healed += 1

            await asyncio.gather(*(c.close() for c in fast_clients))
            await publisher.close()
            for client in slow_clients:
                await client.stop()
        row = {
            "mode": mode,
            "clients": CONN_CLIENTS,
            "slow_clients": slow,
            "events": CONN_EVENTS,
            "fast_deliveries": len(latencies),
            "fast_p50_ms": _percentile(latencies, 0.50) * 1e3,
            "fast_p99_ms": _percentile(latencies, 0.99) * 1e3,
            "fast_p99_seconds": _percentile(latencies, 0.99),
            "slow_consumer_disconnects": metrics.slow_consumer_disconnects,
            "resyncs": metrics.resyncs,
            "frames_shed": metrics.frames_shed,
            "superseded_region_ships": metrics.superseded_region_ships,
            "send_queue_high_water": metrics.send_queue_high_water,
            "healed_clients": healed,
            "exactly_once": exactly_once,
        }
        await tcp.stop()
        return row

    return asyncio.run(scenario())


def _percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    return ordered[int(q * (len(ordered) - 1))]


def _connection_scaling() -> List[Dict]:
    rows = []
    for mode, slow in (
        ("all_fast", 0),
        ("slow_25", int(CONN_CLIENTS * CONN_SLOW_SHARE)),
    ):
        rounds = [_connection_round(mode, slow) for _ in range(CONN_ROUNDS)]
        best = min(rounds, key=lambda r: r["fast_p99_seconds"])
        # latency takes the quietest round; correctness must hold in all
        best["exactly_once"] = all(r["exactly_once"] for r in rounds)
        best["healed_clients"] = min(r["healed_clients"] for r in rounds)
        best["send_queue_high_water"] = max(
            r["send_queue_high_water"] for r in rounds
        )
        best["rounds"] = CONN_ROUNDS
        rows.append(best)
    baseline = max(rows[0]["fast_p99_seconds"], CONN_P99_FLOOR)
    for row in rows:
        row["p99_ratio_vs_all_fast"] = row["fast_p99_seconds"] / baseline
    return rows


def _emit_json(
    population_rows: List[Dict],
    batch_rows: List[Dict],
    repair_rows: List[Dict],
    tracing_rows: List[Dict],
    tracing_overhead: float,
    span_summaries: Dict[str, Dict[str, float]],
    shard_rows: List[Dict],
    process_rows: List[Dict],
    rebalance_rows: List[Dict],
    recovery_rows: List[Dict],
    journal_overhead: float,
    recovery_curve_rows: List[Dict],
    construct_rows: List[Dict],
    match_rows: List[Dict],
    conn_rows: List[Dict],
) -> Dict:
    at_64 = next(r for r in batch_rows if r["batch_size"] == 64)
    rebuild = next(r for r in repair_rows if r["mode"] == "rebuild")
    repair = next(r for r in repair_rows if r["mode"] == "repair")
    sharded = next(r for r in shard_rows if r["shards"] == max(SHARD_COUNTS))
    adaptive = next(
        r for r in process_rows
        if r["executor"] == "process" and r["shards"] == PROC_SHARDS
    )
    static_threaded = next(
        r for r in process_rows
        if r["executor"] == "threaded" and r["shards"] == PROC_SHARDS
    )
    vec_at_top = next(
        r
        for r in construct_rows
        if r["strategy"] == "iGM-vec"
        and r["subscribers"] == max(CONSTRUCT_SUBSCRIBERS)
    )
    batched_match = next(
        r for r in match_rows if r["batch_size"] == MATCH_BATCH
    )
    match_speedup = batched_match["speedup_vs_per_event"]
    conn_fast = next(r for r in conn_rows if r["mode"] == "all_fast")
    conn_slow = next(r for r in conn_rows if r["mode"] == "slow_25")
    conn_baseline = max(conn_fast["fast_p99_seconds"], CONN_P99_FLOOR)
    # Amdahl over the sharded batch-64 bill: the non-matching share
    # splits across 4 shards, the matching residual is sped up by the
    # batched matcher — the raised algorithmic ceiling the residual
    # series buys the fleet.
    projected_ceiling = 1.0 / (
        MATCH_RESIDUAL_SHARE / match_speedup
        + (1.0 - MATCH_RESIDUAL_SHARE) / PROC_SHARDS
    )
    baseline_ceiling = 1.0 / (
        MATCH_RESIDUAL_SHARE + (1.0 - MATCH_RESIDUAL_SHARE) / PROC_SHARDS
    )
    payload = {
        "benchmark": "throughput",
        "schema_version": 9,
        "fast_mode": FAST,
        "config": {
            "space": [SPACE.x_min, SPACE.y_min, SPACE.x_max, SPACE.y_max],
            "corpus": CORPUS,
            "burst": BURST,
            "batch_subscribers": BATCH_SUBSCRIBERS,
            "populations": list(POPULATIONS),
            "batch_sizes": [1, *BATCH_SIZES],
            "shard_counts": list(SHARD_COUNTS),
            "shard_subscribers": SHARD_SUBSCRIBERS,
            "shard_radius": SHARD_RADIUS,
            "shard_corpus": SHARD_CORPUS,
            "process_shards": PROC_SHARDS,
            "process_grid": PROC_GRID_N,
            "process_corpus": PROC_CORPUS,
            "process_subscribers": PROC_SUBSCRIBERS,
            "process_radius": PROC_RADIUS,
            "process_warm": PROC_WARM,
            "process_burst": PROC_BURST,
            "process_hot_centers": [
                [center.x, center.y] for center in PROC_HOT_CENTERS
            ],
            "construct_subscribers": list(CONSTRUCT_SUBSCRIBERS),
            "construct_corpus": CONSTRUCT_CORPUS,
            "construct_burst": CONSTRUCT_BURST,
            "construct_radius": CONSTRUCT_RADIUS,
            "construct_max_cells": CONSTRUCT_MAX_CELLS,
            "match_subscribers": MATCH_SUBSCRIBERS,
            "match_burst": MATCH_BURST,
            "match_batch": MATCH_BATCH,
            "match_pool_words": MATCH_POOL_WORDS,
            "match_subscription_size": MATCH_SUBSCRIPTION_SIZE,
            "conn_clients": CONN_CLIENTS,
            "conn_slow_share": CONN_SLOW_SHARE,
            "conn_events": CONN_EVENTS,
            "conn_pace": CONN_PACE,
            "conn_send_queue": CONN_SEND_QUEUE,
            "conn_send_queue_hard": CONN_SEND_QUEUE_HARD,
            "conn_slow_consumer_grace": CONN_GRACE,
            "conn_write_buffer_limit": CONN_WRITE_BUFFER,
            "conn_throttle": CONN_THROTTLE,
        },
        "series": {
            "population_sweep": population_rows,
            "batch_comparison": batch_rows,
            "repair_sweep": repair_rows,
            "tracing_overhead": tracing_rows,
            "shard_scaling": shard_rows,
            "process_scaling": process_rows,
            "rebalance": rebalance_rows,
            "recovery_sweep": recovery_rows,
            "recovery_curve": recovery_curve_rows,
            "construct_sweep": construct_rows,
            "match_residual": match_rows,
            "connection_scaling": conn_rows,
        },
        #: per-stage latency digests of the traced batch-64 run; the
        #: full bucket vectors stay server-side (frame type 13)
        "span_histograms": span_summaries,
        "gate": {
            "required_speedup_at_batch_64": REQUIRED_SPEEDUP_AT_64,
            "measured_speedup_at_batch_64": at_64["speedup_vs_single"],
            "passed": at_64["speedup_vs_single"] >= REQUIRED_SPEEDUP_AT_64,
        },
        "repair_gate": {
            "required_speedup_vs_rebuild": REQUIRED_REPAIR_SPEEDUP,
            "measured_speedup_vs_rebuild": repair["speedup_vs_rebuild"],
            "wire_bytes_down_rebuild": rebuild["wire_bytes_down"],
            "wire_bytes_down_repair": repair["wire_bytes_down"],
            "passed": (
                repair["speedup_vs_rebuild"] >= REQUIRED_REPAIR_SPEEDUP
                and repair["wire_bytes_down"] < rebuild["wire_bytes_down"]
            ),
        },
        "tracing_gate": {
            "max_overhead": MAX_TRACING_OVERHEAD,
            "measured_overhead": tracing_overhead,
            "passed": tracing_overhead <= MAX_TRACING_OVERHEAD,
        },
        "shard_gate": {
            "shards": sharded["shards"],
            "required_speedup_vs_one_shard": REQUIRED_SHARD_SPEEDUP,
            "measured_speedup_vs_one_shard": sharded["speedup_vs_one_shard"],
            "passed": (
                sharded["speedup_vs_one_shard"] >= REQUIRED_SHARD_SPEEDUP
            ),
        },
        "process_gate": {
            "shards": PROC_SHARDS,
            "cores": os.cpu_count() or 1,
            "required_speedup_multicore": REQUIRED_PROCESS_SPEEDUP,
            "required_speedup_vs_one_shard": _process_required_speedup(),
            "measured_speedup_vs_one_shard": adaptive["speedup_vs_one_shard"],
            "rebalances": adaptive["rebalances"],
            "static_threaded_speedup": static_threaded["speedup_vs_one_shard"],
            "passed": (
                adaptive["speedup_vs_one_shard"]
                >= _process_required_speedup()
            ),
        },
        "recovery_gate": {
            "max_overhead": MAX_JOURNAL_OVERHEAD,
            "measured_overhead": journal_overhead,
            "passed": journal_overhead <= MAX_JOURNAL_OVERHEAD,
        },
        "construct_gate": {
            "subscribers": vec_at_top["subscribers"],
            "required_speedup_vs_scalar": REQUIRED_CONSTRUCT_SPEEDUP,
            "measured_speedup_vs_scalar": vec_at_top["speedup_vs_scalar"],
            "passed": (
                vec_at_top["speedup_vs_scalar"] >= REQUIRED_CONSTRUCT_SPEEDUP
            ),
        },
        "match_gate": {
            "batch_size": MATCH_BATCH,
            "required_speedup_vs_per_event": REQUIRED_MATCH_SPEEDUP,
            "measured_speedup_vs_per_event": match_speedup,
            "matching_share": MATCH_RESIDUAL_SHARE,
            "projected_shard_ceiling": projected_ceiling,
            "baseline_shard_ceiling": baseline_ceiling,
            "passed": match_speedup >= REQUIRED_MATCH_SPEEDUP,
        },
        "connection_gate": {
            "clients": CONN_CLIENTS,
            "slow_clients": conn_slow["slow_clients"],
            "required_p99_ratio": REQUIRED_CONN_P99_RATIO,
            "baseline_p99_floor_seconds": CONN_P99_FLOOR,
            "all_fast_p99_seconds": conn_fast["fast_p99_seconds"],
            "slow_25_fast_p99_seconds": conn_slow["fast_p99_seconds"],
            "measured_p99_ratio": conn_slow["fast_p99_seconds"] / conn_baseline,
            "send_queue_hard_cap": CONN_SEND_QUEUE_HARD,
            "send_queue_high_water": conn_slow["send_queue_high_water"],
            "slow_consumer_disconnects": conn_slow["slow_consumer_disconnects"],
            "resyncs": conn_slow["resyncs"],
            "healed_clients": conn_slow["healed_clients"],
            "exactly_once_after_resync": conn_slow["exactly_once"],
            "passed": (
                conn_slow["fast_p99_seconds"]
                <= REQUIRED_CONN_P99_RATIO * conn_baseline
                and conn_slow["send_queue_high_water"] <= CONN_SEND_QUEUE_HARD
                and conn_slow["slow_consumer_disconnects"] >= 1
                and conn_slow["healed_clients"] == conn_slow["slow_clients"]
                and conn_slow["exactly_once"]
            ),
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _run(slow_threshold=None):
    generator = TwitterLikeGenerator(SPACE, seed=37)
    burst = generator.events(BURST, start_id=10_000_000, seed_offset=7)
    population_rows = _population_sweep(generator, burst)
    batch_rows = _batch_comparison(generator, burst)
    repair_rows = _repair_comparison(generator, burst)
    tracing_rows, tracing_overhead, span_summaries = _tracing_overhead(
        generator, burst, slow_threshold
    )
    shard_rows = _shard_scaling(generator)
    skewed = _skewed_generator()
    process_rows = _process_scaling(skewed)
    rebalance_rows = _rebalance_series(skewed)
    with tempfile.TemporaryDirectory(prefix="repro-bench-journal-") as tmp:
        workdir = pathlib.Path(tmp)
        recovery_rows, journal_overhead = _journal_overhead(
            generator, burst, workdir
        )
        recovery_curve_rows = _recovery_curve(generator, burst, workdir)
    construct_rows = _construct_sweep(generator)
    match_rows = _match_residual(generator)
    conn_rows = _connection_scaling()
    return (
        population_rows,
        batch_rows,
        repair_rows,
        tracing_rows,
        tracing_overhead,
        span_summaries,
        shard_rows,
        process_rows,
        rebalance_rows,
        recovery_rows,
        journal_overhead,
        recovery_curve_rows,
        construct_rows,
        match_rows,
        conn_rows,
    )


def test_publish_throughput(benchmark, report, profiled, stats_options):
    print_stats, slow_threshold = stats_options
    (
        population_rows,
        batch_rows,
        repair_rows,
        tracing_rows,
        tracing_overhead,
        span_summaries,
        shard_rows,
        process_rows,
        rebalance_rows,
        recovery_rows,
        journal_overhead,
        recovery_curve_rows,
        construct_rows,
        match_rows,
        conn_rows,
    ) = benchmark.pedantic(
        profiled("throughput", _run),
        args=(slow_threshold,),
        rounds=1,
        iterations=1,
    )
    payload = _emit_json(
        population_rows,
        batch_rows,
        repair_rows,
        tracing_rows,
        tracing_overhead,
        span_summaries,
        shard_rows,
        process_rows,
        rebalance_rows,
        recovery_rows,
        journal_overhead,
        recovery_curve_rows,
        construct_rows,
        match_rows,
        conn_rows,
    )
    report(
        "throughput",
        format_table(
            population_rows,
            ("subscribers", "events", "notifications", "events_per_second"),
            "Publish throughput (events/s through the full server)",
        )
        + "\n"
        + format_table(
            batch_rows,
            (
                "mode",
                "batch_size",
                "events_per_second",
                "speedup_vs_single",
                "constructions",
                "event_arrival_rounds",
            ),
            f"Batched vs single publish ({BATCH_SUBSCRIBERS} subscribers)",
        )
        + "\n"
        + format_table(
            repair_rows,
            (
                "mode",
                "events_per_second",
                "speedup_vs_rebuild",
                "constructions",
                "repairs",
                "repair_fallbacks",
                "wire_bytes_down",
            ),
            f"Repair vs always-rebuild ({BATCH_SUBSCRIBERS} subscribers, bytes measured)",
        )
        + "\n"
        + format_table(
            tracing_rows,
            (
                "mode",
                "batch_size",
                "events_per_second",
                "overhead_vs_untraced",
            ),
            f"Span tracing overhead (best of {OVERHEAD_ROUNDS} rounds per mode)",
        )
        + "\n"
        + format_table(
            shard_rows,
            (
                "shards",
                "executor",
                "events_per_second",
                "speedup_vs_one_shard",
                "multi_homed",
                "notifications",
            ),
            f"Shard scaling, batch-{BATCH_SIZES[-1]} "
            f"({SHARD_SUBSCRIBERS} subscribers, radius {SHARD_RADIUS:.0f}, "
            f"best of {SHARD_ROUNDS} rounds)",
        )
        + "\n"
        + format_table(
            process_rows,
            (
                "executor",
                "shards",
                "rebalance",
                "rebalances",
                "events_per_second",
                "speedup_vs_one_shard",
                "multi_homed",
            ),
            f"Process-fleet scaling on the skewed burst "
            f"({PROC_SUBSCRIBERS} subscribers, radius {PROC_RADIUS:.0f}, "
            f"best of {PROC_ROUNDS} rounds)",
        )
        + "\n"
        + format_table(
            rebalance_rows,
            ("mode", "rebalances", "imbalance", "bounds"),
            "Load-adaptive repartitioning on the skewed stream",
        )
        + "\n"
        + format_table(
            recovery_rows,
            (
                "mode",
                "batch_size",
                "events_per_second",
                "overhead_vs_plain",
            ),
            f"Journaling overhead (best of {OVERHEAD_ROUNDS} rounds per mode)",
        )
        + "\n"
        + format_table(
            recovery_curve_rows,
            ("fraction", "records", "recover_seconds", "records_per_second"),
            "Cold-restart recovery (journal replay)",
        )
        + "\n"
        + format_table(
            construct_rows,
            (
                "strategy",
                "subscribers",
                "events_per_second",
                "speedup_vs_scalar",
                "constructions",
                "notifications",
            ),
            f"Construct sweep, scalar vs vectorized iGM (repair off, "
            f"radius {CONSTRUCT_RADIUS:.0f}, best of {CONSTRUCT_ROUNDS} rounds)",
        )
        + "\n"
        + format_table(
            match_rows,
            (
                "mode",
                "batch_size",
                "events_per_second",
                "speedup_vs_per_event",
                "matched_pairs",
            ),
            f"Match residual, per-event vs batch-{MATCH_BATCH} OpIndex "
            f"({MATCH_SUBSCRIBERS} subscribers, best of {MATCH_ROUNDS} rounds)",
        )
        + "\n"
        + format_table(
            conn_rows,
            (
                "mode",
                "clients",
                "slow_clients",
                "fast_p99_ms",
                "p99_ratio_vs_all_fast",
                "send_queue_high_water",
                "slow_consumer_disconnects",
                "resyncs",
                "healed_clients",
            ),
            f"Connection scaling, {CONN_CLIENTS} subscribers "
            f"({CONN_EVENTS} events, paced {CONN_PACE * 1e3:.0f} ms, "
            f"slow quarter throttled to {1 / CONN_THROTTLE:.0f} frames/s, "
            f"best of {CONN_ROUNDS} rounds)",
        ),
    )
    if print_stats and span_summaries:
        print("\nper-stage latency (traced batch-64 run)")
        print(f"{'stage':<16} {'count':>9} {'p50 ms':>10} {'p95 ms':>10} "
              f"{'p99 ms':>10} {'total s':>10}")
        for stage, digest in span_summaries.items():
            print(
                f"{stage:<16} {digest['count']:>9} {digest['p50'] * 1e3:>10.3f} "
                f"{digest['p95'] * 1e3:>10.3f} {digest['p99'] * 1e3:>10.3f} "
                f"{digest['total_seconds']:>10.3f}"
            )
    by = {r["subscribers"]: r for r in population_rows}
    # the empty server bounds the pure index cost; it must be brisk even
    # in pure Python
    assert by[0]["events_per_second"] > 500
    # with a full subscriber population the server must still outrun the
    # paper's heaviest stream (500 events per 5 s timestamp = 100 ev/s)
    assert by[POPULATIONS[-1]]["events_per_second"] > 100
    # the regression gate the ISSUE added: batching must actually pay
    assert payload["gate"]["passed"], payload["gate"]
    # and repair must beat always-rebuild on both time and wire bytes
    assert payload["repair_gate"]["passed"], payload["repair_gate"]
    # the traced batch path must record real spans, near-free
    assert span_summaries, "traced run recorded no spans"
    assert payload["tracing_gate"]["passed"], payload["tracing_gate"]
    # spatial partitioning must pay for itself even without real threads
    assert payload["shard_gate"]["passed"], payload["shard_gate"]
    # the load-adaptive process fleet must recover the slicing win on the
    # skewed burst that stalls the static partition
    assert payload["process_gate"]["passed"], payload["process_gate"]
    # the policy must have actually fired and flattened the band loads
    adaptive_row = next(r for r in rebalance_rows if r["mode"] == "adaptive")
    static_row = next(r for r in rebalance_rows if r["mode"] == "static")
    assert adaptive_row["rebalances"] >= 1, adaptive_row
    assert adaptive_row["imbalance"] < static_row["imbalance"], rebalance_rows
    # durability must be near-free on the publish hot path, and the
    # recovery curve must have actually replayed real records
    assert payload["recovery_gate"]["passed"], payload["recovery_gate"]
    assert all(r["records"] > 0 for r in recovery_curve_rows)
    # the vectorized construction core must actually pay where it claims
    # to: at least 3x scalar events/sec on the construction-bound sweep
    assert payload["construct_gate"]["passed"], payload["construct_gate"]
    # and the sweep must have exercised real construction work
    assert all(r["constructions"] > 0 for r in construct_rows)
    # batched OpIndex matching must beat the per-event path on pure
    # boolean matching (deliveries already asserted identical in-series)
    assert payload["match_gate"]["passed"], payload["match_gate"]
    assert all(r["matched_pairs"] > 0 for r in match_rows)
    # bounded send queues must isolate fast readers from slow consumers,
    # cap queue memory, and heal every disconnected reader exactly-once
    assert payload["connection_gate"]["passed"], payload["connection_gate"]
    assert all(r["fast_deliveries"] > 0 for r in conn_rows)
