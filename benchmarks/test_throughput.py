"""End-to-end publish throughput (system claim, not a paper figure).

The paper's bottom line is that Elaps "disseminates events to users in
real-time": the publish path — subscription-index match, impact-index
lookup, the occasional ping/rebuild — must keep up with the stream.
This bench pushes a burst of events through a fully loaded server and
reports events/second, with and without subscribers to separate the
index cost from the subscriber-handling cost.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.core import IGM
from repro.datasets import TwitterLikeGenerator
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree, SubscriptionIndex
from repro.system import ElapsServer

from config import FAST, format_table

SPACE = Rect(0, 0, 50_000, 50_000)
BURST = 500 if FAST else 2_000
CORPUS = 2_000 if FAST else 6_000
POPULATIONS = (0, 10, 50) if FAST else (0, 25, 100)


def _loaded_server(generator, subscriber_count: int) -> ElapsServer:
    server = ElapsServer(
        Grid(120, SPACE),
        IGM(max_cells=2_500),
        event_index=BEQTree(SPACE, emax=512),
        subscription_index=SubscriptionIndex(generator.frequency_hint()),
        initial_rate=20.0,
    )
    server.bootstrap(generator.events(CORPUS))
    subscriptions = generator.subscriptions(subscriber_count, size=3)
    anchors = generator.events(subscriber_count, seed_offset=3)
    for subscription, anchor in zip(subscriptions, anchors):
        server.subscribe(subscription, anchor.location, Point(60, 10), now=0)
    # stationary clients: the locator answers with the subscribe position
    positions = {s.sub_id: a.location for s, a in zip(subscriptions, anchors)}
    server.locator = lambda sub_id: (positions[sub_id], Point(60, 10))
    return server


def _run() -> List[Dict]:
    generator = TwitterLikeGenerator(SPACE, seed=37)
    burst = generator.events(BURST, start_id=10_000_000, seed_offset=7)
    rows: List[Dict] = []
    for population in POPULATIONS:
        server = _loaded_server(generator, population)
        started = time.perf_counter()
        notifications = 0
        for t, event in enumerate(burst, start=1):
            notifications += len(server.publish(event, now=t))
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "subscribers": population,
                "events": BURST,
                "notifications": notifications,
                "events_per_second": BURST / elapsed,
            }
        )
    return rows


def test_publish_throughput(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "throughput",
        format_table(
            rows,
            ("subscribers", "events", "notifications", "events_per_second"),
            "Publish throughput (events/s through the full server)",
        ),
    )
    by = {r["subscribers"]: r for r in rows}
    # the empty server bounds the pure index cost; it must be brisk even
    # in pure Python
    assert by[0]["events_per_second"] > 500
    # with a full subscriber population the server must still outrun the
    # paper's heaviest stream (500 events per 5 s timestamp = 100 ev/s)
    assert by[POPULATIONS[-1]]["events_per_second"] > 100