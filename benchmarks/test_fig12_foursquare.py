"""Figure 12 (Appendix D.2): communication I/O on the Foursquare workload.

The same three sweeps as Figure 7(a-c) — arrival rate, speed, radius —
but over venue-style schema-rich events.  The paper reports the same
ordering as on Twitter: iGM/idGM cut the event-arrival channel by an
order of magnitude and match GM on location updates.
"""

from __future__ import annotations

from config import (
    DEFAULTS,
    F_SWEEP,
    R_SWEEP,
    V_SWEEP,
    communication_sweep,
    format_table,
)

FOURSQUARE = DEFAULTS.with_(dataset="foursquare", initial_events=DEFAULTS.initial_events // 2)
COLUMNS = ("strategy", "location_update", "event_arrival", "total")


def _run(report, benchmark, name, parameter, values):
    rows = benchmark.pedantic(
        lambda: communication_sweep(FOURSQUARE, parameter, values),
        rounds=1,
        iterations=1,
    )
    report(name, format_table(rows, (parameter,) + COLUMNS, f"Figure {name} (Foursquare)"))
    return rows


def test_fig12a_event_rate(benchmark, report):
    rows = _run(report, benchmark, "fig12a", "event_rate", F_SWEEP)
    by = {(r["event_rate"], r["strategy"]): r for r in rows}
    top = max(F_SWEEP)
    assert by[(top, "iGM")]["event_arrival"] < by[(top, "GM")]["event_arrival"]
    assert by[(top, "iGM")]["total"] < by[(top, "GM")]["total"]


def test_fig12b_speed(benchmark, report):
    rows = _run(report, benchmark, "fig12b", "speed", V_SWEEP)
    by = {(r["speed"], r["strategy"]): r for r in rows}
    assert (
        by[(V_SWEEP[-1], "iGM")]["location_update"]
        >= by[(V_SWEEP[0], "iGM")]["location_update"]
    )


def test_fig12c_radius(benchmark, report):
    rows = _run(report, benchmark, "fig12c", "radius", R_SWEEP)
    by = {(r["radius"], r["strategy"]): r for r in rows}
    assert (
        by[(R_SWEEP[-1], "GM")]["location_update"]
        >= by[(R_SWEEP[0], "GM")]["location_update"]
    )
