"""End-to-end integration: the full simulation must be deterministic,
deliver every matching event (the paper's real-time guarantee), and the
three matching modes must agree on communication behaviour."""

from __future__ import annotations

import pytest

from repro.system import ExperimentConfig, build_simulation, run_experiment

SMALL = ExperimentConfig(
    initial_events=2500,
    subscribers=6,
    timestamps=50,
    event_rate=4.0,
    grid_n=80,
    max_cells=1200,
)


class TestDeliveryGuarantee:
    @pytest.mark.parametrize("strategy", ["iGM", "idGM", "VM", "GM"])
    def test_no_missed_notifications(self, strategy):
        mode = "cached" if strategy in ("VM", "GM") else "ondemand"
        simulation = build_simulation(SMALL.with_(strategy=strategy, matching_mode=mode))
        simulation.run(SMALL.timestamps)
        assert simulation.verify_no_missed_notifications() == []

    def test_no_missed_with_expiring_events(self):
        simulation = build_simulation(SMALL.with_(event_ttl=10))
        simulation.run(SMALL.timestamps)
        assert simulation.verify_no_missed_notifications() == []

    def test_no_missed_on_taxi_movement(self):
        simulation = build_simulation(SMALL.with_(movement="taxi"))
        simulation.run(SMALL.timestamps)
        assert simulation.verify_no_missed_notifications() == []

    def test_no_missed_on_foursquare(self):
        simulation = build_simulation(SMALL.with_(dataset="foursquare", initial_events=1200))
        simulation.run(SMALL.timestamps)
        assert simulation.verify_no_missed_notifications() == []


class TestDeterminism:
    def test_same_seed_same_run(self):
        a = run_experiment(SMALL)
        b = run_experiment(SMALL)
        assert a.per_subscriber() == b.per_subscriber()
        assert a.notification_count == b.notification_count

    def test_different_seed_differs(self):
        a = run_experiment(SMALL)
        b = run_experiment(SMALL.with_(seed=99))
        assert a.per_subscriber() != b.per_subscriber()


class TestMatchingModesAgree:
    @pytest.mark.parametrize("strategy", ["iGM", "VM", "GM"])
    def test_modes_identical_communication(self, strategy):
        """'ondemand', 'full' and 'cached' change server work, never the
        client-visible behaviour."""
        outcomes = []
        for mode in ("ondemand", "full", "cached"):
            result = run_experiment(SMALL.with_(strategy=strategy, matching_mode=mode))
            outcomes.append(
                (
                    result.stats.location_update_rounds,
                    result.stats.event_arrival_rounds,
                    result.stats.notifications,
                    result.notification_count,
                )
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]


class TestResultAccounting:
    def test_per_subscriber_division(self):
        result = run_experiment(SMALL)
        per = result.per_subscriber()
        assert per["total"] == pytest.approx(
            result.stats.total_rounds / SMALL.subscribers
        )
        assert per["total"] == per["location_update"] + per["event_arrival"]

    def test_notifications_counted_once(self):
        result = run_experiment(SMALL)
        assert result.notification_count == result.stats.notifications

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            run_experiment(SMALL.with_(strategy="nope"))
        with pytest.raises(ValueError):
            run_experiment(SMALL.with_(dataset="nope"))
        with pytest.raises(ValueError):
            run_experiment(SMALL.with_(movement="nope"))


class TestCostModelResponses:
    def test_higher_event_rate_increases_baseline_event_channel(self):
        """GM's event-arrival channel must scale with f (the paper's core
        observation motivating the cost model)."""
        low = run_experiment(SMALL.with_(strategy="GM", matching_mode="cached", event_rate=2.0))
        high = run_experiment(SMALL.with_(strategy="GM", matching_mode="cached", event_rate=16.0))
        assert high.stats.event_arrival_rounds > low.stats.event_arrival_rounds

    def test_igm_beats_gm_in_total_io_at_high_rate(self):
        config = SMALL.with_(event_rate=16.0, timestamps=80)
        igm = run_experiment(config.with_(strategy="iGM"))
        gm = run_experiment(config.with_(strategy="GM", matching_mode="cached"))
        assert igm.stats.total_rounds < gm.stats.total_rounds
