"""The fault-injection subsystem itself: determinism, config sanity,
and each fault kind observed end-to-end through the chaos proxy."""

from __future__ import annotations

import asyncio

import pytest

from repro.core import IGM
from repro.expressions import BooleanExpression, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree
from repro.system import NetworkConfig, ServerConfig, ElapsServer
from repro.system.network import ElapsNetworkClient, ElapsTCPServer
from repro.system.protocol import SafeRegionPush, SubscribeMessage
from repro.testing import ChaosProxy, FaultConfig, FaultInjector, FaultKind, chaos_proxy

SPACE = Rect(0, 0, 10_000, 10_000)


def make_tcp_server(**kwargs) -> ElapsTCPServer:
    server = ElapsServer(
        Grid(40, SPACE),
        IGM(max_cells=400),
        ServerConfig(initial_rate=1.0),
        event_index=BEQTree(SPACE, emax=32))
    kwargs.setdefault("read_timeout", 1.0)
    config = NetworkConfig().with_(**kwargs)
    return ElapsTCPServer(server, port=0, timestamp_seconds=0.05, config=config)


def make_sub(sub_id=1):
    return Subscription(
        sub_id,
        BooleanExpression([Predicate("topic", Operator.EQ, "sale")]),
        radius=1_500.0,
    )


def subscribe_message(sub_id=1):
    sub = make_sub(sub_id)
    return SubscribeMessage(
        sub.sub_id, sub.radius, sub.expression, Point(5_000, 5_000), Point(40, 0)
    )


class TestFaultConfig:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultConfig(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(reset_rate=-0.1)

    def test_exclusive_rates_bounded(self):
        with pytest.raises(ValueError):
            FaultConfig(drop_rate=0.6, corrupt_rate=0.6)
        # delay is drawn independently and may push the sum past 1
        FaultConfig(drop_rate=0.6, delay_rate=0.9)

    def test_delay_window_ordered(self):
        with pytest.raises(ValueError):
            FaultConfig(delay_min=0.5, delay_max=0.1)


class TestFaultInjector:
    CONFIG = FaultConfig(
        seed=42,
        drop_rate=0.2,
        duplicate_rate=0.1,
        corrupt_rate=0.1,
        truncate_rate=0.1,
        reset_rate=0.05,
        delay_rate=0.3,
    )

    def test_same_seed_same_sequence(self):
        a = FaultInjector(self.CONFIG, stream_id=3)
        b = FaultInjector(self.CONFIG, stream_id=3)
        assert [a.decide(100) for _ in range(200)] == [
            b.decide(100) for _ in range(200)
        ]

    def test_streams_are_decorrelated(self):
        a = FaultInjector(self.CONFIG, stream_id=0)
        b = FaultInjector(self.CONFIG, stream_id=1)
        assert [a.decide(100) for _ in range(50)] != [
            b.decide(100) for _ in range(50)
        ]

    def test_zero_config_always_passes(self):
        injector = FaultInjector(FaultConfig(seed=1), stream_id=0)
        for _ in range(100):
            action = injector.decide(64)
            assert action.kind is FaultKind.PASS
            assert action.delay == 0.0

    def test_corrupt_actions_stay_in_frame(self):
        injector = FaultInjector(FaultConfig(seed=9, corrupt_rate=1.0), 0)
        for _ in range(100):
            action = injector.decide(17)
            assert action.kind is FaultKind.CORRUPT
            assert 0 <= action.index < 17
            assert 1 <= action.mask <= 255

    def test_truncate_keeps_a_proper_prefix(self):
        injector = FaultInjector(FaultConfig(seed=9, truncate_rate=1.0), 0)
        for _ in range(100):
            action = injector.decide(40)
            assert action.kind is FaultKind.TRUNCATE
            assert 1 <= action.index < 40


class TestChaosProxyEndToEnd:
    def test_pass_through_is_transparent(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            async with chaos_proxy("127.0.0.1", tcp.port, FaultConfig(seed=5)) as proxy:
                client = ElapsNetworkClient("127.0.0.1", proxy.port)
                await client.connect()
                received = await client.subscribe(
                    make_sub(), Point(5_000, 5_000), Point(40, 0)
                )
                assert isinstance(received[-1], SafeRegionPush)
                assert proxy.stats.injected == 0
                await client.close()
            await tcp.stop()

        asyncio.run(scenario())

    def test_dropped_subscribe_never_reaches_server(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            config = FaultConfig(seed=5, drop_rate=1.0, downstream=False)
            async with chaos_proxy("127.0.0.1", tcp.port, config) as proxy:
                client = ElapsNetworkClient("127.0.0.1", proxy.port)
                await client.connect()
                await client.send(subscribe_message())
                await asyncio.sleep(0.3)
                assert 1 not in tcp.server.subscribers
                assert proxy.stats.dropped >= 1
                await client.close()
            await tcp.stop()

        asyncio.run(scenario())

    def test_duplicated_subscribe_counts_as_resubscribe(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            config = FaultConfig(seed=5, duplicate_rate=1.0, downstream=False)
            async with chaos_proxy("127.0.0.1", tcp.port, config) as proxy:
                client = ElapsNetworkClient("127.0.0.1", proxy.port)
                await client.connect()
                await client.send(subscribe_message())
                await asyncio.sleep(0.3)
                assert tcp.server.metrics.resubscribes == 1
                assert proxy.stats.duplicated >= 1
                await client.close()
            await tcp.stop()

        asyncio.run(scenario())

    def test_reset_fault_aborts_both_sides(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            config = FaultConfig(seed=5, reset_rate=1.0, downstream=False)
            async with chaos_proxy("127.0.0.1", tcp.port, config) as proxy:
                client = ElapsNetworkClient("127.0.0.1", proxy.port)
                await client.connect()
                await client.send(subscribe_message())
                # depending on how the abort lands, the client sees either
                # an ECONNRESET-style error or a bare EOF — both prove it
                try:
                    message = await client.receive(timeout=1.0)
                    assert message is None
                except (ConnectionError, asyncio.IncompleteReadError, OSError):
                    pass
                await asyncio.sleep(0.2)
                assert proxy.stats.resets == 1
                await client.close()
            await tcp.stop()

        asyncio.run(scenario())

    def test_corrupted_frame_is_rejected_by_server(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            config = FaultConfig(seed=11, corrupt_rate=1.0, downstream=False)
            async with chaos_proxy("127.0.0.1", tcp.port, config) as proxy:
                client = ElapsNetworkClient("127.0.0.1", proxy.port)
                await client.connect()
                await client.send(subscribe_message())
                await asyncio.sleep(0.5)
                # either the payload failed to decode/validate, or a
                # mangled length stalled the reader into its timeout
                metrics = tcp.server.metrics
                assert (
                    metrics.malformed_frames
                    + metrics.read_timeouts
                    + metrics.connection_resets
                    >= 1
                    or proxy.stats.corrupted >= 1
                )
                await client.close()
            await tcp.stop()

        asyncio.run(scenario())

    def test_disabled_proxy_relays_faithfully(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            config = FaultConfig(seed=5, drop_rate=1.0)
            proxy = ChaosProxy("127.0.0.1", tcp.port, config)
            await proxy.start()
            proxy.enabled = False
            client = ElapsNetworkClient("127.0.0.1", proxy.port)
            await client.connect()
            received = await client.subscribe(
                make_sub(), Point(5_000, 5_000), Point(40, 0)
            )
            assert isinstance(received[-1], SafeRegionPush)
            assert proxy.stats.frames == 0
            await client.close()
            await proxy.stop()
            await tcp.stop()

        asyncio.run(scenario())
