"""Wire protocol: frame round-trips for every message type, expression
serialisation including DNF, and size accounting."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bitmap import WAHBitmap
from repro.expressions import BooleanExpression, DnfExpression, Operator, Predicate
from repro.geometry import Point
from repro.system.protocol import (
    LocationPing,
    LocationReport,
    NotificationMessage,
    SafeRegionDelta,
    SafeRegionPush,
    StatsRequest,
    StatsSnapshot,
    SubscribeMessage,
    UnsubscribeMessage,
    cells_from_delta,
    decode_expression,
    decode_message,
    encode_expression,
    encode_message,
    message_bytes,
    region_delta_for,
)


def expr():
    return BooleanExpression([
        Predicate("name", Operator.EQ, "shoes"),
        Predicate("price", Operator.LT, 1000),
        Predicate("size", Operator.BETWEEN, (40, 46)),
        Predicate("color", Operator.IN, frozenset({"red", "black"})),
    ])


class TestExpressionCodec:
    def test_conjunction_roundtrip(self):
        encoded = encode_expression(expr())
        decoded, offset = decode_expression(encoded)
        assert offset == len(encoded)
        assert isinstance(decoded, BooleanExpression)
        assert {str(p) for p in decoded} == {str(p) for p in expr()}

    def test_dnf_roundtrip(self):
        dnf = DnfExpression([
            BooleanExpression([Predicate("a", Operator.GE, 1)]),
            BooleanExpression([Predicate("b", Operator.NE, "x"),
                               Predicate("c", Operator.NOT_IN, frozenset({1, 2}))]),
        ])
        decoded, _ = decode_expression(encode_expression(dnf))
        assert isinstance(decoded, DnfExpression)
        assert len(decoded.clauses) == 2
        assert decoded.matches({"a": 5})
        assert decoded.matches({"b": "y", "c": 3})
        assert not decoded.matches({"b": "x", "c": 3})

    def test_float_operand_roundtrip(self):
        expression = BooleanExpression([Predicate("rating", Operator.GE, 7.5)])
        decoded, _ = decode_expression(encode_expression(expression))
        assert decoded.predicates[0].operand == 7.5


MESSAGES = [
    SubscribeMessage(7, 2_000.0, expr(), Point(1.5, 2.5), Point(60.0, -3.0)),
    UnsubscribeMessage(7),
    LocationReport(7, Point(10.0, 20.0), Point(1.0, 2.0)),
    LocationPing(7),
    SafeRegionPush(7, 120, False, WAHBitmap.from_positions([1, 2, 3, 700], 16_384)),
    SafeRegionPush(8, 120, True, WAHBitmap.from_positions([], 16_384)),
    SafeRegionDelta(7, 120, WAHBitmap.from_positions([4, 5, 1_023], 16_384)),
    NotificationMessage(7, 99, Point(5.0, 6.0),
                        (("name", "shoes"), ("price", 899), ("rating", 4.5))),
    StatsRequest(),
    StatsSnapshot(
        counters=(("notifications", 42), ("server_seconds", 0.125),
                  ("bytes_measured", 1)),
        spans=(("match", (3, 0, 1) + (0,) * 25, 0.0075),
               ("ship", (0,) * 28, 0.0)),
    ),
]


class TestMessageFraming:
    @pytest.mark.parametrize("message", MESSAGES, ids=lambda m: type(m).__name__)
    def test_roundtrip(self, message):
        assert decode_message(encode_message(message)) == message

    def test_truncated_frame_rejected(self):
        frame = encode_message(LocationPing(7))
        with pytest.raises(ValueError):
            decode_message(frame[:-1])

    def test_trailing_bytes_rejected(self):
        frame = encode_message(LocationPing(7))
        with pytest.raises(ValueError):
            decode_message(frame + b"\x00")

    def test_unknown_type_rejected(self):
        frame = bytearray(encode_message(LocationPing(7)))
        frame[0] = 99
        with pytest.raises(ValueError):
            decode_message(bytes(frame))

    def test_message_bytes_matches_encoding(self):
        for message in MESSAGES:
            assert message_bytes(message) == len(encode_message(message))

    def test_ping_is_tiny(self):
        # the event-arrival ping is the most frequent server->client
        # message; it must stay minimal
        assert message_bytes(LocationPing(7)) <= 16

    def test_region_delta_roundtrip_recovers_the_removed_cells(self):
        from repro.geometry import Grid, Rect

        grid = Grid(40, Rect(0, 0, 10_000, 10_000))
        removed = frozenset({(3, 7), (3, 8), (4, 7), (39, 39)})
        delta = region_delta_for(7, grid, removed)
        assert decode_message(encode_message(delta)) == delta
        assert cells_from_delta(delta, grid) == removed

    def test_region_delta_rejects_grid_mismatch(self):
        from repro.geometry import Grid, Rect

        grid = Grid(40, Rect(0, 0, 10_000, 10_000))
        delta = region_delta_for(7, grid, {(1, 1)})
        with pytest.raises(ValueError):
            cells_from_delta(delta, Grid(80, Rect(0, 0, 10_000, 10_000)))

    def test_region_delta_much_smaller_than_full_push(self):
        # the whole point: carving a few cells must not cost a region
        from repro.core import SafeRegion
        from repro.geometry import Grid, Rect
        from repro.system.protocol import region_push_for

        grid = Grid(40, Rect(0, 0, 10_000, 10_000))
        region = SafeRegion(
            grid, frozenset((i, j) for i in range(10, 30) for j in range(10, 30))
        )
        delta = region_delta_for(7, grid, {(10, 10), (10, 11)})
        assert message_bytes(delta) < message_bytes(region_push_for(7, region))

    def test_safe_region_push_dominated_by_bitmap(self):
        dense = SafeRegionPush(
            7, 120, False, WAHBitmap.from_positions(range(0, 10_000, 2), 16_384)
        )
        sparse = SafeRegionPush(
            7, 120, False, WAHBitmap.from_positions(range(100), 16_384)
        )
        assert message_bytes(dense) > message_bytes(sparse)


class TestStatsMessages:
    def test_stats_request_rejects_payload(self):
        with pytest.raises(ValueError):
            StatsRequest.decode_payload(b"\x00")

    def test_snapshot_counters_dict(self):
        snapshot = next(m for m in MESSAGES if isinstance(m, StatsSnapshot))
        counters = snapshot.counters_dict()
        assert counters["notifications"] == 42
        assert counters["server_seconds"] == 0.125

    def test_snapshot_histograms_reconstruct(self):
        snapshot = next(m for m in MESSAGES if isinstance(m, StatsSnapshot))
        histograms = snapshot.histograms()
        match = histograms["match"]
        assert match.count == 4
        assert match.total_seconds == 0.0075
        assert histograms["ship"].count == 0

    def test_snapshot_for_live_registry(self):
        from repro.system.metrics import CommunicationStats
        from repro.system.observability import MetricsRegistry
        from repro.system.protocol import stats_snapshot_for

        registry = MetricsRegistry(CommunicationStats())
        registry.stats.notifications = 9
        with registry.tracer.span("match"):
            pass
        snapshot = stats_snapshot_for(registry)
        assert decode_message(encode_message(snapshot)) == snapshot
        assert snapshot.counters_dict() == registry.stats.as_dict()
        assert snapshot.histograms()["match"].count == 1


@given(
    sub_id=st.integers(min_value=0, max_value=2**63 - 1),
    x=st.floats(allow_nan=False, allow_infinity=False, width=32),
    y=st.floats(allow_nan=False, allow_infinity=False, width=32),
)
def test_property_location_report_roundtrip(sub_id, x, y):
    message = LocationReport(sub_id, Point(x, y), Point(0.0, 0.0))
    assert decode_message(encode_message(message)) == message


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_property_notification_roundtrip(data):
    attributes = tuple(
        (f"a{i}", data.draw(st.one_of(
            st.integers(min_value=-1000, max_value=1000),
            st.text(max_size=8),
        )))
        for i in range(data.draw(st.integers(0, 5)))
    )
    message = NotificationMessage(1, 2, Point(0.0, 0.0), attributes)
    assert decode_message(encode_message(message)) == message
