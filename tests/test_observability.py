"""Observability: histogram bucketing and percentiles, bucket-wise
merging, span tracing (enabled, disabled, slow-span reporting), the
unified registry, and the Prometheus text exporter."""

from __future__ import annotations

import logging
import math

import pytest
from hypothesis import given, strategies as st

from repro.system.metrics import CommunicationStats
from repro.system.observability import (
    BUCKET_BOUNDS,
    LatencyHistogram,
    MetricsRegistry,
    SpanTracer,
    render_prometheus,
)


class TestBucketing:
    def test_sub_microsecond_lands_in_first_bucket(self):
        histogram = LatencyHistogram()
        histogram.record(1e-9)
        histogram.record(1e-6)  # the first bound is inclusive
        histogram.record(0.0)
        assert histogram.counts[0] == 3

    def test_powers_of_two_are_inclusive_upper_bounds(self):
        # bucket i covers (bounds[i-1], bounds[i]]: an observation equal
        # to a bound belongs to that bound's bucket, not the next one
        for index, bound in enumerate(BUCKET_BOUNDS):
            histogram = LatencyHistogram()
            histogram.record(bound)
            assert histogram.counts[index] == 1, (index, bound)

    def test_just_above_a_bound_spills_to_the_next_bucket(self):
        histogram = LatencyHistogram()
        histogram.record(BUCKET_BOUNDS[3] * 1.01)
        assert histogram.counts[4] == 1

    def test_huge_observation_lands_in_overflow(self):
        histogram = LatencyHistogram()
        histogram.record(1e6)  # eleven days
        assert histogram.counts[-1] == 1
        assert histogram.count == 1

    def test_wrong_bucket_count_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(counts=[0, 0, 0])

    @given(st.floats(min_value=1e-9, max_value=1e5))
    def test_property_every_observation_lands_in_exactly_one_bucket(self, value):
        histogram = LatencyHistogram()
        histogram.record(value)
        assert histogram.count == 1
        index = next(i for i, c in enumerate(histogram.counts) if c)
        if index < len(BUCKET_BOUNDS):
            assert value <= BUCKET_BOUNDS[index] * (1 + 1e-12)
        if index > 0:
            assert value > BUCKET_BOUNDS[index - 1] * (1 - 1e-12)


class TestSummaries:
    def test_empty_histogram_reports_zeroes(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.p50 == 0.0
        assert histogram.mean == 0.0

    def test_quantiles_are_conservative_bucket_bounds(self):
        histogram = LatencyHistogram()
        for value in (2e-6, 3e-6, 5e-5, 1e-3):
            histogram.record(value)
        # every quantile is some bucket's upper bound, at or above the
        # true quantile of the recorded values
        assert histogram.p50 in BUCKET_BOUNDS
        assert histogram.p50 >= 3e-6
        assert histogram.p99 >= 1e-3

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_mean_is_exact_not_bucketised(self):
        histogram = LatencyHistogram()
        histogram.record(0.001)
        histogram.record(0.003)
        assert histogram.mean == pytest.approx(0.002)
        assert histogram.total_seconds == pytest.approx(0.004)

    def test_summary_digest_fields(self):
        histogram = LatencyHistogram()
        histogram.record(0.01)
        digest = histogram.summary()
        assert set(digest) == {"count", "p50", "p95", "p99", "mean",
                               "total_seconds"}
        assert digest["count"] == 1


class TestMerging:
    def test_merge_is_bucket_wise_not_integer_add(self):
        left = LatencyHistogram()
        right = LatencyHistogram()
        for _ in range(10):
            left.record(2e-6)  # fast side
        for _ in range(10):
            right.record(0.5)  # slow side
        merged = left.merged_with(right)
        # counts add element by element, preserving the distribution...
        assert merged.counts == [a + b for a, b in zip(left.counts, right.counts)]
        assert merged.count == 20
        # ...so the merged percentiles still see both populations: the
        # median stays fast while the tail reflects the slow half — an
        # integer-add would have collapsed this shape entirely
        assert merged.p50 <= 2e-6 * 2
        assert merged.p99 >= 0.5
        assert merged.total_seconds == pytest.approx(
            left.total_seconds + right.total_seconds
        )

    def test_merge_leaves_inputs_untouched(self):
        left = LatencyHistogram()
        left.record(1e-3)
        before = list(left.counts)
        left.merged_with(left)
        assert left.counts == before

    def test_dict_roundtrip(self):
        histogram = LatencyHistogram()
        histogram.record(0.02)
        histogram.record(7.0)
        clone = LatencyHistogram.from_dict(histogram.as_dict())
        assert clone.counts == histogram.counts
        assert clone.total_seconds == histogram.total_seconds


class TestSpanTracer:
    def test_spans_feed_the_stage_histogram(self):
        tracer = SpanTracer()
        with tracer.span("match"):
            pass
        with tracer.span("match"):
            pass
        assert tracer.histograms["match"].count == 2

    def test_nested_spans_contribute_to_both_stages(self):
        tracer = SpanTracer()
        with tracer.span("batch"):
            with tracer.span("construct"):
                pass
        assert tracer.histograms["batch"].count == 1
        assert tracer.histograms["construct"].count == 1

    def test_interleaved_spans_of_one_stage_keep_their_own_clocks(self):
        # two TCP connections can be inside span("drain") at once; each
        # span() call must hand out a fresh object with its own start
        tracer = SpanTracer()
        first = tracer.span("drain")
        second = tracer.span("drain")
        first.__enter__()
        second.__enter__()
        second.__exit__(None, None, None)
        first.__exit__(None, None, None)
        assert tracer.histograms["drain"].count == 2

    def test_disabled_tracer_records_nothing(self):
        tracer = SpanTracer(enabled=False)
        with tracer.span("match"):
            pass
        assert tracer.histograms == {}

    def test_disabled_tracer_shares_one_noop_span(self):
        tracer = SpanTracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")

    def test_slow_handler_fires_at_threshold_only(self):
        reported = []
        tracer = SpanTracer(
            slow_threshold=0.01,
            slow_handler=lambda stage, elapsed: reported.append((stage, elapsed)),
        )
        with tracer.span("fast"):
            pass
        assert reported == []
        span = tracer.span("slow")
        span.__enter__()
        span._started -= 0.05  # age the span past the threshold
        span.__exit__(None, None, None)
        assert len(reported) == 1
        assert reported[0][0] == "slow"
        assert reported[0][1] >= 0.01

    def test_default_slow_handler_logs_a_warning(self, caplog):
        tracer = SpanTracer(slow_threshold=0.01)
        span = tracer.span("repair")
        with caplog.at_level(logging.WARNING, "repro.system.observability"):
            span.__enter__()
            span._started -= 0.05
            span.__exit__(None, None, None)
        assert any("repair" in record.message for record in caplog.records)

    def test_summaries_sorted_by_stage(self):
        tracer = SpanTracer()
        for stage in ("ship", "match", "construct"):
            with tracer.span(stage):
                pass
        assert list(tracer.summaries()) == ["construct", "match", "ship"]


class TestMetricsRegistry:
    def test_snapshot_has_counters_and_spans(self):
        registry = MetricsRegistry()
        registry.stats.notifications = 5
        with registry.span("match"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["counters"]["notifications"] == 5
        assert snapshot["spans"]["match"]["counts"][0] >= 0
        assert sum(snapshot["spans"]["match"]["counts"]) == 1

    def test_merge_adds_counters_and_merges_histograms(self):
        left = MetricsRegistry(CommunicationStats(notifications=3))
        right = MetricsRegistry(CommunicationStats(notifications=4))
        with left.span("match"):
            pass
        with right.span("match"):
            pass
        with right.span("ship"):  # only on one side
            pass
        merged = left.merged_with(right)
        assert merged.stats.notifications == 7
        assert merged.tracer.histograms["match"].count == 2
        assert merged.tracer.histograms["ship"].count == 1
        # bucket-wise, not scalar: the counts vectors added element-wise
        expected = [
            a + b
            for a, b in zip(
                left.tracer.histograms["match"].counts,
                right.tracer.histograms["match"].counts,
            )
        ]
        assert merged.tracer.histograms["match"].counts == expected

    def test_merge_ors_the_enabled_flag(self):
        left = MetricsRegistry()
        left.tracer.enabled = False
        right = MetricsRegistry()
        assert left.merged_with(right).tracer.enabled is True


class TestPrometheusExport:
    def _exposition(self):
        registry = MetricsRegistry()
        registry.stats.notifications = 12
        registry.stats.server_seconds = 0.5
        for value in (2e-6, 1e-3, 80.0):
            registry.tracer.histogram("match").record(value)
        return registry, registry.render_prometheus()

    def test_counters_exported_with_total_suffix(self):
        _, text = self._exposition()
        assert "elaps_notifications_total 12" in text
        assert "# TYPE elaps_notifications_total counter" in text
        assert "# TYPE elaps_bytes_measured gauge" in text

    def test_high_water_fields_exported_as_gauges(self):
        registry = MetricsRegistry()
        registry.stats.send_queue_high_water = 7
        text = registry.render_prometheus()
        assert "# TYPE elaps_send_queue_high_water gauge" in text
        assert "\nelaps_send_queue_high_water 7" in text
        assert "elaps_send_queue_high_water_total" not in text

    def test_every_counter_field_present(self):
        registry, text = self._exposition()
        for name in registry.stats.as_dict():
            if name == "bytes_measured" or name.endswith("_high_water"):
                metric = f"elaps_{name}"  # gauges: no _total suffix
            else:
                metric = f"elaps_{name}_total"
            assert f"\n{metric} " in f"\n{text}", metric

    def test_no_duplicate_sample_identities(self):
        _, text = self._exposition()
        samples = [
            line.rsplit(" ", 1)[0]
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert len(samples) == len(set(samples))

    def test_histogram_buckets_cumulative_and_inf_terminated(self):
        _, text = self._exposition()
        bucket_counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith('elaps_stage_duration_seconds_bucket{stage="match"')
        ]
        assert bucket_counts == sorted(bucket_counts)
        assert bucket_counts[-1] == 3  # the +Inf bucket sees everything
        assert 'le="+Inf"} 3' in text
        assert 'elaps_stage_duration_seconds_count{stage="match"} 3' in text
        assert 'elaps_stage_duration_seconds_sum{stage="match"}' in text

    def test_module_function_matches_registry_method(self):
        registry, text = self._exposition()
        assert text == render_prometheus(
            registry.stats.as_dict(), registry.tracer.histograms
        )
