"""The Elaps server: the four message flows of Section 5."""

from __future__ import annotations

import pytest

from repro.core import IGM, GridMethod
from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree
from repro.system import ServerConfig, ElapsServer

SPACE = Rect(0, 0, 10_000, 10_000)


def make_server(strategy=None, **config_fields):
    grid = Grid(40, SPACE)
    config_fields.setdefault("initial_rate", 1.0)
    return ElapsServer(
        grid,
        strategy or IGM(max_cells=600),
        ServerConfig(**config_fields),
        event_index=BEQTree(SPACE, emax=32))


def make_sub(sub_id=1, radius=1500.0):
    return Subscription(
        sub_id,
        BooleanExpression([Predicate("topic", Operator.EQ, "sale")]),
        radius=radius,
    )


def sale_event(event_id, x, y, **extra):
    return Event(event_id, {"topic": "sale", **extra}, Point(x, y))


class TestSubscriptionFlow:
    def test_subscribe_delivers_existing_matches_in_circle(self):
        server = make_server()
        server.bootstrap([sale_event(1, 5400, 5000), sale_event(2, 9000, 9000)])
        notifications, region = server.subscribe(make_sub(), Point(5000, 5000), Point(50, 0))
        assert [n.event.event_id for n in notifications] == [1]
        assert region is not None

    def test_subscribe_ignores_non_matching_events(self):
        server = make_server()
        server.bootstrap([Event(1, {"topic": "weather"}, Point(5100, 5000))])
        notifications, _ = server.subscribe(make_sub(), Point(5000, 5000), Point(50, 0))
        assert notifications == []

    def test_unsubscribe_cleans_up(self):
        server = make_server()
        sub = make_sub()
        server.subscribe(sub, Point(5000, 5000), Point(50, 0))
        server.unsubscribe(sub.sub_id)
        assert sub.sub_id not in server.subscribers
        assert sub.sub_id not in server.impact_index
        # a matching publish no longer reaches anyone
        assert server.publish(sale_event(10, 5100, 5000), now=1) == []

    def test_unsubscribe_unknown_raises(self):
        with pytest.raises(KeyError):
            make_server().unsubscribe(42)


class TestEventArrivalFlow:
    def test_event_inside_circle_notifies(self):
        server = make_server()
        sub = make_sub()
        server.subscribe(sub, Point(5000, 5000), Point(50, 0))
        notifications = server.publish(sale_event(10, 5200, 5000), now=1)
        assert [n.sub_id for n in notifications] == [1]
        assert server.metrics.event_arrival_rounds == 1
        assert server.metrics.notifications == 1

    def test_event_in_impact_but_outside_circle_rebuilds_region(self):
        server = make_server()
        sub = make_sub(radius=1000.0)
        _, old_region = server.subscribe(sub, Point(5000, 5000), Point(50, 0))
        # inside the impact region (old region is large) but > r away
        notifications = server.publish(sale_event(10, 7000, 5000), now=1)
        assert notifications == []
        assert server.metrics.event_arrival_rounds == 1
        new_region = server.subscribers[sub.sub_id].safe
        # the new region must respect the new matching event
        for cell in new_region.iter_cells():
            assert server.grid.cell_rect(cell).min_distance_to_point(Point(7000, 5000)) > 1000.0

    def test_event_outside_impact_is_silent(self):
        server = make_server(strategy=IGM(max_cells=4))
        sub = make_sub(radius=500.0)
        server.subscribe(sub, Point(1000, 1000), Point(10, 0))
        notifications = server.publish(sale_event(10, 9500, 9500), now=1)
        assert notifications == []
        assert server.metrics.event_arrival_rounds == 0

    def test_non_matching_event_is_silent(self):
        server = make_server(strategy=GridMethod(), matching_mode="full")
        sub = make_sub()
        server.subscribe(sub, Point(5000, 5000), Point(50, 0))
        server.publish(Event(10, {"topic": "weather"}, Point(5050, 5000)), now=1)
        assert server.metrics.event_arrival_rounds == 0
        assert server.metrics.notifications == 0

    def test_delivered_event_never_reconsidered(self):
        server = make_server()
        sub = make_sub()
        server.subscribe(sub, Point(5000, 5000), Point(50, 0))
        event = sale_event(10, 5200, 5000)
        server.publish(event, now=1)
        before = server.metrics.notifications
        # the same subscriber reports; the delivered event must not repeat
        notifications, _ = server.report_location(sub.sub_id, Point(5210, 5000), Point(50, 0), now=2)
        assert notifications == []
        assert server.metrics.notifications == before


class TestEventExpiryFlow:
    def test_expiry_removes_event_silently(self):
        server = make_server()
        sub = make_sub()
        server.subscribe(sub, Point(5000, 5000), Point(50, 0))
        event = Event(10, {"topic": "sale"}, Point(8000, 8000), arrived_at=1, expires_at=5)
        server.publish(event, now=1)
        rounds_before = server.metrics.total_rounds
        assert server.expire_due_events(5) == 1
        assert server.metrics.total_rounds == rounds_before
        assert len(server.event_index) == 0

    def test_expiry_not_due_keeps_event(self):
        server = make_server()
        event = Event(10, {"topic": "sale"}, Point(8000, 8000), arrived_at=1, expires_at=5)
        server.publish(event, now=1)
        assert server.expire_due_events(4) == 0
        assert len(server.event_index) == 1


class TestLocationUpdateFlow:
    def test_report_delivers_newly_reachable_events(self):
        server = make_server()
        sub = make_sub(radius=1000.0)
        server.bootstrap([sale_event(1, 8000, 5000)])
        server.subscribe(sub, Point(1000, 5000), Point(100, 0))
        notifications, region = server.report_location(
            sub.sub_id, Point(7500, 5000), Point(100, 0), now=10
        )
        assert [n.event.event_id for n in notifications] == [1]
        assert server.metrics.location_update_rounds == 1

    def test_report_updates_server_side_location(self):
        server = make_server()
        sub = make_sub()
        server.subscribe(sub, Point(1000, 1000), Point(10, 0))
        server.report_location(sub.sub_id, Point(2000, 2000), Point(20, 0), now=3)
        record = server.subscribers[sub.sub_id]
        assert record.location == Point(2000, 2000)
        assert record.velocity == Point(20, 0)


class TestStatsEstimation:
    def test_initial_rate_used_during_warmup(self):
        server = make_server()
        server.subscribe(make_sub(), Point(5000, 5000), Point(50, 0), now=0)
        assert server.system_stats(10).event_rate == 1.0

    def test_rate_window_estimation(self):
        server = make_server()
        server._started_at = 0
        for t in range(100, 150):
            server._arrival_times.extend([t, t])  # 2 events per tick
        estimated = server._estimated_rate(150)
        assert estimated == pytest.approx(2.0, rel=0.1)

    def test_stats_override_wins(self):
        from repro.core import SystemStats

        server = make_server(stats_override=lambda now: SystemStats(9.0, 777))
        stats = server.system_stats(5)
        assert stats.event_rate == 9.0 and stats.total_events == 777

    def test_unknown_matching_mode_rejected(self):
        with pytest.raises(ValueError):
            make_server(matching_mode="psychic")


class TestDegenerateRegion:
    def test_empty_safe_region_still_covers_circle(self):
        """When the subscriber's own cell is unsafe the safe region is
        empty, but the impact region must still cover the notification
        circle so nothing is missed (Lemma 1 fallback)."""
        server = make_server()
        sub = make_sub(radius=1000.0)
        at = Point(5000, 5000)
        server.bootstrap([sale_event(1, 5000 + 1100, 5000)])  # just outside r
        # the start cell is within r of the event -> unsafe -> empty region
        _, region = server.subscribe(sub, at, Point(50, 0))
        if not region.is_empty():
            pytest.skip("grid resolution kept the cell safe")
        for cell in server.grid.cells_intersecting_circle(sub.notification_region(at)):
            assert server.impact_index.covers(sub.sub_id, cell)


class TestBytesAccounting:
    def test_measure_bytes_accumulates(self):
        server = make_server(measure_bytes=True)
        server.subscribe(make_sub(), Point(5000, 5000), Point(50, 0))
        assert server.metrics.safe_region_bytes > 0
        assert server.metrics.raw_region_bytes > 0
