"""WAH bitmap codec (Appendix B)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bitmap import WAHBitmap


class TestRoundTrip:
    def test_empty_bitmap(self):
        bitmap = WAHBitmap.from_positions([], 100)
        assert bitmap.positions() == []

    def test_single_bit(self):
        bitmap = WAHBitmap.from_positions([37], 100)
        assert bitmap.positions() == [37]

    def test_all_ones(self):
        bitmap = WAHBitmap.from_positions(range(200), 200)
        assert bitmap.positions() == list(range(200))

    def test_duplicates_collapse(self):
        bitmap = WAHBitmap.from_positions([5, 5, 5], 10)
        assert bitmap.positions() == [5]

    def test_from_bits(self):
        bitmap = WAHBitmap.from_bits([True, False, True, True])
        assert bitmap.positions() == [0, 2, 3]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            WAHBitmap.from_positions([100], 100)
        with pytest.raises(ValueError):
            WAHBitmap.from_positions([-1], 100)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            WAHBitmap(-1, [])

    @given(
        length=st.integers(min_value=1, max_value=5000),
        data=st.data(),
    )
    def test_roundtrip_property(self, length, data):
        positions = data.draw(
            st.lists(st.integers(min_value=0, max_value=length - 1), max_size=200)
        )
        bitmap = WAHBitmap.from_positions(positions, length)
        assert bitmap.positions() == sorted(set(positions))


class TestCompression:
    def test_long_zero_runs_compress_well(self):
        # one dense cluster inside a huge empty bitmap
        positions = list(range(10_000, 10_100))
        bitmap = WAHBitmap.from_positions(positions, 1_000_000)
        assert bitmap.compressed_bytes() < 0.01 * bitmap.raw_bytes()

    def test_long_one_runs_compress_well(self):
        bitmap = WAHBitmap.from_positions(range(500_000), 1_000_000)
        assert bitmap.compressed_bytes() < 0.01 * bitmap.raw_bytes()

    def test_alternating_bits_do_not_compress(self):
        bitmap = WAHBitmap.from_positions(range(0, 310, 2), 310)
        # literals only: ~32/31 expansion over raw is expected
        assert bitmap.compressed_bytes() >= bitmap.raw_bytes()

    def test_compression_ratio_monotone_in_clustering(self):
        scattered = WAHBitmap.from_positions(range(0, 31 * 64, 31), 31 * 64)
        clustered = WAHBitmap.from_positions(range(64), 31 * 64)
        assert clustered.compressed_bytes() < scattered.compressed_bytes()

    def test_equality_and_hash(self):
        a = WAHBitmap.from_positions([1, 2, 3], 100)
        b = WAHBitmap.from_positions([3, 2, 1], 100)
        c = WAHBitmap.from_positions([1, 2], 100)
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestSetAlgebra:
    """Compressed-domain difference/union (the delta-shipping identity)."""

    def test_difference_basic(self):
        a = WAHBitmap.from_positions([1, 5, 100, 2_000], 5_000)
        b = WAHBitmap.from_positions([5, 2_000, 3_000], 5_000)
        assert a.difference(b).positions() == [1, 100]

    def test_union_basic(self):
        a = WAHBitmap.from_positions([1, 5], 5_000)
        b = WAHBitmap.from_positions([5, 9], 5_000)
        assert a.union(b).positions() == [1, 5, 9]

    def test_length_mismatch_rejected(self):
        a = WAHBitmap.from_positions([1], 100)
        b = WAHBitmap.from_positions([1], 200)
        with pytest.raises(ValueError):
            a.difference(b)
        with pytest.raises(ValueError):
            a.union(b)

    def test_difference_with_fills(self):
        # long runs on both sides force the fill-vs-fill merge paths
        a = WAHBitmap.from_positions(range(100_000), 200_000)
        b = WAHBitmap.from_positions(range(50_000, 150_000), 200_000)
        assert a.difference(b) == WAHBitmap.from_positions(range(50_000), 200_000)
        assert a.union(b) == WAHBitmap.from_positions(range(150_000), 200_000)

    @given(
        length=st.integers(min_value=1, max_value=3_000),
        data=st.data(),
    )
    def test_results_are_canonical_encodings(self, length, data):
        """a - b and a | b equal from_positions of the set result.

        Canonical-form equality (not just equal position lists) is what
        lets a client verify ``old - delta == fresh_push`` bitmap against
        bitmap; it requires the merge to reproduce from_positions' fill
        absorption exactly, final partial group included.
        """
        universe = st.integers(min_value=0, max_value=length - 1)
        a_pos = set(data.draw(st.lists(universe, max_size=150)))
        b_pos = set(data.draw(st.lists(universe, max_size=150)))
        a = WAHBitmap.from_positions(a_pos, length)
        b = WAHBitmap.from_positions(b_pos, length)
        assert a.difference(b) == WAHBitmap.from_positions(a_pos - b_pos, length)
        assert a.union(b) == WAHBitmap.from_positions(a_pos | b_pos, length)

    @given(
        length=st.integers(min_value=31, max_value=2_000),
        data=st.data(),
    )
    def test_delta_identity(self, data, length):
        """old.difference(removed) == new: exactly the repair shipment."""
        universe = st.integers(min_value=0, max_value=length - 1)
        old_pos = set(data.draw(st.lists(universe, min_size=1, max_size=100)))
        removed_pos = set(data.draw(st.lists(st.sampled_from(sorted(old_pos)), max_size=50)))
        old = WAHBitmap.from_positions(old_pos, length)
        removed = WAHBitmap.from_positions(removed_pos, length)
        new = WAHBitmap.from_positions(old_pos - removed_pos, length)
        assert old.difference(removed) == new
        assert new.union(removed) == old
