"""The TCP layer: subscribe, publish and report over a real socket."""

from __future__ import annotations

import asyncio
import socket
import struct

import pytest

from repro.core import IGM
from repro.expressions import BooleanExpression, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree
from repro.system import NetworkConfig, ServerConfig, ElapsServer
from repro.system.network import (
    ElapsNetworkClient,
    ElapsTCPServer,
    FrameError,
    TruncatedFrameError,
    read_frame,
)
from repro.system.observability import render_prometheus
from repro.system.protocol import (
    HeartbeatMessage,
    LocationReport,
    NotificationMessage,
    SafeRegionDelta,
    SafeRegionPush,
    StatsSnapshot,
    SubscribeMessage,
    UnsubscribeMessage,
    cells_from_delta,
    decode_message,
    encode_message,
)

SPACE = Rect(0, 0, 10_000, 10_000)


def make_tcp_server(repair: bool = False, **kwargs) -> ElapsTCPServer:
    server = ElapsServer(
        Grid(40, SPACE),
        IGM(max_cells=400),
        ServerConfig(initial_rate=1.0, repair=repair),
        event_index=BEQTree(SPACE, emax=32))
    config = NetworkConfig().with_(**kwargs)
    return ElapsTCPServer(server, port=0, timestamp_seconds=0.05, config=config)


def make_sub(sub_id=1):
    return Subscription(
        sub_id,
        BooleanExpression([Predicate("topic", Operator.EQ, "sale")]),
        radius=1_500.0,
    )


def run(coro):
    return asyncio.run(coro)


class TestLifecycle:
    def test_start_assigns_port(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            assert tcp.port > 0
            await tcp.stop()

        run(scenario())

    def test_invalid_timestamp_rejected(self):
        server = ElapsServer(Grid(40, SPACE), IGM(max_cells=10))
        with pytest.raises(ValueError):
            ElapsTCPServer(server, timestamp_seconds=0)


class TestSubscribeFlow:
    def test_subscribe_receives_region_push(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            client = ElapsNetworkClient("127.0.0.1", tcp.port)
            await client.connect()
            received = await client.subscribe(
                make_sub(), Point(5_000, 5_000), Point(40, 0)
            )
            assert isinstance(received[-1], SafeRegionPush)
            await client.close()
            await tcp.stop()

        run(scenario())

    def test_publish_reaches_subscriber(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            subscriber = ElapsNetworkClient("127.0.0.1", tcp.port)
            publisher = ElapsNetworkClient("127.0.0.1", tcp.port)
            await subscriber.connect()
            await publisher.connect()
            await subscriber.subscribe(make_sub(), Point(5_000, 5_000), Point(40, 0))
            await publisher.publish(
                1, {"topic": "sale", "price": 99}, Point(5_200, 5_000), ttl=100
            )
            message = await subscriber.receive()
            assert isinstance(message, NotificationMessage)
            assert dict(message.attributes)["topic"] == "sale"
            await subscriber.close()
            await publisher.close()
            await tcp.stop()

        run(scenario())

    def test_non_matching_publish_is_silent(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            subscriber = ElapsNetworkClient("127.0.0.1", tcp.port)
            publisher = ElapsNetworkClient("127.0.0.1", tcp.port)
            await subscriber.connect()
            await publisher.connect()
            await subscriber.subscribe(make_sub(), Point(5_000, 5_000), Point(40, 0))
            await publisher.publish(2, {"topic": "weather"}, Point(5_100, 5_000))
            with pytest.raises(asyncio.TimeoutError):
                await subscriber.receive(timeout=0.3)
            await subscriber.close()
            await publisher.close()
            await tcp.stop()

        run(scenario())

    def test_location_report_returns_fresh_region(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            client = ElapsNetworkClient("127.0.0.1", tcp.port)
            await client.connect()
            await client.subscribe(make_sub(), Point(2_000, 2_000), Point(40, 0))
            await client.send(
                LocationReport(1, Point(8_000, 8_000), Point(40, 0))
            )
            message = await client.receive()
            assert isinstance(message, SafeRegionPush)
            await client.close()
            await tcp.stop()

        run(scenario())

    def test_unsubscribe_cleans_up(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            client = ElapsNetworkClient("127.0.0.1", tcp.port)
            await client.connect()
            await client.subscribe(make_sub(), Point(5_000, 5_000), Point(40, 0))
            await client.send(UnsubscribeMessage(1))
            await asyncio.sleep(0.1)
            assert 1 not in tcp.server.subscribers
            await client.close()
            await tcp.stop()

        run(scenario())

    def test_disconnect_unsubscribes(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            client = ElapsNetworkClient("127.0.0.1", tcp.port)
            await client.connect()
            await client.subscribe(make_sub(), Point(5_000, 5_000), Point(40, 0))
            assert 1 in tcp.server.subscribers
            await client.close()
            await asyncio.sleep(0.1)
            assert 1 not in tcp.server.subscribers
            await tcp.stop()

        run(scenario())

    def test_retained_subscribers_survive_disconnect(self):
        async def scenario():
            tcp = make_tcp_server(retain_subscribers=True)
            await tcp.start()
            client = ElapsNetworkClient("127.0.0.1", tcp.port)
            await client.connect()
            await client.subscribe(make_sub(), Point(5_000, 5_000), Point(40, 0))
            await client.close()
            await asyncio.sleep(0.1)
            assert 1 in tcp.server.subscribers
            await tcp.stop()

        run(scenario())

    def test_resubscribe_does_not_redeliver(self):
        """A reconnect's resubscribe keeps the delivered set intact."""

        async def scenario():
            tcp = make_tcp_server(retain_subscribers=True)
            await tcp.start()
            publisher = ElapsNetworkClient("127.0.0.1", tcp.port)
            await publisher.connect()

            first = ElapsNetworkClient("127.0.0.1", tcp.port)
            await first.connect()
            await first.subscribe(make_sub(), Point(5_000, 5_000), Point(40, 0))
            await publisher.publish(10, {"topic": "sale"}, Point(5_100, 5_000))
            message = await first.receive()
            assert isinstance(message, NotificationMessage)
            await first.close()
            await asyncio.sleep(0.05)

            second = ElapsNetworkClient("127.0.0.1", tcp.port)
            await second.connect()
            received = await second.subscribe(
                make_sub(), Point(5_000, 5_000), Point(40, 0)
            )
            # only the region push: the held event is not shipped again
            assert [type(m) for m in received] == [SafeRegionPush]
            assert tcp.server.metrics.resubscribes == 1
            await second.close()
            await publisher.close()
            await tcp.stop()

        run(scenario())

    def test_expiring_events_leave_the_corpus(self):
        async def scenario():
            tcp = make_tcp_server()  # 0.05 s timestamps
            await tcp.start()
            publisher = ElapsNetworkClient("127.0.0.1", tcp.port)
            await publisher.connect()
            await publisher.publish(3, {"topic": "sale"}, Point(9_000, 9_000), ttl=1)
            await asyncio.sleep(0.01)
            assert len(tcp.server.event_index) == 1
            await asyncio.sleep(0.15)  # > 1 timestamp
            # the next publish sweeps expired events first
            await publisher.publish(4, {"topic": "sale"}, Point(9_000, 9_000), ttl=100)
            await asyncio.sleep(0.05)
            assert len(tcp.server.event_index) == 1
            await publisher.close()
            await tcp.stop()

        run(scenario())


class TestRegionDeltaWire:
    """Repair mode ships SafeRegionDelta frames instead of full pushes."""

    def test_repair_ships_delta_frame_to_subscriber(self):
        async def scenario():
            tcp = make_tcp_server(repair=True)
            await tcp.start()
            subscriber = ElapsNetworkClient("127.0.0.1", tcp.port)
            publisher = ElapsNetworkClient("127.0.0.1", tcp.port)
            await subscriber.connect()
            await publisher.connect()
            received = await subscriber.subscribe(
                make_sub(), Point(5_000, 5_000), Point(0, 0)
            )
            assert isinstance(received[-1], SafeRegionPush)
            # matching, inside the impact region, outside the 1500 m
            # radius: the out-of-radius type-II hit that repair carves
            await publisher.publish(1, {"topic": "sale"}, Point(7_600, 5_000))
            message = await subscriber.receive()
            assert isinstance(message, SafeRegionDelta)
            assert message.sub_id == 1
            removed = cells_from_delta(message, tcp.server.grid)
            record = tcp.server.subscribers[1]
            assert removed
            # the wire delta is exactly the set the server carved out
            assert removed.isdisjoint(set(record.safe.iter_cells()))
            assert tcp.server.metrics.repairs == 1
            assert tcp.server.metrics.constructions == 1  # subscribe only
            await subscriber.close()
            await publisher.close()
            await tcp.stop()

        run(scenario())

    def test_in_radius_publish_still_notifies_under_repair(self):
        async def scenario():
            tcp = make_tcp_server(repair=True)
            await tcp.start()
            subscriber = ElapsNetworkClient("127.0.0.1", tcp.port)
            publisher = ElapsNetworkClient("127.0.0.1", tcp.port)
            await subscriber.connect()
            await publisher.connect()
            await subscriber.subscribe(make_sub(), Point(5_000, 5_000), Point(0, 0))
            await publisher.publish(2, {"topic": "sale"}, Point(5_100, 5_000))
            message = await subscriber.receive()
            assert isinstance(message, NotificationMessage)
            assert tcp.server.metrics.repairs == 0
            await subscriber.close()
            await publisher.close()
            await tcp.stop()

        run(scenario())


class TestReadFrame:
    """The hardened framing: EOF, truncation and resets are distinct."""

    @staticmethod
    def reader_with(data: bytes, eof: bool = True) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        if eof:
            reader.feed_eof()
        return reader

    def test_clean_eof_returns_none(self):
        async def scenario():
            assert await read_frame(self.reader_with(b"")) is None

        run(scenario())

    def test_whole_frame_roundtrips(self):
        frame = encode_message(HeartbeatMessage(3, 7))

        async def scenario():
            got = await read_frame(self.reader_with(frame))
            assert got == frame
            assert decode_message(got) == HeartbeatMessage(3, 7)

        run(scenario())

    def test_partial_header_is_truncation(self):
        async def scenario():
            with pytest.raises(TruncatedFrameError):
                await read_frame(self.reader_with(b"\x08\x00"))

        run(scenario())

    def test_partial_payload_is_truncation(self):
        frame = encode_message(HeartbeatMessage(3, 7))

        async def scenario():
            with pytest.raises(TruncatedFrameError):
                await read_frame(self.reader_with(frame[:-4]))

        run(scenario())

    def test_oversized_length_is_frame_error(self):
        async def scenario():
            with pytest.raises(FrameError):
                await read_frame(
                    self.reader_with(struct.pack(">BI", 1, 1 << 20)),
                    max_length=1024,
                )

        run(scenario())

    def test_truncation_is_a_frame_error(self):
        assert issubclass(TruncatedFrameError, FrameError)


class TestHardening:
    def test_connection_reset_is_counted_distinctly(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            client = ElapsNetworkClient("127.0.0.1", tcp.port)
            await client.connect()
            await client.subscribe(make_sub(), Point(5_000, 5_000), Point(40, 0))
            # SO_LINGER(0) turns close() into a genuine RST, where a
            # plain abort() of an empty send buffer would just FIN
            sock = client.writer.get_extra_info("socket")
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
            client.writer.close()
            await asyncio.sleep(0.2)
            assert tcp.server.metrics.connection_resets == 1
            assert tcp.server.metrics.malformed_frames == 0
            assert 1 not in tcp.server.subscribers
            await tcp.stop()

        run(scenario())

    def test_heartbeat_is_echoed_and_counted(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            client = ElapsNetworkClient("127.0.0.1", tcp.port)
            await client.connect()
            await client.send(HeartbeatMessage(1, 42))
            echo = await client.receive()
            assert echo == HeartbeatMessage(1, 42)
            assert tcp.server.metrics.heartbeats == 1
            await client.close()
            await tcp.stop()

        run(scenario())

    def test_nonfinite_subscribe_is_rejected(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            client = ElapsNetworkClient("127.0.0.1", tcp.port)
            await client.connect()
            await client.send(
                SubscribeMessage(
                    1,
                    float("inf"),
                    BooleanExpression([Predicate("topic", Operator.EQ, "sale")]),
                    Point(5_000, 5_000),
                    Point(40, 0),
                )
            )
            await asyncio.sleep(0.1)
            assert tcp.server.metrics.malformed_frames == 1
            assert 1 not in tcp.server.subscribers
            await tcp.stop()

        run(scenario())

    def test_stalled_drain_counts_as_write_timeout_not_read(self):
        # a zero write budget forces wait_for(drain(), 0) to expire on
        # the first response flush: the stalled *peer* must land in
        # write_timeouts, not be disguised as an idle read timeout
        async def scenario():
            tcp = make_tcp_server(write_timeout=0)
            await tcp.start()
            client = ElapsNetworkClient("127.0.0.1", tcp.port)
            await client.connect()
            await client.send(
                SubscribeMessage(
                    1,
                    make_sub().radius,
                    make_sub().expression,
                    Point(5_000, 5_000),
                    Point(40, 0),
                )
            )
            await asyncio.sleep(0.2)
            assert tcp.server.metrics.write_timeouts == 1
            assert tcp.server.metrics.read_timeouts == 0
            assert tcp.server.metrics.connection_resets == 0
            await client.close()
            await tcp.stop()

        run(scenario())


class TestStatsOverTCP:
    def test_snapshot_after_batched_publish(self):
        # the acceptance path of the observability work: a plain TCP
        # client requests frame type 12 and gets back per-stage latency
        # histograms that the batched publish actually populated
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            subscriber = ElapsNetworkClient("127.0.0.1", tcp.port)
            publisher = ElapsNetworkClient("127.0.0.1", tcp.port)
            await subscriber.connect()
            await publisher.connect()
            await subscriber.subscribe(make_sub(), Point(5_000, 5_000), Point(40, 0))
            await publisher.publish_batch(
                [
                    (100 + i, {"topic": "sale", "price": i}, Point(5_100, 5_000))
                    for i in range(8)
                ]
            )
            snapshot = await publisher.request_stats()
            assert isinstance(snapshot, StatsSnapshot)
            histograms = snapshot.histograms()
            for stage in ("batch", "match", "dispatch", "decode"):
                assert stage in histograms, sorted(histograms)
                assert histograms[stage].count > 0, stage
            counters = snapshot.counters_dict()
            assert counters["batches"] == 1
            assert counters["batch_events"] == 8
            assert counters == tcp.server.metrics.as_dict()
            await subscriber.close()
            await publisher.close()
            await tcp.stop()

        run(scenario())

    def test_snapshot_on_idle_server_is_well_formed(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            client = ElapsNetworkClient("127.0.0.1", tcp.port)
            await client.connect()
            snapshot = await client.request_stats()
            assert isinstance(snapshot, StatsSnapshot)
            # nothing published yet: counters are all baseline zeroes
            assert snapshot.counters_dict()["notifications"] == 0
            await client.close()
            await tcp.stop()

        run(scenario())

    def test_snapshot_feeds_the_prometheus_exporter(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            client = ElapsNetworkClient("127.0.0.1", tcp.port)
            await client.connect()
            await client.subscribe(make_sub(), Point(5_000, 5_000), Point(40, 0))
            snapshot = await client.request_stats()
            text = render_prometheus(
                snapshot.counters_dict(), snapshot.histograms()
            )
            assert "# TYPE elaps_stage_duration_seconds histogram" in text
            assert 'le="+Inf"' in text
            await client.close()
            await tcp.stop()

        run(scenario())
